//! `dblayout` — the layout advisor as a command-line tool (paper Figure 3),
//! plus `serve`/`client` subcommands fronting the resident what-if service.

use std::io::BufRead;
use std::process::ExitCode;
use std::time::Duration;

use dblayout_cli::constraints_file::parse_constraints_file;
use dblayout_cli::disks_file::parse_disks_file;
use dblayout_cli::{default_disks, resolve_catalog};
use dblayout_core::advisor::{Advisor, AdvisorConfig};
use dblayout_core::deploy::render_script;
use dblayout_core::tsgreedy::TsGreedyConfig;
use dblayout_server::{Client, Server, ServerConfig};

const USAGE: &str = "\
dblayout — automated database layout advisor (ICDE 2003 reproduction)

USAGE:
    dblayout --database <spec> --workload <file> [options]
    dblayout explain [explain-options]  narrate the search, step by step
    dblayout serve [serve-options]      run the what-if advisory service
    dblayout client [client-options]    talk to a running service
    dblayout lint [lint-options]        static-analyze the workspace sources
    dblayout benchdiff <base> <cur>     compare two BENCH_*.json histories
    dblayout loadtest [load-options]    drive the service with measured load
    dblayout drift [drift-options]      detect workload drift vs the advised graph
    dblayout migrate [migrate-options]  budgeted relayout + ordered migration plan
    dblayout audit [audit-options]      inspect and replay recorded decisions

INPUTS (paper Figure 3):
    --database <spec>     built-in catalog: tpch[:sf] | tpch-n:<sf>:<n> | apb | sales
    --workload <file>     SQL DML statements, ';'-separated; optional
                          '-- weight: <w>' line before a statement
    --disks <file>        drive list: name capacity seek_ms read_mb_s write_mb_s [avail]
                          (default: the paper's 8-drive array)
    --constraints <file>  colocate A B | avail A <class> | max-movement <blocks>

OPTIONS:
    --k <n>               greedy step width (default 1)
    --threads <n>         search worker threads (default: available
                          parallelism; results are identical at any value)
    --script <dbname>     print the filegroup deployment script
    --json <file>         write the recommendation as JSON
    --trace-out <file>    also record the search as raw trace JSONL
    --audit-dir <dir>     decision-log directory (default results/decisions)
    --no-audit            do not append a decision record
    --help                this text

Every recommendation appends a replayable decision record to the audit
log (see `dblayout audit --help`) unless --no-audit is given.

See `dblayout explain --help` for the search narrative, `dblayout serve
--help` and `dblayout client --help` for the service, `dblayout lint
--help` for the static-analysis pass, `dblayout benchdiff --help`
for the benchmark-regression gate, `dblayout drift --help` /
`dblayout migrate --help` for the continuous-relayout tools, and
`dblayout audit --help` for the decision log.
";

const AUDIT_USAGE: &str = "\
dblayout audit — inspect and replay recorded layout decisions

USAGE:
    dblayout audit list   [--audit-dir <dir>]
    dblayout audit show   <id> [--audit-dir <dir>]
    dblayout audit diff   <id-a> <id-b> [--audit-dir <dir>]
    dblayout audit replay <id> [--audit-dir <dir>] [options]

Every `dblayout recommend`/`migrate` run (and every server recommend op)
appends a self-contained decision record — input digests, the advised
access graph, search settings, predicted cost breakdowns, and the chosen
layout — to a rotating JSONL log. `replay` re-derives the layout from the
record alone and bit-compares it against what was recorded, then runs the
recorded layout through the event simulator and reports the
predicted-vs-simulated relative error (DESIGN.md, \"Decision provenance\").

Exit status: 0 on success; `replay` exits 3 when the layout fails to
reproduce bit-identically, the record is corrupt, or the error exceeds
--threshold-pct; 1 on other errors.

OPTIONS:
    --audit-dir <dir>     decision-log directory (default results/decisions)
    --threshold-pct <f>   max predicted-vs-simulated relative error percent
                          before replay fails (default: report only)
    --threads <n>         search threads for the re-run (default: the
                          recorded count; results are identical at any value)
    --perturb <f>         multiply the recomputed prediction by <f> — a
                          fault-injection hook proving the threshold bites
    --help                this text
";

const DRIFT_USAGE: &str = "\
dblayout drift — compare the observed access pattern against the advised one

USAGE:
    dblayout drift --database <spec> --baseline <file> --workload <file> [options]

Builds the Figure-6 access graph for both workload files and runs the
relayout drift detector: the total-variation distance between the
unit-normalized edge-weight (and node-weight) distributions, plus the
rank churn among the top-k co-access edges. Drift fires when either
distance crosses --distance-threshold or the churn crosses
--churn-threshold (see DESIGN.md, \"Continuous relayout\").

Exit status: 0 when the workloads agree, 2 when drift fired, 1 on error.

OPTIONS:
    --database <spec>          built-in catalog (required; see `dblayout --help`)
    --baseline <file>          workload the deployed layout was advised on
    --workload <file>          recently observed workload
    --top-k <n>                co-access edges ranked for churn (default 10)
    --distance-threshold <f>   weight distance in [0,1] that fires (default 0.25)
    --churn-threshold <f>      rank churn in [0,1] that fires (default 0.5)
    --json <file>              also write the DriftReport as JSON
    --help                     this text
";

const MIGRATE_USAGE: &str = "\
dblayout migrate — movement-budgeted relayout plus an ordered migration plan

USAGE:
    dblayout migrate --database <spec> --workload <file> [options]

Starts from the FULL STRIPING deployment, searches for the best layout
reachable while relocating at most --budget-mb (the paper's §2.3.1
data-movement constraint, seeded from the deployed layout), then compiles
the ordered per-object migration plan: every step is checked for
free-space feasibility (shadow-copy when scratch allows, in-place delta
otherwise) and priced through the drive model, along with every degraded
intermediate layout. The combined recommendation + plan artifact is
written as JSON.

OPTIONS:
    --database <spec>       built-in catalog (required; see `dblayout --help`)
    --workload <file>       SQL workload file (required)
    --disks <file>          drive list (default: the paper's 8-drive array)
    --constraints <file>    constraint file
    --k <n>                 greedy step width (default 1)
    --threads <n>           search worker threads (default: available
                            parallelism; results are identical at any value)
    --budget-mb <n>         relocation budget in MB (default: unbounded)
    --min-improvement <f>   required cost improvement percent (default 0;
                            shortfall is reported, not fatal)
    --json <file>           artifact path (default results/migration_plan.json)
    --audit-dir <dir>       decision-log directory (default results/decisions)
    --no-audit              do not append a decision record
    --help                  this text
";

const EXPLAIN_USAGE: &str = "\
dblayout explain — run the advisor and narrate the search, step by step

USAGE:
    dblayout explain --database <spec> --workload <file> [options]

Runs the full Figure-3 pipeline under a deterministic trace collector and
prints a human-readable narrative: the access-graph summary, every step-1
partition assignment, and — for each TS-GREEDY iteration — the candidate
count and the winning merge with its cost delta, then a per-sub-plan cost
breakdown of the recommended layout, the deterministic work counters, and
a wall-clock phase profile. The raw trace is written as JSONL (default
results/explain_trace.jsonl) and round-trips through the dblayout-obs
parser. The narrative, the trace, and the work counters are byte-identical
across runs for the same inputs; only the phase profile's wall times vary.

OPTIONS:
    --database <spec>     built-in catalog (required; see `dblayout --help`)
    --workload <file>     SQL workload file (required)
    --disks <file>        drive list (default: the paper's 8-drive array)
    --constraints <file>  constraint file
    --k <n>               greedy step width (default 1)
    --threads <n>         search worker threads (default: available
                          parallelism; narrative and trace are identical
                          at any value)
    --trace-out <file>    where to write the raw trace JSONL
                          (default results/explain_trace.jsonl)
    --help                this text
";

const LINT_USAGE: &str = "\
dblayout lint — workspace static analysis (panic-safety, lock discipline,
float hygiene, determinism zones, registry coherence; rule catalog R1–R10
in DESIGN.md, \"Static analysis\")

USAGE:
    dblayout lint [--deny-warnings] [--json] [--root <dir>]
                  [--diff <base>] [--sarif <path>] [--no-cache]

Scans every Rust source under <root>/crates/*/src plus DESIGN.md, prints a
diagnostic per finding, and writes the machine-readable report to
<root>/results/lint_report.json. Per-file scan results are cached in
<root>/results/lint_cache.json keyed by content hash, so warm runs
re-analyze only changed files (findings are bit-identical either way).

With --diff, findings outside the change scope (files unchanged vs <base>
whose rules also have no changed cross-file dependency) are reported under
`out_of_scope` instead of failing the run — CI gates a PR on what it
touched while the JSON still records the whole picture.

Exit status: non-zero on any error-severity diagnostic (unlexable file,
malformed suppression), and — under --deny-warnings — on any in-scope
finding.

OPTIONS:
    --deny-warnings     treat rule findings as fatal (CI mode)
    --json              print the JSON report to stdout instead of text
    --root <dir>        workspace root to scan (default: .)
    --diff <base>       scope findings to files changed vs the git ref
                        <base> (uses `git diff --name-only <base>`)
    --sarif <path>      also write the report as SARIF 2.1.0 to <path>
    --no-cache          ignore and overwrite results/lint_cache.json
    --help              this text
";

const BENCHDIFF_USAGE: &str = "\
dblayout benchdiff — the benchmark-regression gate

USAGE:
    dblayout benchdiff <baseline.json> <current.json> [options]

Compares two observatory histories (repo-root BENCH_search.json /
BENCH_server.json, appended to by `search_bench` and the server bench).
Timings compare median-vs-median over the last --window entries and only
fail beyond --tolerance; deterministic work counters must match exactly
when both histories ran the same config — a counter divergence means the
work done changed, and fails regardless of tolerance.

Exit status: non-zero when the report's verdict is REGRESSED.

OPTIONS:
    --tolerance <f>     relative slowdown allowed before a timing
                        regresses (default 0.5 = 50%)
    --window <n>        history entries whose median is compared
                        (default 5)
    --ignore-counters   skip the exact counter gate entirely (use for
                        histories that are adaptive-iteration only)
    --ignore-counters-for <substr>
                        skip the counter gate only for config groups whose
                        config string contains <substr>; repeatable. Lets
                        BENCH_server.json mix criterion rows (ignored via
                        `adaptive_iterations`) with loadtest rows whose
                        mix counters gate exactly
    --require-not-slower <fast>,<slow>
                        assert metric <fast> is not slower than metric
                        <slow> (median over the current history's last
                        --window entries, --tolerance headroom, sub-ms
                        medians exempt). Repeatable. E.g.
                        `--require-not-slower incremental/t4,incremental/t1`
                        gates \"parallelism pays\".
    --help              this text
";

const LOADTEST_USAGE: &str = "\
dblayout loadtest — coordinated-omission-safe load against the service

USAGE:
    dblayout loadtest [--addr <host:port>] [options]

Drives the newline-delimited JSON protocol with a deterministic op
schedule (seeded LCG; same --seed → same op sequence and mix counters on
every host) and records latency into log-linear histograms with ≤12.5%
relative error. Without --addr, an in-process loopback server is started
with one worker thread per connection.

Two pacing modes (DESIGN.md §12):
  open loop (--rate)   requests arrive at a fixed rate; latency is charged
                       from each request's *intended* send time, so server
                       stalls inflate the tail instead of being
                       coordinated away (HdrHistogram/wrk2 correction)
  closed loop          each connection sends as soon as the previous reply
                       lands; measures single-caller service time only

Exit status: 0 on a clean run, 1 when any request errored or a transport
failure occurred.

OPTIONS:
    --addr <host:port>  target a running service (default: loopback server)
    --requests <n>      total requests across connections (default 100000)
    --connections <n>   concurrent connections; each needs a server worker
                        thread (default 4)
    --rate <r>          open-loop offered load, requests/second
                        (default: closed loop)
    --seed <n>          schedule seed (default 42)
    --mix <a,b,c,d>     op weights open_session,add_statements,recommend,
                        stats (default 1,20,2,977)
    --catalog <spec>    session catalog (default tpch:0.01)
    --json <file>       write the machine-readable report
    --history <file>    append a gateable row (per-op p50/p99/p999 timings
                        + exact mix counters) to an observatory history,
                        e.g. BENCH_server.json
    --help              this text
";

const SERVE_USAGE: &str = "\
dblayout serve — run the resident what-if advisory service

USAGE:
    dblayout serve [--port <n>] [options]

The server speaks newline-delimited JSON over TCP: one request object per
line, one response line per request (see README, \"The what-if server\").

OPTIONS:
    --port <n>          TCP port to listen on (default 7437; 0 picks a free
                        port — the chosen address is printed on stdout)
    --host <addr>       bind address (default 127.0.0.1)
    --threads <n>       worker threads (default 4)
    --queue <n>         max queued connections before `busy` (default 64)
    --deadline-ms <n>   per-request queue-wait deadline (default 30000)
    --sessions <n>      max concurrently open sessions (default 64)
    --cache <n>         max memoized what-if costs (default 1024)
    --audit-dir <dir>   decision-record log directory (default
                        results/decisions); every recommend op appends a
                        replayable record, served by audit_list/audit_get
    --no-audit          disable decision recording entirely
    --help              this text
";

const CLIENT_USAGE: &str = "\
dblayout client — send requests to a running what-if service

USAGE:
    dblayout client --addr <host:port> [--request <json>]

With --request, sends that single JSON request and prints the response.
Without it, reads one JSON request per line from stdin and prints each
response line to stdout (blank lines are skipped).

Exits non-zero if the server is unreachable or the connection drops.

OPTIONS:
    --addr <host:port>  server address (default 127.0.0.1:7437)
    --request <json>    a single request to send
    --help              this text
";

/// Where decision records land unless `--audit-dir` says otherwise.
const DEFAULT_AUDIT_DIR: &str = "results/decisions";

struct Args {
    database: String,
    workload: String,
    disks: Option<String>,
    constraints: Option<String>,
    k: usize,
    threads: Option<usize>,
    script: Option<String>,
    json: Option<String>,
    trace_out: Option<String>,
    audit_dir: String,
    no_audit: bool,
}

impl Args {
    /// The search worker count: `--threads` if given, else the host's
    /// available parallelism. Results are identical either way.
    fn search_threads(&self) -> usize {
        self.threads
            .unwrap_or_else(dblayout_core::par::available_parallelism)
            .max(1)
    }
}

fn parse_args(argv: &[String], usage: &str, allow_outputs: bool) -> Result<Args, String> {
    let mut args = Args {
        database: String::new(),
        workload: String::new(),
        disks: None,
        constraints: None,
        k: 1,
        threads: None,
        script: None,
        json: None,
        trace_out: None,
        audit_dir: DEFAULT_AUDIT_DIR.to_string(),
        no_audit: false,
    };
    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--database" => args.database = value("--database")?,
            "--workload" => args.workload = value("--workload")?,
            "--disks" => args.disks = Some(value("--disks")?),
            "--constraints" => args.constraints = Some(value("--constraints")?),
            "--k" => args.k = value("--k")?.parse().map_err(|e| format!("bad --k: {e}"))?,
            "--threads" => {
                let t: usize = value("--threads")?
                    .parse()
                    .map_err(|e| format!("bad --threads: {e}"))?;
                if t == 0 {
                    return Err("--threads must be at least 1".to_string());
                }
                args.threads = Some(t);
            }
            "--script" if allow_outputs => args.script = Some(value("--script")?),
            "--json" if allow_outputs => args.json = Some(value("--json")?),
            "--trace-out" => args.trace_out = Some(value("--trace-out")?),
            "--audit-dir" => args.audit_dir = value("--audit-dir")?,
            "--no-audit" => args.no_audit = true,
            "--help" | "-h" => return Err(usage.to_string()),
            other => return Err(format!("unknown flag `{other}`\n\n{usage}")),
        }
    }
    if args.database.is_empty() || args.workload.is_empty() {
        return Err(format!("--database and --workload are required\n\n{usage}"));
    }
    Ok(args)
}

/// The resolved Figure-3 inputs shared by `run` and `run_explain`.
struct Inputs {
    catalog: dblayout_catalog::Catalog,
    workload_text: String,
    disks: Vec<dblayout_disksim::DiskSpec>,
    constraints: dblayout_core::constraints::Constraints,
    /// Raw constraints file text, kept for decision-record provenance.
    constraints_text: Option<String>,
}

fn load_inputs(args: &Args) -> Result<Inputs, String> {
    let catalog = resolve_catalog(&args.database)?;
    let workload_text = std::fs::read_to_string(&args.workload)
        .map_err(|e| format!("cannot read workload `{}`: {e}", args.workload))?;
    let disks = match &args.disks {
        Some(path) => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| format!("cannot read drives `{path}`: {e}"))?;
            parse_disks_file(&text)?
        }
        None => default_disks(),
    };
    let mut constraints_text = None;
    let constraints = match &args.constraints {
        Some(path) => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| format!("cannot read constraints `{path}`: {e}"))?;
            let parsed = parse_constraints_file(&text, &catalog, &disks)?;
            constraints_text = Some(text);
            parsed
        }
        None => dblayout_core::constraints::Constraints::none(),
    };
    Ok(Inputs {
        catalog,
        workload_text,
        disks,
        constraints,
        constraints_text,
    })
}

/// Writes trace records as one JSONL line each, creating parent directories.
fn write_trace(path: &str, records: &[dblayout_obs::Record]) -> Result<(), String> {
    if let Some(parent) = std::path::Path::new(path).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)
                .map_err(|e| format!("cannot create `{}`: {e}", parent.display()))?;
        }
    }
    let mut out = String::new();
    for r in records {
        out.push_str(&r.to_jsonl());
        out.push('\n');
    }
    std::fs::write(path, out).map_err(|e| format!("cannot write `{path}`: {e}"))
}

fn run(argv: &[String]) -> Result<(), String> {
    let args = parse_args(argv, USAGE, true)?;
    let inputs = load_inputs(&args)?;
    let Inputs {
        catalog,
        workload_text,
        disks,
        constraints,
        constraints_text,
    } = inputs;

    let mut cfg = AdvisorConfig {
        search: TsGreedyConfig {
            k: args.k,
            threads: args.search_threads(),
            constraints,
            ..Default::default()
        },
        prof: dblayout_obs::prof::PhaseTimer::new(),
    };
    let ring = std::sync::Arc::new(dblayout_obs::RingSink::new(usize::MAX));
    if args.trace_out.is_some() {
        cfg.search.collector = dblayout_obs::Collector::deterministic(ring.clone());
    }
    let advisor = Advisor::new(&catalog, &disks);
    let counters_before = dblayout_obs::counters::snapshot();
    let rec = advisor
        .recommend_sql(&workload_text, &cfg)
        .map_err(|e| e.to_string())?;
    let counters_delta = dblayout_obs::counters::snapshot().delta(&counters_before);

    println!("statements analyzed : {}", rec.plans.len());
    println!(
        "estimated I/O response time: full striping {:.0} ms -> recommended {:.0} ms",
        rec.full_striping_cost_ms, rec.recommended_cost_ms
    );
    println!(
        "estimated improvement: {:.1}%  ({} greedy iterations, {} cost evaluations)",
        rec.estimated_improvement_pct, rec.search.iterations, rec.search.cost_evaluations
    );
    println!();
    println!("recommended layout (object: disks):");
    for meta in catalog.objects() {
        let placed = rec.layout.disks_of(meta.id.index());
        let names: Vec<&str> = placed.iter().map(|&j| disks[j].name.as_str()).collect();
        println!("  {:<28} {}", meta.name, names.join(", "));
    }

    if let Some(db) = &args.script {
        println!();
        print!("{}", render_script(db, &catalog, &rec.layout, &disks));
    }

    if let Some(path) = &args.json {
        #[derive(serde::Serialize)]
        struct JsonOut<'a> {
            estimated_improvement_pct: f64,
            full_striping_cost_ms: f64,
            recommended_cost_ms: f64,
            objects: Vec<JsonObject<'a>>,
        }
        #[derive(serde::Serialize)]
        struct JsonObject<'a> {
            name: String,
            disks: Vec<&'a str>,
            fractions: Vec<f64>,
        }
        let out = JsonOut {
            estimated_improvement_pct: rec.estimated_improvement_pct,
            full_striping_cost_ms: rec.full_striping_cost_ms,
            recommended_cost_ms: rec.recommended_cost_ms,
            objects: catalog
                .objects()
                .iter()
                .map(|meta| JsonObject {
                    name: meta.name.clone(),
                    disks: rec
                        .layout
                        .disks_of(meta.id.index())
                        .iter()
                        .map(|&j| disks[j].name.as_str())
                        .collect(),
                    fractions: rec.layout.fractions_of(meta.id.index()).to_vec(),
                })
                .collect(),
        };
        let json = serde_json::to_string_pretty(&out).map_err(|e| e.to_string())?;
        write_text(path, &json)?;
        println!("\n(JSON written to {path})");
    }

    if let Some(path) = &args.trace_out {
        write_trace(path, &ring.drain())?;
        warn_on_trace_loss(&ring);
        println!("(trace written to {path})");
    }

    if !args.no_audit {
        let record = dblayout_audit::record_recommendation(
            &dblayout_audit::RecordInputs {
                source: "cli.recommend",
                catalog_spec: &args.database,
                workload_sql: &workload_text,
                constraints_text: constraints_text.as_deref(),
                disks: &disks,
                k: args.k,
                threads: args.search_threads(),
                ts_unix_ms: now_unix_ms(),
            },
            &rec,
            &cfg.prof.rows(),
            &counters_delta,
        );
        let id = append_decision(&args.audit_dir, record)?;
        println!("(decision recorded as id {id} in {})", args.audit_dir);
    }
    Ok(())
}

/// Satellite of `dblayout_trace_dropped_total`: an operator reading a
/// truncated trace must learn it on stderr, not by counting lines.
fn warn_on_trace_loss(ring: &dblayout_obs::RingSink) {
    let dropped = ring.dropped();
    if dropped > 0 {
        eprintln!(
            "warning: {dropped} trace record(s) were evicted by the ring buffer; \
             the written trace is incomplete"
        );
    }
}

fn run_explain(argv: &[String]) -> Result<(), String> {
    let args = parse_args(argv, EXPLAIN_USAGE, false)?;
    let inputs = load_inputs(&args)?;
    let Inputs {
        catalog,
        workload_text,
        disks,
        constraints,
        constraints_text: _,
    } = inputs;

    let ring = std::sync::Arc::new(dblayout_obs::RingSink::new(usize::MAX));
    let collector = dblayout_obs::Collector::deterministic(ring.clone());
    let mut cfg = AdvisorConfig {
        search: TsGreedyConfig {
            k: args.k,
            threads: args.search_threads(),
            constraints,
            ..Default::default()
        },
        prof: dblayout_obs::prof::PhaseTimer::new(),
    };
    cfg.search.collector = collector.clone();
    let advisor = Advisor::new(&catalog, &disks);
    let counters_before = dblayout_obs::counters::snapshot();
    let rec = advisor
        .recommend_sql(&workload_text, &cfg)
        .map_err(|e| e.to_string())?;
    let counters_delta = dblayout_obs::counters::snapshot().delta(&counters_before);

    // Cost the winning layout once more with a traced model so the
    // narrative ends with the per-sub-plan breakdown (during the search the
    // model stays untraced — candidate costings would swamp the trace).
    let mut model = cfg.search.cost_model.clone();
    model.collector = collector;
    let subplans = dblayout_core::costmodel::decompose_workload(&rec.plans);
    model.workload_cost_subplans(&subplans, &rec.layout, &disks);

    let records = ring.drain();
    let object_names: Vec<String> = catalog.objects().iter().map(|o| o.name.clone()).collect();
    let disk_names: Vec<String> = disks.iter().map(|d| d.name.clone()).collect();
    let names = dblayout_core::NarrativeNames {
        objects: &object_names,
        disks: &disk_names,
    };
    print!("{}", dblayout_core::render_narrative(&records, &names));
    println!(
        "Estimated improvement over full striping: {:.1}%",
        rec.estimated_improvement_pct
    );

    // Performance accounting (dblayout-prof): the deterministic work
    // counters are part of the reproducible output; the phase profile is
    // wall clock and varies run to run.
    println!();
    println!("Deterministic work counters:");
    for (name, value) in counters_delta.deterministic_pairs() {
        println!("  {name:<34} {value}");
    }
    println!();
    print!("{}", cfg.prof.render_table());

    let path = args
        .trace_out
        .unwrap_or_else(|| "results/explain_trace.jsonl".to_string());
    write_trace(&path, &records)?;
    warn_on_trace_loss(&ring);
    println!("(trace written to {path})");
    Ok(())
}

fn run_benchdiff(args: &[String]) -> Result<ExitCode, String> {
    use dblayout_bench::observatory::{diff, load_history, DiffOptions};
    let mut opts = DiffOptions::default();
    let mut paths: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--tolerance" => {
                opts.tolerance = value("--tolerance")?
                    .parse()
                    .map_err(|e| format!("bad --tolerance: {e}"))?;
                if !(opts.tolerance.is_finite() && opts.tolerance >= 0.0) {
                    return Err("--tolerance must be a finite non-negative number".to_string());
                }
            }
            "--window" => {
                opts.window = value("--window")?
                    .parse()
                    .map_err(|e| format!("bad --window: {e}"))?;
                if opts.window == 0 {
                    return Err("--window must be at least 1".to_string());
                }
            }
            "--ignore-counters" => opts.ignore_counters = true,
            "--ignore-counters-for" => {
                let pat = value("--ignore-counters-for")?;
                if pat.is_empty() {
                    return Err("--ignore-counters-for needs a non-empty substring".to_string());
                }
                opts.ignore_counters_for.push(pat);
            }
            "--require-not-slower" => {
                let pair = value("--require-not-slower")?;
                let Some((fast, slow)) = pair.split_once(',') else {
                    return Err(format!(
                        "bad --require-not-slower `{pair}`: expected <fast>,<slow>"
                    ));
                };
                if fast.is_empty() || slow.is_empty() {
                    return Err(format!(
                        "bad --require-not-slower `{pair}`: expected <fast>,<slow>"
                    ));
                }
                opts.not_slower.push((fast.to_string(), slow.to_string()));
            }
            "--help" | "-h" => return Err(BENCHDIFF_USAGE.to_string()),
            other if other.starts_with("--") => {
                return Err(format!("unknown flag `{other}`\n\n{BENCHDIFF_USAGE}"))
            }
            path => paths.push(path.to_string()),
        }
    }
    let [baseline, current] = paths.as_slice() else {
        return Err(format!(
            "benchdiff needs exactly a baseline and a current history\n\n{BENCHDIFF_USAGE}"
        ));
    };
    let base = load_history(std::path::Path::new(baseline))?;
    let cur = load_history(std::path::Path::new(current))?;
    let report = diff(&base, &cur, &opts)?;
    print!("{}", report.render());
    Ok(if report.regressed() {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    })
}

fn run_loadtest(args: &[String]) -> Result<ExitCode, String> {
    use dblayout_loadgen::{run_load, LoadConfig, Mode};

    let mut cfg = LoadConfig::default();
    let mut rate: Option<f64> = None;
    let mut json_out: Option<String> = None;
    let mut history_out: Option<String> = None;
    let mut mix_text = cfg.weights.encode();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--addr" => cfg.addr = value("--addr")?,
            "--requests" => {
                cfg.requests = value("--requests")?
                    .parse()
                    .map_err(|e| format!("bad --requests: {e}"))?;
                if cfg.requests == 0 {
                    return Err("--requests must be at least 1".to_string());
                }
            }
            "--connections" => {
                cfg.connections = value("--connections")?
                    .parse()
                    .map_err(|e| format!("bad --connections: {e}"))?;
                if cfg.connections == 0 {
                    return Err("--connections must be at least 1".to_string());
                }
            }
            "--rate" => {
                let r: f64 = value("--rate")?
                    .parse()
                    .map_err(|e| format!("bad --rate: {e}"))?;
                if !(r.is_finite() && r > 0.0) {
                    return Err("--rate must be a positive number".to_string());
                }
                rate = Some(r);
            }
            "--seed" => {
                cfg.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("bad --seed: {e}"))?
            }
            "--mix" => {
                mix_text = value("--mix")?;
                cfg.weights =
                    dblayout_loadgen::MixWeights::parse_weights(&mix_text).ok_or_else(|| {
                        format!(
                            "bad --mix `{mix_text}`: expected four comma-separated \
                             integers with a positive sum"
                        )
                    })?;
            }
            "--catalog" => cfg.catalog = value("--catalog")?,
            "--json" => json_out = Some(value("--json")?),
            "--history" => history_out = Some(value("--history")?),
            "--help" | "-h" => return Err(LOADTEST_USAGE.to_string()),
            other => return Err(format!("unknown flag `{other}`\n\n{LOADTEST_USAGE}")),
        }
    }
    cfg.mode = match rate {
        Some(rate_per_sec) => Mode::Open { rate_per_sec },
        None => Mode::Closed,
    };

    // Without --addr, stand up a loopback server sized so every loadgen
    // connection gets a dedicated worker thread (the server parks one
    // thread per connection for its whole lifetime).
    let embedded = if cfg.addr.is_empty() {
        let server_cfg = ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            threads: cfg.connections.max(2),
            queue_capacity: cfg.connections + 8,
            audit_dir: None,
            ..ServerConfig::default()
        };
        let handle =
            Server::start(server_cfg).map_err(|e| format!("cannot start loopback server: {e}"))?;
        cfg.addr = handle.addr().to_string();
        eprintln!("loadtest: loopback server on {}", cfg.addr);
        Some(handle)
    } else {
        None
    };

    let report = run_load(&cfg).map_err(|e| format!("load run failed: {e}"))?;
    print!("{}", report.render());

    if let Some(path) = json_out {
        let text = serde_json::to_string_pretty(&report.to_json())
            .map_err(|e| format!("cannot serialize report: {e}"))?;
        std::fs::write(&path, text).map_err(|e| format!("cannot write `{path}`: {e}"))?;
        println!("report written to {path}");
    }
    if let Some(path) = history_out {
        use dblayout_bench::observatory::{append_history, git_rev, HistoryEntry};
        // The config fingerprint uses the raw flag values so identical
        // invocations group (and gate) across revisions.
        let config = format!(
            "loadtest;mode={};requests={};rate={};conns={};seed={};catalog={};mix={}",
            report.mode_name(),
            cfg.requests,
            rate.map(|r| format!("{r}"))
                .unwrap_or_else(|| "-".to_string()),
            cfg.connections,
            cfg.seed,
            cfg.catalog,
            mix_text,
        );
        let mut timings_ms: Vec<(String, f64)> = Vec::new();
        for (op, snap) in &report.per_op {
            if snap.count == 0 {
                continue;
            }
            for (tag, q) in [("p50", 0.50), ("p99", 0.99), ("p999", 0.999)] {
                timings_ms.push((format!("load/{op}/{tag}"), snap.quantile(q) as f64 / 1000.0));
            }
        }
        let mut counters = report.mix.counter_pairs();
        counters.push(("load_errors_total".to_string(), report.errors));
        counters.push(("load_shed_total".to_string(), report.shed));
        let entry = HistoryEntry {
            rev: git_rev(std::path::Path::new(".")),
            config,
            threads: vec![cfg.connections],
            timings_ms,
            phases_ms: vec![("wall".to_string(), report.wall.as_secs_f64() * 1000.0)],
            counters,
        };
        let n = append_history(std::path::Path::new(&path), &entry)?;
        println!("history row appended to {path} ({n} entries)");
    }
    drop(embedded);
    Ok(if report.errors > 0 {
        eprintln!("loadtest: {} requests errored", report.errors);
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    })
}

fn run_serve(args: &[String]) -> Result<(), String> {
    let mut cfg = ServerConfig {
        // Decision recording is on by default; --no-audit opts out.
        audit_dir: Some(DEFAULT_AUDIT_DIR.to_string()),
        ..ServerConfig::default()
    };
    let mut port: u16 = 7437;
    let mut host = "127.0.0.1".to_string();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--port" => {
                port = value("--port")?
                    .parse()
                    .map_err(|e| format!("bad --port: {e}"))?
            }
            "--host" => host = value("--host")?,
            "--threads" => {
                cfg.threads = value("--threads")?
                    .parse()
                    .map_err(|e| format!("bad --threads: {e}"))?
            }
            "--queue" => {
                cfg.queue_capacity = value("--queue")?
                    .parse()
                    .map_err(|e| format!("bad --queue: {e}"))?
            }
            "--deadline-ms" => {
                let ms: u64 = value("--deadline-ms")?
                    .parse()
                    .map_err(|e| format!("bad --deadline-ms: {e}"))?;
                cfg.deadline = Duration::from_millis(ms);
            }
            "--sessions" => {
                cfg.session_capacity = value("--sessions")?
                    .parse()
                    .map_err(|e| format!("bad --sessions: {e}"))?
            }
            "--cache" => {
                cfg.cache_capacity = value("--cache")?
                    .parse()
                    .map_err(|e| format!("bad --cache: {e}"))?
            }
            "--audit-dir" => cfg.audit_dir = Some(value("--audit-dir")?),
            "--no-audit" => cfg.audit_dir = None,
            "--help" | "-h" => return Err(SERVE_USAGE.to_string()),
            other => return Err(format!("unknown flag `{other}`\n\n{SERVE_USAGE}")),
        }
    }
    cfg.addr = format!("{host}:{port}");
    let handle =
        Server::start(cfg.clone()).map_err(|e| format!("cannot listen on {}: {e}", cfg.addr))?;
    println!(
        "dblayout-server listening on {} ({} worker threads, queue {}, {} session slots)",
        handle.addr(),
        cfg.threads,
        cfg.queue_capacity,
        cfg.session_capacity
    );
    match &cfg.audit_dir {
        Some(dir) => println!("decision records append to {dir} (audit_list / audit_get ops)"),
        None => println!("decision recording disabled (--no-audit)"),
    }
    println!("one JSON request per line; try: {{\"op\":\"stats\"}}");
    // Serve until the process is killed.
    loop {
        std::thread::sleep(Duration::from_secs(3600));
    }
}

fn run_client(args: &[String]) -> Result<(), String> {
    let mut addr = "127.0.0.1:7437".to_string();
    let mut request: Option<String> = None;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--addr" => addr = value("--addr")?,
            "--request" => request = Some(value("--request")?),
            "--help" | "-h" => return Err(CLIENT_USAGE.to_string()),
            other => return Err(format!("unknown flag `{other}`\n\n{CLIENT_USAGE}")),
        }
    }
    let mut client = Client::connect(&addr)
        .map_err(|e| format!("cannot reach dblayout-server at {addr}: {e}"))?;
    match request {
        Some(line) => {
            let response = client
                .roundtrip(&line)
                .map_err(|e| format!("request to {addr} failed: {e}"))?;
            println!("{response}");
        }
        None => {
            let stdin = std::io::stdin();
            for line in stdin.lock().lines() {
                let line = line.map_err(|e| format!("stdin read failed: {e}"))?;
                if line.trim().is_empty() {
                    continue;
                }
                let response = client
                    .roundtrip(&line)
                    .map_err(|e| format!("request to {addr} failed: {e}"))?;
                println!("{response}");
            }
        }
    }
    Ok(())
}

fn run_lint(args: &[String]) -> Result<ExitCode, String> {
    let mut deny_warnings = false;
    let mut json = false;
    let mut root = ".".to_string();
    let mut diff_base: Option<String> = None;
    let mut sarif_path: Option<String> = None;
    let mut no_cache = false;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--deny-warnings" => deny_warnings = true,
            "--json" => json = true,
            "--no-cache" => no_cache = true,
            "--root" => {
                root = it
                    .next()
                    .cloned()
                    .ok_or_else(|| "--root needs a value".to_string())?
            }
            "--diff" => {
                diff_base = Some(
                    it.next()
                        .cloned()
                        .ok_or_else(|| "--diff needs a git ref".to_string())?,
                )
            }
            "--sarif" => {
                sarif_path = Some(
                    it.next()
                        .cloned()
                        .ok_or_else(|| "--sarif needs a path".to_string())?,
                )
            }
            "--help" | "-h" => return Err(LINT_USAGE.to_string()),
            other => return Err(format!("unknown flag `{other}`\n\n{LINT_USAGE}")),
        }
    }
    let root = std::path::PathBuf::from(root);
    let cache_path = root.join("results").join("lint_cache.json");
    let cache = if no_cache {
        dblayout_lint::LintCache::default()
    } else {
        dblayout_lint::LintCache::load(&cache_path)
    };
    let changed = match &diff_base {
        Some(base) => Some(changed_files(&root, base)?),
        None => None,
    };
    let opts = dblayout_lint::AnalyzeOptions {
        cache: Some(&cache),
        changed: changed.as_deref(),
        diff_base: diff_base.clone(),
    };
    let (report, next_cache) = dblayout_lint::lint_workspace_with(&root, &opts)
        .map_err(|e| format!("lint failed: {e}"))?;
    let report_json = serde_json::to_string_pretty(&report.to_json()).map_err(|e| e.to_string())?;
    let results_dir = root.join("results");
    std::fs::create_dir_all(&results_dir)
        .map_err(|e| format!("cannot create `{}`: {e}", results_dir.display()))?;
    let out_path = results_dir.join("lint_report.json");
    std::fs::write(&out_path, &report_json)
        .map_err(|e| format!("cannot write `{}`: {e}", out_path.display()))?;
    next_cache
        .save(&cache_path)
        .map_err(|e| format!("cannot write `{}`: {e}", cache_path.display()))?;
    if let Some(sarif_path) = &sarif_path {
        let sarif = serde_json::to_string_pretty(&dblayout_lint::sarif::to_sarif(&report))
            .map_err(|e| e.to_string())?;
        std::fs::write(sarif_path, &sarif)
            .map_err(|e| format!("cannot write `{sarif_path}`: {e}"))?;
    }
    if json {
        println!("{report_json}");
    } else {
        print!("{}", report.render());
        println!("(JSON report written to {})", out_path.display());
    }
    Ok(if report.is_clean(deny_warnings) {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

/// Workspace-relative paths changed vs `base`, via `git diff --name-only`.
fn changed_files(root: &std::path::Path, base: &str) -> Result<Vec<String>, String> {
    let out = std::process::Command::new("git")
        .arg("-C")
        .arg(root)
        .args(["diff", "--name-only", base, "--"])
        .output()
        .map_err(|e| format!("cannot run git diff: {e}"))?;
    if !out.status.success() {
        return Err(format!(
            "`git diff --name-only {base}` failed: {}",
            String::from_utf8_lossy(&out.stderr).trim()
        ));
    }
    Ok(String::from_utf8_lossy(&out.stdout)
        .lines()
        .map(|l| l.trim().to_string())
        .filter(|l| !l.is_empty())
        .collect())
}

/// Plans every statement of a workload file against `catalog` — the
/// Analyze-Workload pass of Figure 3, shared by `drift` and `migrate`.
fn plan_workload_file(
    catalog: &dblayout_catalog::Catalog,
    path: &str,
) -> Result<Vec<(dblayout_planner::PhysicalPlan, f64)>, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read workload `{path}`: {e}"))?;
    plan_workload_text(catalog, &text).map_err(|e| format!("workload `{path}`: {e}"))
}

/// Plans an in-memory workload text (weighted `;`-separated DML).
fn plan_workload_text(
    catalog: &dblayout_catalog::Catalog,
    text: &str,
) -> Result<Vec<(dblayout_planner::PhysicalPlan, f64)>, String> {
    let entries = dblayout_sql::parse_workload_file(text).map_err(|e| e.to_string())?;
    if entries.is_empty() {
        return Err("contains no statements".to_string());
    }
    entries
        .into_iter()
        .map(|e| {
            dblayout_planner::plan_statement(catalog, &e.statement)
                .map(|p| (p, e.weight))
                .map_err(|err| err.to_string())
        })
        .collect()
}

/// Writes a JSON value pretty-printed, creating parent directories.
fn write_json_value(path: &str, value: &serde_json::Value) -> Result<(), String> {
    if let Some(parent) = std::path::Path::new(path).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)
                .map_err(|e| format!("cannot create `{}`: {e}", parent.display()))?;
        }
    }
    let text = serde_json::to_string_pretty(value).map_err(|e| e.to_string())?;
    std::fs::write(path, text).map_err(|e| format!("cannot write `{path}`: {e}"))
}

/// Writes text to a file, creating missing parent directories; errors name
/// the path that failed.
fn write_text(path: &str, text: &str) -> Result<(), String> {
    if let Some(parent) = std::path::Path::new(path).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)
                .map_err(|e| format!("cannot create `{}`: {e}", parent.display()))?;
        }
    }
    std::fs::write(path, text).map_err(|e| format!("cannot write `{path}`: {e}"))
}

/// Wall-clock milliseconds since the Unix epoch, for decision timestamps
/// (the audit crate itself never reads a clock).
fn now_unix_ms() -> Option<u64> {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .ok()
        .map(|d| d.as_millis() as u64)
}

/// Appends `record` to the decision log at `dir` and returns its id.
fn append_decision(dir: &str, mut record: dblayout_audit::DecisionRecord) -> Result<u64, String> {
    let mut log = dblayout_audit::DecisionLog::open(dir).map_err(|e| e.to_string())?;
    log.append(&mut record).map_err(|e| e.to_string())
}

fn parse_unit_fraction(text: &str, name: &str) -> Result<f64, String> {
    let v: f64 = text.parse().map_err(|e| format!("bad {name}: {e}"))?;
    if !(0.0..=1.0).contains(&v) {
        return Err(format!("{name} must be within [0, 1]"));
    }
    Ok(v)
}

fn run_drift(args: &[String]) -> Result<ExitCode, String> {
    use dblayout_relayout::{detect_drift, DriftConfig};

    let mut database = String::new();
    let mut baseline = String::new();
    let mut workload = String::new();
    let mut cfg = DriftConfig::default();
    let mut json_out: Option<String> = None;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--database" => database = value("--database")?,
            "--baseline" => baseline = value("--baseline")?,
            "--workload" => workload = value("--workload")?,
            "--top-k" => {
                cfg.top_k = value("--top-k")?
                    .parse()
                    .map_err(|e| format!("bad --top-k: {e}"))?;
                if cfg.top_k == 0 {
                    return Err("--top-k must be at least 1".to_string());
                }
            }
            "--distance-threshold" => {
                cfg.distance_threshold =
                    parse_unit_fraction(&value("--distance-threshold")?, "--distance-threshold")?;
            }
            "--churn-threshold" => {
                cfg.churn_threshold =
                    parse_unit_fraction(&value("--churn-threshold")?, "--churn-threshold")?;
            }
            "--json" => json_out = Some(value("--json")?),
            "--help" | "-h" => return Err(DRIFT_USAGE.to_string()),
            other => return Err(format!("unknown flag `{other}`\n\n{DRIFT_USAGE}")),
        }
    }
    if database.is_empty() || baseline.is_empty() || workload.is_empty() {
        return Err(format!(
            "--database, --baseline and --workload are required\n\n{DRIFT_USAGE}"
        ));
    }

    let catalog = resolve_catalog(&database)?;
    let n = catalog.objects().len();
    let advised_plans = plan_workload_file(&catalog, &baseline)?;
    let current_plans = plan_workload_file(&catalog, &workload)?;
    let mut advised = dblayout_partition::Graph::new(n);
    dblayout_core::extend_access_graph(&mut advised, &advised_plans);
    let mut current = dblayout_partition::Graph::new(n);
    dblayout_core::extend_access_graph(&mut current, &current_plans);

    let report = detect_drift(&current, &advised, &cfg);
    println!(
        "edge-weight distance : {:.4}  (fires at {:.2})",
        report.edge_distance, cfg.distance_threshold
    );
    println!(
        "node-weight distance : {:.4}  (fires at {:.2})",
        report.node_distance, cfg.distance_threshold
    );
    println!(
        "top-{} rank churn     : {:.4}  (fires at {:.2})",
        report.top_k, report.rank_churn, cfg.churn_threshold
    );
    println!(
        "verdict: {}",
        if report.drifted {
            "DRIFTED — the observed workload no longer matches the advised layout"
        } else {
            "quiet"
        }
    );
    if let Some(path) = &json_out {
        write_json_value(path, &report.to_json())?;
        println!("(report written to {path})");
    }
    Ok(if report.drifted {
        ExitCode::from(2)
    } else {
        ExitCode::SUCCESS
    })
}

fn run_migrate(argv: &[String]) -> Result<(), String> {
    use dblayout_relayout::{plan_migration, recommend_budgeted, BudgetConfig};

    // Peel the migrate-only flags; everything else (including shared-flag
    // values, which arrive in order) flows through the common parser.
    let mut budget_mb: Option<u64> = None;
    let mut min_improvement = 0.0f64;
    let mut json_out = "results/migration_plan.json".to_string();
    let mut rest: Vec<String> = Vec::new();
    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--budget-mb" => {
                budget_mb = Some(
                    value("--budget-mb")?
                        .parse()
                        .map_err(|e| format!("bad --budget-mb: {e}"))?,
                )
            }
            "--min-improvement" => {
                min_improvement = value("--min-improvement")?
                    .parse()
                    .map_err(|e| format!("bad --min-improvement: {e}"))?;
                if !(min_improvement.is_finite() && min_improvement >= 0.0) {
                    return Err("--min-improvement must be a finite non-negative percent".into());
                }
            }
            "--json" => json_out = value("--json")?,
            "--help" | "-h" => return Err(MIGRATE_USAGE.to_string()),
            other => rest.push(other.to_string()),
        }
    }
    let args = parse_args(&rest, MIGRATE_USAGE, false)?;
    let Inputs {
        catalog,
        workload_text,
        disks,
        constraints,
        constraints_text,
    } = load_inputs(&args)?;

    let plans =
        plan_workload_text(&catalog, &workload_text).map_err(|e| format!("workload: {e}"))?;
    let n = catalog.objects().len();
    let sizes: Vec<u64> = catalog.objects().iter().map(|o| o.size_blocks).collect();
    let mut graph = dblayout_partition::Graph::new(n);
    dblayout_core::extend_access_graph(&mut graph, &plans);
    let workload = dblayout_core::costmodel::decompose_workload(&plans);
    let current = dblayout_core::Layout::full_striping(sizes.clone(), &disks);

    let blocks_per_mb = 1_048_576 / dblayout_catalog::BLOCK_BYTES;
    let cfg = BudgetConfig {
        budget_blocks: budget_mb.map(|mb| mb.saturating_mul(blocks_per_mb)),
        min_improvement_pct: min_improvement,
        search: TsGreedyConfig {
            k: args.k,
            threads: args.search_threads(),
            constraints,
            ..Default::default()
        },
    };
    let counters_before = dblayout_obs::counters::snapshot();
    let outcome = recommend_budgeted(&sizes, &graph, &workload, &disks, &current, &cfg)
        .map_err(|e| e.to_string())?;
    let counters_delta = dblayout_obs::counters::snapshot().delta(&counters_before);
    let mut plan = plan_migration(
        &current,
        &outcome.layout,
        &disks,
        &workload,
        &dblayout_core::costmodel::CostModel::default(),
    )
    .map_err(|e| format!("migration planning failed: {e}"))?;

    println!(
        "deployed (full striping) cost : {:.0} ms",
        outcome.current_cost_ms
    );
    println!(
        "recommended cost              : {:.0} ms  ({:.1}% improvement, {} strategy)",
        outcome.new_cost_ms,
        outcome.improvement_pct,
        outcome.strategy.as_str()
    );
    match budget_mb {
        Some(mb) => println!(
            "relocation: {} blocks ({} MB) within the {} MB budget",
            outcome.moved_blocks,
            outcome.moved_bytes / 1_048_576,
            mb
        ),
        None => println!(
            "relocation: {} blocks ({} MB), unbounded budget",
            outcome.moved_blocks,
            outcome.moved_bytes / 1_048_576
        ),
    }
    if !outcome.meets_improvement {
        eprintln!(
            "warning: improvement {:.1}% is below the required {:.1}%",
            outcome.improvement_pct, min_improvement
        );
    }
    println!();
    println!(
        "migration plan: {} steps, {} blocks moved, {:.0} ms of transfer",
        plan.steps.len(),
        plan.total_moved_blocks,
        plan.total_step_ms
    );
    println!(
        "workload cost during migration: start {:.0} ms, worst intermediate {:.0} ms, final {:.0} ms",
        plan.start_cost_ms, plan.worst_intermediate_cost_ms, plan.final_cost_ms
    );

    if !args.no_audit {
        let record = dblayout_audit::record_budgeted(
            &dblayout_audit::RecordInputs {
                source: "cli.migrate",
                catalog_spec: &args.database,
                workload_sql: &workload_text,
                constraints_text: constraints_text.as_deref(),
                disks: &disks,
                k: args.k,
                threads: args.search_threads(),
                ts_unix_ms: now_unix_ms(),
            },
            &outcome,
            &current,
            &graph,
            &workload,
            min_improvement,
            &[],
            &counters_delta,
        );
        let id = append_decision(&args.audit_dir, record)?;
        plan.decision_id = Some(id);
        println!("(decision recorded as id {id} in {})", args.audit_dir);
    }

    let artifact = serde_json::Value::Map(vec![
        ("recommendation".to_string(), outcome.to_json()),
        ("plan".to_string(), plan.to_json()),
    ]);
    write_json_value(&json_out, &artifact)?;
    println!("(plan artifact written to {json_out})");
    Ok(())
}

fn run_audit(args: &[String]) -> Result<ExitCode, String> {
    use dblayout_audit::{replay, DecisionLog, ReplayConfig};

    let mut audit_dir = DEFAULT_AUDIT_DIR.to_string();
    let mut threshold_pct: Option<f64> = None;
    let mut threads: Option<usize> = None;
    let mut perturb = 1.0f64;
    let mut words: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--audit-dir" => audit_dir = value("--audit-dir")?,
            "--threshold-pct" => {
                let t: f64 = value("--threshold-pct")?
                    .parse()
                    .map_err(|e| format!("bad --threshold-pct: {e}"))?;
                if !(t.is_finite() && t >= 0.0) {
                    return Err("--threshold-pct must be a finite non-negative percent".into());
                }
                threshold_pct = Some(t);
            }
            "--threads" => {
                let t: usize = value("--threads")?
                    .parse()
                    .map_err(|e| format!("bad --threads: {e}"))?;
                if t == 0 {
                    return Err("--threads must be at least 1".to_string());
                }
                threads = Some(t);
            }
            "--perturb" => {
                perturb = value("--perturb")?
                    .parse()
                    .map_err(|e| format!("bad --perturb: {e}"))?;
                if !(perturb.is_finite() && perturb > 0.0) {
                    return Err("--perturb must be a finite positive factor".into());
                }
            }
            "--help" | "-h" => return Err(AUDIT_USAGE.to_string()),
            other if other.starts_with("--") => {
                return Err(format!("unknown flag `{other}`\n\n{AUDIT_USAGE}"))
            }
            word => words.push(word.to_string()),
        }
    }
    let parse_id = |s: &str| -> Result<u64, String> {
        s.parse().map_err(|e| format!("bad decision id `{s}`: {e}"))
    };

    match words
        .iter()
        .map(String::as_str)
        .collect::<Vec<_>>()
        .as_slice()
    {
        ["list"] => {
            let log = DecisionLog::open(&audit_dir).map_err(|e| e.to_string())?;
            let summaries = log.list().map_err(|e| e.to_string())?;
            if summaries.is_empty() {
                println!("no decisions recorded in {audit_dir}");
                return Ok(ExitCode::SUCCESS);
            }
            println!(
                "{:>6}  {:<19}  {:<16}  {:>12}  {:>8}  {:<20}  git_rev",
                "id", "kind", "strategy", "predicted_ms", "impr_pct", "source"
            );
            for s in &summaries {
                println!(
                    "{:>6}  {:<19}  {:<16}  {:>12.1}  {:>8.2}  {:<20}  {}",
                    s.id,
                    s.kind,
                    s.strategy,
                    s.predicted_cost_ms,
                    s.improvement_pct,
                    s.source,
                    s.git_rev
                );
            }
            Ok(ExitCode::SUCCESS)
        }
        ["show", id] => {
            let log = DecisionLog::open(&audit_dir).map_err(|e| e.to_string())?;
            let record = log.get(parse_id(id)?).map_err(|e| e.to_string())?;
            let text =
                serde_json::to_string_pretty(&record.to_json()).map_err(|e| e.to_string())?;
            println!("{text}");
            Ok(ExitCode::SUCCESS)
        }
        ["diff", a, b] => {
            let log = DecisionLog::open(&audit_dir).map_err(|e| e.to_string())?;
            let ra = log.get(parse_id(a)?).map_err(|e| e.to_string())?;
            let rb = log.get(parse_id(b)?).map_err(|e| e.to_string())?;
            println!("decision {} vs decision {}:", ra.id, rb.id);
            let digest_rows = [
                ("catalog", &ra.digests.catalog, &rb.digests.catalog),
                ("workload", &ra.digests.workload, &rb.digests.workload),
                ("disks", &ra.digests.disks, &rb.digests.disks),
                ("config", &ra.digests.config, &rb.digests.config),
                ("graph", &ra.digests.graph, &rb.digests.graph),
            ];
            for (name, da, db) in digest_rows {
                if da == db {
                    println!("  {name:<9} digest: identical ({da})");
                } else {
                    println!("  {name:<9} digest: DIFFERS   ({da} vs {db})");
                }
            }
            println!(
                "  strategy        : {} vs {}",
                ra.outcome.strategy, rb.outcome.strategy
            );
            println!(
                "  predicted cost  : {:.1} ms vs {:.1} ms",
                ra.outcome.predicted_cost_ms, rb.outcome.predicted_cost_ms
            );
            println!(
                "  improvement     : {:.2}% vs {:.2}%",
                ra.outcome.improvement_pct, rb.outcome.improvement_pct
            );
            let cells_a: usize = ra.outcome.fractions.iter().map(Vec::len).sum();
            let diverged = if ra.outcome.fractions == rb.outcome.fractions {
                0
            } else {
                ra.outcome
                    .fractions
                    .iter()
                    .flatten()
                    .zip(rb.outcome.fractions.iter().flatten())
                    .filter(|(x, y)| x.to_bits() != y.to_bits())
                    .count()
                    .max(1)
            };
            println!("  layout          : {diverged} of {cells_a} fraction cells differ");
            Ok(ExitCode::SUCCESS)
        }
        ["replay", id] => {
            let log = DecisionLog::open(&audit_dir).map_err(|e| e.to_string())?;
            let record = log.get(parse_id(id)?).map_err(|e| e.to_string())?;
            let cfg = ReplayConfig {
                threads,
                error_threshold_pct: threshold_pct.unwrap_or(f64::INFINITY),
                predicted_scale: perturb,
            };
            let report = replay(&record, &cfg).map_err(|e| e.to_string())?;
            println!(
                "replaying decision {} ({}, recorded by {}) with {} thread(s)",
                record.id, report.kind, record.git_rev, report.threads
            );
            if report.layout_matches {
                println!("layout reproduction : bit-identical");
            } else {
                println!(
                    "layout reproduction : DIVERGED — {} fraction cell(s) differ",
                    report.mismatched_cells
                );
            }
            println!(
                "record integrity    : graph digest {}",
                if report.graph_digest_ok {
                    "ok"
                } else {
                    "MISMATCH (record corrupted)"
                }
            );
            println!("recorded prediction : {:.1} ms", report.recorded_cost_ms);
            println!("replayed prediction : {:.1} ms", report.predicted_cost_ms);
            println!("simulated           : {:.1} ms", report.simulated_ms);
            match threshold_pct {
                Some(t) => println!(
                    "relative error      : {:.2}%  (threshold {t}%)",
                    report.relative_error_pct
                ),
                None => println!("relative error      : {:.2}%", report.relative_error_pct),
            }
            if report.passed() {
                println!("verdict: PASSED");
                Ok(ExitCode::SUCCESS)
            } else {
                println!("verdict: FAILED");
                Ok(ExitCode::from(3))
            }
        }
        [] => Err(AUDIT_USAGE.to_string()),
        other => Err(format!(
            "unknown audit command `{}`\n\n{AUDIT_USAGE}",
            other.join(" ")
        )),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let outcome = match args.first().map(String::as_str) {
        Some("explain") => run_explain(&args[1..]).map(|()| ExitCode::SUCCESS),
        Some("serve") => run_serve(&args[1..]).map(|()| ExitCode::SUCCESS),
        Some("client") => run_client(&args[1..]).map(|()| ExitCode::SUCCESS),
        Some("lint") => run_lint(&args[1..]),
        Some("benchdiff") => run_benchdiff(&args[1..]),
        Some("loadtest") => run_loadtest(&args[1..]),
        Some("drift") => run_drift(&args[1..]),
        Some("migrate") => run_migrate(&args[1..]).map(|()| ExitCode::SUCCESS),
        Some("audit") => run_audit(&args[1..]),
        _ => run(&args).map(|()| ExitCode::SUCCESS),
    };
    match outcome {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}
