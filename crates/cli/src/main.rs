//! `dblayout` — the layout advisor as a command-line tool (paper Figure 3),
//! plus `serve`/`client` subcommands fronting the resident what-if service.

use std::io::BufRead;
use std::process::ExitCode;
use std::time::Duration;

use dblayout_cli::constraints_file::parse_constraints_file;
use dblayout_cli::disks_file::parse_disks_file;
use dblayout_cli::{default_disks, resolve_catalog};
use dblayout_core::advisor::{Advisor, AdvisorConfig};
use dblayout_core::deploy::render_script;
use dblayout_core::tsgreedy::TsGreedyConfig;
use dblayout_server::{Client, Server, ServerConfig};

const USAGE: &str = "\
dblayout — automated database layout advisor (ICDE 2003 reproduction)

USAGE:
    dblayout --database <spec> --workload <file> [options]
    dblayout serve [serve-options]      run the what-if advisory service
    dblayout client [client-options]    talk to a running service
    dblayout lint [lint-options]        static-analyze the workspace sources

INPUTS (paper Figure 3):
    --database <spec>     built-in catalog: tpch[:sf] | tpch-n:<sf>:<n> | apb | sales
    --workload <file>     SQL DML statements, ';'-separated; optional
                          '-- weight: <w>' line before a statement
    --disks <file>        drive list: name capacity seek_ms read_mb_s write_mb_s [avail]
                          (default: the paper's 8-drive array)
    --constraints <file>  colocate A B | avail A <class> | max-movement <blocks>

OPTIONS:
    --k <n>               greedy step width (default 1)
    --script <dbname>     print the filegroup deployment script
    --json <file>         write the recommendation as JSON
    --help                this text

See `dblayout serve --help` and `dblayout client --help` for the service,
and `dblayout lint --help` for the static-analysis pass.
";

const LINT_USAGE: &str = "\
dblayout lint — workspace static analysis (panic-safety, lock discipline,
float hygiene; rule catalog in DESIGN.md, \"Static analysis\")

USAGE:
    dblayout lint [--deny-warnings] [--json] [--root <dir>]

Scans every Rust source under <root>/crates/*/src plus DESIGN.md, prints a
diagnostic per finding, and writes the machine-readable report to
<root>/results/lint_report.json.

Exit status: non-zero on any error-severity diagnostic (unlexable file,
malformed suppression), and — under --deny-warnings — on any finding.

OPTIONS:
    --deny-warnings     treat rule findings as fatal (CI mode)
    --json              print the JSON report to stdout instead of text
    --root <dir>        workspace root to scan (default: .)
    --help              this text
";

const SERVE_USAGE: &str = "\
dblayout serve — run the resident what-if advisory service

USAGE:
    dblayout serve [--port <n>] [options]

The server speaks newline-delimited JSON over TCP: one request object per
line, one response line per request (see README, \"The what-if server\").

OPTIONS:
    --port <n>          TCP port to listen on (default 7437; 0 picks a free
                        port — the chosen address is printed on stdout)
    --host <addr>       bind address (default 127.0.0.1)
    --threads <n>       worker threads (default 4)
    --queue <n>         max queued connections before `busy` (default 64)
    --deadline-ms <n>   per-request queue-wait deadline (default 30000)
    --sessions <n>      max concurrently open sessions (default 64)
    --cache <n>         max memoized what-if costs (default 1024)
    --help              this text
";

const CLIENT_USAGE: &str = "\
dblayout client — send requests to a running what-if service

USAGE:
    dblayout client --addr <host:port> [--request <json>]

With --request, sends that single JSON request and prints the response.
Without it, reads one JSON request per line from stdin and prints each
response line to stdout (blank lines are skipped).

Exits non-zero if the server is unreachable or the connection drops.

OPTIONS:
    --addr <host:port>  server address (default 127.0.0.1:7437)
    --request <json>    a single request to send
    --help              this text
";

struct Args {
    database: String,
    workload: String,
    disks: Option<String>,
    constraints: Option<String>,
    k: usize,
    script: Option<String>,
    json: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        database: String::new(),
        workload: String::new(),
        disks: None,
        constraints: None,
        k: 1,
        script: None,
        json: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} needs a value"));
        match flag.as_str() {
            "--database" => args.database = value("--database")?,
            "--workload" => args.workload = value("--workload")?,
            "--disks" => args.disks = Some(value("--disks")?),
            "--constraints" => args.constraints = Some(value("--constraints")?),
            "--k" => args.k = value("--k")?.parse().map_err(|e| format!("bad --k: {e}"))?,
            "--script" => args.script = Some(value("--script")?),
            "--json" => args.json = Some(value("--json")?),
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown flag `{other}`\n\n{USAGE}")),
        }
    }
    if args.database.is_empty() || args.workload.is_empty() {
        return Err(format!("--database and --workload are required\n\n{USAGE}"));
    }
    Ok(args)
}

fn run() -> Result<(), String> {
    let args = parse_args()?;
    let catalog = resolve_catalog(&args.database)?;
    let workload_text = std::fs::read_to_string(&args.workload)
        .map_err(|e| format!("cannot read workload `{}`: {e}", args.workload))?;
    let disks = match &args.disks {
        Some(path) => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| format!("cannot read drives `{path}`: {e}"))?;
            parse_disks_file(&text)?
        }
        None => default_disks(),
    };
    let constraints = match &args.constraints {
        Some(path) => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| format!("cannot read constraints `{path}`: {e}"))?;
            parse_constraints_file(&text, &catalog, &disks)?
        }
        None => dblayout_core::constraints::Constraints::none(),
    };

    let cfg = AdvisorConfig {
        search: TsGreedyConfig {
            k: args.k,
            constraints,
            ..Default::default()
        },
    };
    let advisor = Advisor::new(&catalog, &disks);
    let rec = advisor
        .recommend_sql(&workload_text, &cfg)
        .map_err(|e| e.to_string())?;

    println!("statements analyzed : {}", rec.plans.len());
    println!(
        "estimated I/O response time: full striping {:.0} ms -> recommended {:.0} ms",
        rec.full_striping_cost_ms, rec.recommended_cost_ms
    );
    println!(
        "estimated improvement: {:.1}%  ({} greedy iterations, {} cost evaluations)",
        rec.estimated_improvement_pct, rec.search.iterations, rec.search.cost_evaluations
    );
    println!();
    println!("recommended layout (object: disks):");
    for meta in catalog.objects() {
        let placed = rec.layout.disks_of(meta.id.index());
        let names: Vec<&str> = placed.iter().map(|&j| disks[j].name.as_str()).collect();
        println!("  {:<28} {}", meta.name, names.join(", "));
    }

    if let Some(db) = &args.script {
        println!();
        print!("{}", render_script(db, &catalog, &rec.layout, &disks));
    }

    if let Some(path) = &args.json {
        #[derive(serde::Serialize)]
        struct JsonOut<'a> {
            estimated_improvement_pct: f64,
            full_striping_cost_ms: f64,
            recommended_cost_ms: f64,
            objects: Vec<JsonObject<'a>>,
        }
        #[derive(serde::Serialize)]
        struct JsonObject<'a> {
            name: String,
            disks: Vec<&'a str>,
            fractions: Vec<f64>,
        }
        let out = JsonOut {
            estimated_improvement_pct: rec.estimated_improvement_pct,
            full_striping_cost_ms: rec.full_striping_cost_ms,
            recommended_cost_ms: rec.recommended_cost_ms,
            objects: catalog
                .objects()
                .iter()
                .map(|meta| JsonObject {
                    name: meta.name.clone(),
                    disks: rec
                        .layout
                        .disks_of(meta.id.index())
                        .iter()
                        .map(|&j| disks[j].name.as_str())
                        .collect(),
                    fractions: rec.layout.fractions_of(meta.id.index()).to_vec(),
                })
                .collect(),
        };
        let json = serde_json::to_string_pretty(&out).map_err(|e| e.to_string())?;
        std::fs::write(path, json).map_err(|e| format!("cannot write `{path}`: {e}"))?;
        println!("\n(JSON written to {path})");
    }
    Ok(())
}

fn run_serve(args: &[String]) -> Result<(), String> {
    let mut cfg = ServerConfig::default();
    let mut port: u16 = 7437;
    let mut host = "127.0.0.1".to_string();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--port" => {
                port = value("--port")?
                    .parse()
                    .map_err(|e| format!("bad --port: {e}"))?
            }
            "--host" => host = value("--host")?,
            "--threads" => {
                cfg.threads = value("--threads")?
                    .parse()
                    .map_err(|e| format!("bad --threads: {e}"))?
            }
            "--queue" => {
                cfg.queue_capacity = value("--queue")?
                    .parse()
                    .map_err(|e| format!("bad --queue: {e}"))?
            }
            "--deadline-ms" => {
                let ms: u64 = value("--deadline-ms")?
                    .parse()
                    .map_err(|e| format!("bad --deadline-ms: {e}"))?;
                cfg.deadline = Duration::from_millis(ms);
            }
            "--sessions" => {
                cfg.session_capacity = value("--sessions")?
                    .parse()
                    .map_err(|e| format!("bad --sessions: {e}"))?
            }
            "--cache" => {
                cfg.cache_capacity = value("--cache")?
                    .parse()
                    .map_err(|e| format!("bad --cache: {e}"))?
            }
            "--help" | "-h" => return Err(SERVE_USAGE.to_string()),
            other => return Err(format!("unknown flag `{other}`\n\n{SERVE_USAGE}")),
        }
    }
    cfg.addr = format!("{host}:{port}");
    let handle =
        Server::start(cfg.clone()).map_err(|e| format!("cannot listen on {}: {e}", cfg.addr))?;
    println!(
        "dblayout-server listening on {} ({} worker threads, queue {}, {} session slots)",
        handle.addr(),
        cfg.threads,
        cfg.queue_capacity,
        cfg.session_capacity
    );
    println!("one JSON request per line; try: {{\"op\":\"stats\"}}");
    // Serve until the process is killed.
    loop {
        std::thread::sleep(Duration::from_secs(3600));
    }
}

fn run_client(args: &[String]) -> Result<(), String> {
    let mut addr = "127.0.0.1:7437".to_string();
    let mut request: Option<String> = None;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--addr" => addr = value("--addr")?,
            "--request" => request = Some(value("--request")?),
            "--help" | "-h" => return Err(CLIENT_USAGE.to_string()),
            other => return Err(format!("unknown flag `{other}`\n\n{CLIENT_USAGE}")),
        }
    }
    let mut client = Client::connect(&addr)
        .map_err(|e| format!("cannot reach dblayout-server at {addr}: {e}"))?;
    match request {
        Some(line) => {
            let response = client
                .roundtrip(&line)
                .map_err(|e| format!("request to {addr} failed: {e}"))?;
            println!("{response}");
        }
        None => {
            let stdin = std::io::stdin();
            for line in stdin.lock().lines() {
                let line = line.map_err(|e| format!("stdin read failed: {e}"))?;
                if line.trim().is_empty() {
                    continue;
                }
                let response = client
                    .roundtrip(&line)
                    .map_err(|e| format!("request to {addr} failed: {e}"))?;
                println!("{response}");
            }
        }
    }
    Ok(())
}

fn run_lint(args: &[String]) -> Result<ExitCode, String> {
    let mut deny_warnings = false;
    let mut json = false;
    let mut root = ".".to_string();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--deny-warnings" => deny_warnings = true,
            "--json" => json = true,
            "--root" => {
                root = it
                    .next()
                    .cloned()
                    .ok_or_else(|| "--root needs a value".to_string())?
            }
            "--help" | "-h" => return Err(LINT_USAGE.to_string()),
            other => return Err(format!("unknown flag `{other}`\n\n{LINT_USAGE}")),
        }
    }
    let root = std::path::PathBuf::from(root);
    let report = dblayout_lint::lint_workspace(&root).map_err(|e| format!("lint failed: {e}"))?;
    let report_json = serde_json::to_string_pretty(&report.to_json()).map_err(|e| e.to_string())?;
    let results_dir = root.join("results");
    std::fs::create_dir_all(&results_dir)
        .map_err(|e| format!("cannot create `{}`: {e}", results_dir.display()))?;
    let out_path = results_dir.join("lint_report.json");
    std::fs::write(&out_path, &report_json)
        .map_err(|e| format!("cannot write `{}`: {e}", out_path.display()))?;
    if json {
        println!("{report_json}");
    } else {
        print!("{}", report.render());
        println!("(JSON report written to {})", out_path.display());
    }
    Ok(if report.is_clean(deny_warnings) {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let outcome = match args.first().map(String::as_str) {
        Some("serve") => run_serve(&args[1..]).map(|()| ExitCode::SUCCESS),
        Some("client") => run_client(&args[1..]).map(|()| ExitCode::SUCCESS),
        Some("lint") => run_lint(&args[1..]),
        _ => run().map(|()| ExitCode::SUCCESS),
    };
    match outcome {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}
