//! The constraints file (paper §3, input (4)): manageability and
//! availability requirements the DBA imposes.
//!
//! Format: one directive per line —
//!
//! ```text
//! colocate part partsupp          # same filegroup (§2.3.1)
//! avail customer mirroring        # Avail-Requirement (§2.3.2)
//! max-movement 60000              # blocks, relative to the current layout
//! ```
//!
//! `max-movement` measures against FULL STRIPING over the given drives
//! (the usual "currently deployed" baseline); callers with a different
//! current layout build [`Constraints`] programmatically.

use dblayout_catalog::Catalog;
use dblayout_core::constraints::Constraints;
use dblayout_disksim::{Availability, DiskSpec, Layout};

/// Parses a constraints file against a catalog and drive set.
pub fn parse_constraints_file(
    text: &str,
    catalog: &Catalog,
    disks: &[DiskSpec],
) -> Result<Constraints, String> {
    let mut constraints = Constraints::none();
    let mut movement: Option<u64> = None;
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() || line.starts_with("--") {
            continue;
        }
        let fields: Vec<&str> = line.split_whitespace().collect();
        let at = |msg: &str| format!("line {}: {msg}", lineno + 1);
        match fields[0].to_ascii_lowercase().as_str() {
            "colocate" => {
                if fields.len() != 3 {
                    return Err(at("colocate needs two object names"));
                }
                let a = catalog
                    .object_id(fields[1])
                    .ok_or_else(|| at(&format!("unknown object `{}`", fields[1])))?;
                let b = catalog
                    .object_id(fields[2])
                    .ok_or_else(|| at(&format!("unknown object `{}`", fields[2])))?;
                constraints = constraints.co_locate(a, b);
            }
            "avail" => {
                if fields.len() != 3 {
                    return Err(at("avail needs an object name and a class"));
                }
                let obj = catalog
                    .object_id(fields[1])
                    .ok_or_else(|| at(&format!("unknown object `{}`", fields[1])))?;
                let class = match fields[2].to_ascii_lowercase().as_str() {
                    "none" => Availability::None,
                    "parity" => Availability::Parity,
                    "mirroring" => Availability::Mirroring,
                    other => return Err(at(&format!("unknown availability `{other}`"))),
                };
                constraints = constraints.require_avail(obj, class);
            }
            "max-movement" => {
                if fields.len() != 2 {
                    return Err(at("max-movement needs a block count"));
                }
                let blocks: u64 = fields[1]
                    .parse()
                    .map_err(|_| at(&format!("bad block count `{}`", fields[1])))?;
                movement = Some(blocks);
            }
            other => return Err(at(&format!("unknown directive `{other}`"))),
        }
    }
    if let Some(blocks) = movement {
        let sizes: Vec<u64> = catalog.objects().iter().map(|o| o.size_blocks).collect();
        let current = Layout::full_striping(sizes, disks);
        constraints = constraints.bound_movement(current, blocks);
    }
    Ok(constraints)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dblayout_catalog::tpch::tpch_catalog;
    use dblayout_disksim::paper_disks;

    #[test]
    fn parses_all_directive_kinds() {
        let catalog = tpch_catalog(0.01);
        let disks = paper_disks();
        let c = parse_constraints_file(
            "# a comment\n\
             colocate part partsupp\n\
             avail customer mirroring   # inline comment\n\
             max-movement 5000\n",
            &catalog,
            &disks,
        )
        .unwrap();
        assert_eq!(c.co_located.len(), 1);
        assert_eq!(c.avail.len(), 1);
        assert_eq!(c.max_data_movement_blocks, Some(5000));
        assert!(c.current_layout.is_some());
    }

    #[test]
    fn unknown_object_and_directive_error_with_line() {
        let catalog = tpch_catalog(0.01);
        let disks = paper_disks();
        let err = parse_constraints_file("colocate part ghosts", &catalog, &disks).unwrap_err();
        assert!(err.contains("line 1") && err.contains("ghosts"), "{err}");
        let err = parse_constraints_file("\nstripe everything", &catalog, &disks).unwrap_err();
        assert!(err.contains("line 2"), "{err}");
    }

    #[test]
    fn empty_file_is_no_constraints() {
        let catalog = tpch_catalog(0.01);
        let c = parse_constraints_file("", &catalog, &paper_disks()).unwrap();
        assert!(c.co_located.is_empty() && c.avail.is_empty());
    }
}
