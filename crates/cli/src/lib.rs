#![warn(missing_docs)]

//! Command-line front-end: the paper's Figure-3 tool as a binary.
//!
//! Inputs (paper §3): a database, a workload file of weighted SQL DML
//! statements, a file listing disk drives with their characteristics, and
//! optional manageability/availability constraints. Output: the
//! recommended layout, the estimated improvement over FULL STRIPING, and
//! (optionally) the filegroup deployment script.
//!
//! ```text
//! dblayout --database tpch:0.1 --workload q.sql --disks drives.txt \
//!          [--constraints c.txt] [--k 1] [--script mydb] [--json out.json]
//! ```

pub mod constraints_file;
pub mod disks_file;

use dblayout_catalog::Catalog;
use dblayout_disksim::DiskSpec;

/// Resolves the `--database` argument to a built-in catalog:
/// `tpch[:sf]`, `tpch-n:<sf>:<copies>`, `apb`, or `sales`.
pub fn resolve_catalog(spec: &str) -> Result<Catalog, String> {
    let mut parts = spec.split(':');
    let name = parts.next().unwrap_or_default().to_ascii_lowercase();
    match name.as_str() {
        "tpch" => {
            let sf: f64 = parts
                .next()
                .map(|s| s.parse().map_err(|_| format!("bad scale factor `{s}`")))
                .transpose()?
                .unwrap_or(1.0);
            if sf <= 0.0 {
                return Err("scale factor must be positive".into());
            }
            Ok(dblayout_catalog::tpch::tpch_catalog(sf))
        }
        "tpch-n" => {
            let sf: f64 = parts
                .next()
                .ok_or("tpch-n needs `:sf:copies`")?
                .parse()
                .map_err(|e| format!("bad scale factor: {e}"))?;
            let n: usize = parts
                .next()
                .ok_or("tpch-n needs `:sf:copies`")?
                .parse()
                .map_err(|e| format!("bad copy count: {e}"))?;
            Ok(dblayout_catalog::tpch::replicate_tpch(sf, n))
        }
        "apb" => Ok(dblayout_catalog::apb::apb_catalog()),
        "sales" => Ok(dblayout_catalog::sales::sales_catalog()),
        other => Err(format!(
            "unknown database `{other}` (expected tpch[:sf], tpch-n:sf:n, apb, sales)"
        )),
    }
}

/// The paper's example 8-drive array, used when `--disks` is omitted.
pub fn default_disks() -> Vec<DiskSpec> {
    dblayout_disksim::paper_disks()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolve_builtin_catalogs() {
        assert_eq!(resolve_catalog("tpch:0.1").unwrap().tables().len(), 8);
        assert_eq!(resolve_catalog("apb").unwrap().tables().len(), 40);
        assert_eq!(resolve_catalog("sales").unwrap().tables().len(), 50);
        assert_eq!(
            resolve_catalog("tpch-n:0.01:3").unwrap().tables().len(),
            24
        );
    }

    #[test]
    fn bad_specs_error() {
        assert!(resolve_catalog("oracle").is_err());
        assert!(resolve_catalog("tpch:zero").is_err());
        assert!(resolve_catalog("tpch:-1").is_err());
        assert!(resolve_catalog("tpch-n:1").is_err());
    }
}
