#![warn(missing_docs)]

//! Command-line front-end: the paper's Figure-3 tool as a binary.
//!
//! Inputs (paper §3): a database, a workload file of weighted SQL DML
//! statements, a file listing disk drives with their characteristics, and
//! optional manageability/availability constraints. Output: the
//! recommended layout, the estimated improvement over FULL STRIPING, and
//! (optionally) the filegroup deployment script.
//!
//! ```text
//! dblayout --database tpch:0.1 --workload q.sql --disks drives.txt \
//!          [--constraints c.txt] [--k 1] [--script mydb] [--json out.json]
//! ```

pub mod constraints_file;
pub mod disks_file;

use dblayout_disksim::DiskSpec;

/// Resolves the `--database` argument to a built-in catalog (shared with the
/// server; see [`dblayout_catalog::resolve_catalog`]).
pub use dblayout_catalog::resolve_catalog;

/// The paper's example 8-drive array, used when `--disks` is omitted.
pub fn default_disks() -> Vec<DiskSpec> {
    dblayout_disksim::paper_disks()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolve_reexport_still_works() {
        assert_eq!(resolve_catalog("tpch:0.1").unwrap().tables().len(), 8);
        assert!(resolve_catalog("oracle").is_err());
    }
}
