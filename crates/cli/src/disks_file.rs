//! The disk-drive list file (paper §3, input (3): "a file containing a
//! list of disk drives with the associated disk characteristics. The disk
//! drives listed in this file need not be existing disk drives.").
//!
//! Format: one drive per line —
//!
//! ```text
//! # name  capacity  seek_ms  read_mb_s  write_mb_s  [none|parity|mirroring]
//! D1      8GB       9.0      22         18          none
//! D2      6GB       10.0     20         16          mirroring
//! ```
//!
//! Capacity accepts `GB`/`MB` suffixes or a raw block count.

use dblayout_catalog::BLOCK_BYTES;
use dblayout_disksim::{Availability, DiskSpec};

/// Parses a drives file. Lines starting with `#` (or `--`) and blank lines
/// are skipped.
pub fn parse_disks_file(text: &str) -> Result<Vec<DiskSpec>, String> {
    let mut out = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') || line.starts_with("--") {
            continue;
        }
        let fields: Vec<&str> = line.split_whitespace().collect();
        if fields.len() < 5 {
            return Err(format!(
                "line {}: expected `name capacity seek_ms read_mb_s write_mb_s [avail]`",
                lineno + 1
            ));
        }
        let capacity_blocks =
            parse_capacity(fields[1]).map_err(|e| format!("line {}: {e}", lineno + 1))?;
        let avg_seek_ms: f64 = fields[2]
            .parse()
            .map_err(|e| format!("line {}: bad seek time: {e}", lineno + 1))?;
        let read_mb_s: f64 = fields[3]
            .parse()
            .map_err(|e| format!("line {}: bad read rate: {e}", lineno + 1))?;
        let write_mb_s: f64 = fields[4]
            .parse()
            .map_err(|e| format!("line {}: bad write rate: {e}", lineno + 1))?;
        if avg_seek_ms < 0.0 || read_mb_s <= 0.0 || write_mb_s <= 0.0 {
            return Err(format!("line {}: rates must be positive", lineno + 1));
        }
        let avail = match fields.get(5).map(|s| s.to_ascii_lowercase()) {
            None => Availability::None,
            Some(s) if s == "none" => Availability::None,
            Some(s) if s == "parity" => Availability::Parity,
            Some(s) if s == "mirroring" => Availability::Mirroring,
            Some(other) => {
                return Err(format!(
                    "line {}: unknown availability `{other}` (none|parity|mirroring)",
                    lineno + 1
                ))
            }
        };
        out.push(
            DiskSpec::new(
                fields[0],
                capacity_blocks,
                avg_seek_ms,
                read_mb_s,
                write_mb_s,
            )
            .with_avail(avail),
        );
    }
    if out.is_empty() {
        return Err("no drives in file".into());
    }
    Ok(out)
}

fn parse_capacity(s: &str) -> Result<u64, String> {
    let lower = s.to_ascii_lowercase();
    let (digits, unit_bytes): (&str, u64) = if let Some(d) = lower.strip_suffix("gb") {
        (d, 1_000_000_000)
    } else if let Some(d) = lower.strip_suffix("mb") {
        (d, 1_000_000)
    } else {
        (lower.as_str(), 0)
    };
    let value: f64 = digits
        .trim()
        .parse()
        .map_err(|_| format!("bad capacity `{s}`"))?;
    if value <= 0.0 {
        return Err(format!("capacity `{s}` must be positive"));
    }
    Ok(if unit_bytes == 0 {
        value as u64 // raw block count
    } else {
        ((value * unit_bytes as f64) / BLOCK_BYTES as f64) as u64
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_mixed_formats() {
        let disks = parse_disks_file(
            "# comment\n\
             D1 8GB 9.0 22 18 none\n\
             D2 512MB 10 20 16 mirroring\n\
             \n\
             D3 98304 11 18 14\n",
        )
        .unwrap();
        assert_eq!(disks.len(), 3);
        assert_eq!(disks[0].capacity_blocks, 8_000_000_000 / 65536);
        assert_eq!(disks[1].avail, Availability::Mirroring);
        assert_eq!(disks[2].capacity_blocks, 98_304);
        assert_eq!(disks[2].avail, Availability::None);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = parse_disks_file("D1 8GB 9.0 22 18\nD2 oops 1 2 3").unwrap_err();
        assert!(err.contains("line 2"), "{err}");
    }

    #[test]
    fn rejects_incomplete_lines_and_bad_avail() {
        assert!(parse_disks_file("D1 8GB 9.0").is_err());
        assert!(parse_disks_file("D1 8GB 9.0 22 18 raid99").is_err());
        assert!(parse_disks_file("").is_err());
        assert!(parse_disks_file("D1 0GB 9 22 18").is_err());
    }
}
