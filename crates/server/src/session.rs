//! Resident session state: catalogs, plans, decomposed sub-plan workloads,
//! incrementally-maintained access graphs, and the layout-cost LRU cache.
//!
//! A session pins one catalog + disk configuration in memory and accumulates
//! a weighted workload across `add_statements` calls. Instead of re-running
//! *Analyze Workload* per request, the session keeps three derived artifacts
//! hot and extends them incrementally:
//!
//! * the parsed-and-optimized plans (`plans`),
//! * the plan→sub-plan decomposition the cost model consumes (`workload`),
//! * the Figure-6 access graph (`graph`), via
//!   [`extend_access_graph`](dblayout_core::extend_access_graph) — which
//!   accumulates in arrival order, so the incremental graph is bit-identical
//!   to a batch rebuild.
//!
//! `version` increments on every successful `add_statements`; it keys the
//! memoization of what-if costs so stale entries can never be served.
//!
//! For continuous relayout (DESIGN.md §9) the session additionally tracks
//! an epoch counter and decay factor (each `add_statements` closes an epoch
//! by aging the graph; decay 1.0 keeps the plain accumulate-only semantics
//! bit-for-bit), the currently *deployed* layout, the graph snapshot the
//! deployed layout was advised on (what `drift` compares against), and the
//! last budgeted recommendation (the default `plan_migration` target).

use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use dblayout_catalog::Catalog;
use dblayout_core::costmodel::decompose_workload;
use dblayout_core::extend_access_graph;
use dblayout_disksim::{DiskSpec, Layout};
use dblayout_obs::prof::PhaseTimer;
use dblayout_partition::Graph;
use dblayout_planner::{plan_statement, PhysicalPlan, Subplan};
use dblayout_sql::parse_workload_file;

use crate::protocol::ApiError;

/// One open session.
pub struct Session {
    /// The resident catalog.
    pub catalog: Catalog,
    /// The disk configuration layouts are evaluated against.
    pub disks: Vec<DiskSpec>,
    /// Optimized plans with weights, in arrival order.
    pub plans: Vec<(PhysicalPlan, f64)>,
    /// Cached plan→sub-plan decomposition (same order as `plans`).
    pub workload: Vec<(Vec<Subplan>, f64)>,
    /// The incrementally-maintained Figure-6 access graph.
    pub graph: Graph,
    /// Statement-set version; bumps on every successful `add_statements`.
    pub version: u64,
    /// Worker threads for this session's TS-GREEDY runs (dblayout-par).
    /// Purely a latency knob: results are byte-identical at any value.
    pub threads: usize,
    /// Access-graph decay factor in `(0, 1]`; 1.0 (the default) disables
    /// aging entirely and keeps graphs bit-identical to plain accumulation.
    pub decay: f64,
    /// Epochs closed so far (one per successful `add_statements`).
    pub epoch: u64,
    /// The layout currently considered deployed — the seed and movement
    /// base for budgeted advising and the start point for migration plans.
    /// Starts as the full-striping baseline; `plan_migration` with
    /// `apply: true` moves it.
    pub deployed: Layout,
    /// Snapshot of the access graph at the moment the deployed layout was
    /// last advised/applied; the `drift` op compares the live graph against
    /// it. Starts empty, so traffic before any advice reads as full drift.
    pub advised_graph: Graph,
    /// The most recent budgeted recommendation — the implicit target of a
    /// `plan_migration` request that names none.
    pub last_target: Option<Layout>,
    /// The catalog spec string the session was opened with, kept verbatim
    /// for decision-record provenance (dblayout-audit).
    pub catalog_spec: String,
    /// The disk spec string the session was opened with (`paper`,
    /// `uniform:...`), for decision-record provenance.
    pub disks_spec: String,
    /// The accumulated workload SQL exactly as ingested (weight comments
    /// included) — the value-complete workload a decision record embeds.
    pub sql_text: String,
    /// Id of the most recent decision recorded for this session; stamped
    /// onto DriftReports and MigrationPlans so they name their provenance.
    pub last_decision: Option<u64>,
    /// Full-striping baseline layout, built once at open — object sizes and
    /// disks are fixed for the life of the session, so what-if requests
    /// against the baseline never rebuild it.
    fs_layout: Layout,
    /// [`layout_hash`] of `fs_layout`, precomputed for the cache key.
    fs_hash: u64,
}

impl Session {
    /// Opens a session over a catalog and disk set with single-threaded
    /// search (see [`Session::with_threads`]).
    pub fn new(catalog: Catalog, disks: Vec<DiskSpec>) -> Self {
        Self::with_threads(catalog, disks, 1)
    }

    /// Opens a session whose searches score candidates on `threads`
    /// workers (clamped to at least 1).
    pub fn with_threads(catalog: Catalog, disks: Vec<DiskSpec>, threads: usize) -> Self {
        Self::with_relayout(catalog, disks, threads, 1.0)
    }

    /// [`Self::with_threads`] plus an access-graph decay factor in
    /// `(0, 1]` (1.0 = no aging; see DESIGN.md §9).
    ///
    /// # Panics
    /// Asserts the decay range — the protocol layer rejects out-of-range
    /// values with a structured error before construction.
    pub fn with_relayout(
        catalog: Catalog,
        disks: Vec<DiskSpec>,
        threads: usize,
        decay: f64,
    ) -> Self {
        assert!(
            decay > 0.0 && decay <= 1.0,
            "decay must be in (0, 1], got {decay}"
        );
        let n = catalog.objects().len();
        let sizes: Vec<u64> = catalog.objects().iter().map(|o| o.size_blocks).collect();
        let fs_layout = Layout::full_striping(sizes, &disks);
        let fs_hash = layout_hash(&fs_layout);
        Self {
            catalog,
            disks,
            plans: Vec::new(),
            workload: Vec::new(),
            graph: Graph::new(n),
            version: 0,
            threads: threads.max(1),
            decay,
            epoch: 0,
            deployed: fs_layout.clone(),
            advised_graph: Graph::new(n),
            last_target: None,
            catalog_spec: String::new(),
            disks_spec: String::new(),
            sql_text: String::new(),
            last_decision: None,
            fs_layout,
            fs_hash,
        }
    }

    /// The session's full-striping baseline layout.
    pub fn full_striping(&self) -> &Layout {
        &self.fs_layout
    }

    /// Precomputed [`layout_hash`] of the full-striping baseline.
    pub fn full_striping_hash(&self) -> u64 {
        self.fs_hash
    }

    /// Parses, plans, and folds `sql` (workload-file syntax) into the
    /// session. All-or-nothing: on any parse/plan error the session state is
    /// untouched. Returns the number of statements added.
    pub fn add_statements(&mut self, sql: &str) -> Result<usize, ApiError> {
        self.add_statements_profiled(sql, &PhaseTimer::disabled())
    }

    /// [`Self::add_statements`] with phase attribution: parse + plan +
    /// decompose accrue to `analyze`, access-graph folds to `build-graph`.
    /// A disabled timer makes this identical to [`Self::add_statements`].
    pub fn add_statements_profiled(
        &mut self,
        sql: &str,
        prof: &PhaseTimer,
    ) -> Result<usize, ApiError> {
        let analyze = prof.phase("analyze");
        let entries = parse_workload_file(sql)
            .map_err(|e| ApiError::new("parse_error", format!("workload parse error: {e}")))?;
        if entries.is_empty() {
            return Err(ApiError::bad_request("no statements in `sql`"));
        }
        let mut new_plans = Vec::with_capacity(entries.len());
        for entry in &entries {
            let plan = plan_statement(&self.catalog, &entry.statement)
                .map_err(|e| ApiError::new("plan_error", format!("planning error: {e}")))?;
            new_plans.push((plan, entry.weight));
        }
        drop(analyze);
        {
            let _build = prof.phase("build-graph");
            // Each successful ingestion closes an epoch: existing weights
            // age by the decay factor, the new statements land at full
            // weight. With decay 1.0 the scale is skipped outright, so the
            // graph stays bit-identical to plain accumulation.
            self.epoch += 1;
            dblayout_relayout::advance_epoch(&mut self.graph, self.decay);
            extend_access_graph(&mut self.graph, &new_plans);
        }
        let _analyze = prof.phase("analyze");
        self.workload.extend(decompose_workload(&new_plans));
        let added = new_plans.len();
        self.plans.extend(new_plans);
        // Only after everything succeeded: the recorded SQL must describe
        // exactly the statements the session actually holds.
        if !self.sql_text.is_empty() {
            self.sql_text.push('\n');
        }
        self.sql_text.push_str(sql);
        self.version += 1;
        Ok(added)
    }

    /// Object sizes in blocks, in catalog order.
    pub fn object_sizes(&self) -> Vec<u64> {
        self.catalog
            .objects()
            .iter()
            .map(|o| o.size_blocks)
            .collect()
    }

    /// Materializes a layout from an explicit fraction matrix, validating
    /// its shape against this session's catalog and disks.
    pub fn layout_from_fractions(&self, fractions: &[Vec<f64>]) -> Result<Layout, ApiError> {
        let sizes = self.object_sizes();
        if fractions.len() != sizes.len() {
            return Err(ApiError::bad_request(format!(
                "layout has {} object rows, catalog has {} objects",
                fractions.len(),
                sizes.len()
            )));
        }
        let n_disks = self.disks.len();
        let mut layout = Layout::empty(sizes, n_disks);
        for (obj, row) in fractions.iter().enumerate() {
            if row.len() != n_disks {
                return Err(ApiError::bad_request(format!(
                    "layout row {obj} has {} fractions, session has {n_disks} disks",
                    row.len()
                )));
            }
            // Phrased so NaN fails closed: `f >= 0.0` and `sum > 0.0` are
            // both false for NaN, where `f < 0.0` / `sum <= 0.0` would let
            // NaN rows slip through to the panicking assert in `place`.
            let sum: f64 = row.iter().sum();
            if !(row.iter().all(|&f| f >= 0.0) && sum.is_finite() && sum > 0.0) {
                return Err(ApiError::bad_request(format!(
                    "layout row {obj} needs finite non-negative fractions with a positive sum"
                )));
            }
            let placement: Vec<(usize, f64)> = row
                .iter()
                .enumerate()
                .filter(|(_, &f)| f != 0.0) // dblayout::allow(R3, reason = "exact bit-zero drops unused disks; NaN already rejected by the finite-sum check above")
                .map(|(j, &f)| (j, f))
                .collect();
            layout.place(obj, &placement);
        }
        layout
            .validate(&self.disks)
            .map_err(|e| ApiError::bad_request(format!("invalid layout: {e}")))?;
        Ok(layout)
    }
}

/// The session table, bounded so a misbehaving client can't grow the server
/// without limit. Sessions are handed out as `Arc<Mutex<_>>` so requests
/// against *different* sessions run concurrently while the registry lock is
/// held only for the lookup.
///
/// An optional max-idle TTL (off by default) lets long-running servers
/// reclaim abandoned sessions: every lookup refreshes a session's last-used
/// stamp, and [`SessionRegistry::sweep_idle`] — called by the engine on
/// request entry — evicts sessions idle past the TTL, counting them in
/// [`SessionRegistry::evicted_total`].
pub struct SessionRegistry {
    sessions: HashMap<u64, (Arc<Mutex<Session>>, Instant)>,
    next_id: u64,
    capacity: usize,
    idle_ttl: Option<Duration>,
    evicted_total: u64,
}

impl SessionRegistry {
    /// An empty registry holding at most `capacity` concurrent sessions,
    /// with idle eviction disabled.
    pub fn new(capacity: usize) -> Self {
        Self {
            sessions: HashMap::new(),
            next_id: 1,
            capacity,
            idle_ttl: None,
            evicted_total: 0,
        }
    }

    /// Sets (or clears) the max-idle TTL. `None` disables idle eviction.
    pub fn set_idle_ttl(&mut self, ttl: Option<Duration>) {
        self.idle_ttl = ttl;
    }

    /// Sessions evicted by idle sweeps since the registry was created.
    pub fn evicted_total(&self) -> u64 {
        self.evicted_total
    }

    /// Opens a session, returning its id.
    pub fn open(&mut self, session: Session) -> Result<u64, ApiError> {
        if self.sessions.len() >= self.capacity {
            return Err(ApiError::new(
                "capacity",
                format!(
                    "session table full ({} open, capacity {}); close a session first",
                    self.sessions.len(),
                    self.capacity
                ),
            ));
        }
        let id = self.next_id;
        self.next_id += 1;
        self.sessions
            .insert(id, (Arc::new(Mutex::new(session)), Instant::now())); // dblayout::allow(R6, reason = "the timestamp only drives idle-TTL eviction, never advisory results; the zone edge is a name collision between DecisionLog file opens and this registry open")
        Ok(id)
    }

    /// Handle to an open session (clone of its shared lock); refreshes the
    /// session's last-used stamp.
    pub fn get(&mut self, id: u64) -> Result<Arc<Mutex<Session>>, ApiError> {
        match self.sessions.get_mut(&id) {
            Some((handle, last_used)) => {
                *last_used = Instant::now();
                Ok(handle.clone())
            }
            None => Err(ApiError::new(
                "unknown_session",
                format!("no open session {id}"),
            )),
        }
    }

    /// Evicts every session idle longer than the configured TTL, returning
    /// the evicted ids (empty when no TTL is set). The caller is
    /// responsible for invalidating any per-session caches.
    pub fn sweep_idle(&mut self) -> Vec<u64> {
        let Some(ttl) = self.idle_ttl else {
            return Vec::new();
        };
        let now = Instant::now();
        let mut evicted: Vec<u64> = self
            .sessions
            .iter()
            .filter(|(_, (_, last_used))| now.duration_since(*last_used) > ttl)
            .map(|(&id, _)| id)
            .collect();
        evicted.sort_unstable();
        for id in &evicted {
            self.sessions.remove(id);
        }
        self.evicted_total += evicted.len() as u64;
        evicted
    }

    /// Closes a session, dropping its resident state.
    pub fn close(&mut self, id: u64) -> Result<(), ApiError> {
        self.sessions
            .remove(&id)
            .map(|_| ())
            .ok_or_else(|| ApiError::new("unknown_session", format!("no open session {id}")))
    }

    /// Number of open sessions.
    pub fn len(&self) -> usize {
        self.sessions.len()
    }

    /// Whether no sessions are open.
    pub fn is_empty(&self) -> bool {
        self.sessions.is_empty()
    }
}

/// Memoized what-if costs, keyed on (session, statement-set version, layout
/// hash) with least-recently-used eviction.
pub struct CostCache {
    map: HashMap<(u64, u64, u64), f64>,
    /// Keys in use order, oldest first (small capacities keep the linear
    /// scans in `touch` cheap).
    order: Vec<(u64, u64, u64)>,
    capacity: usize,
}

impl CostCache {
    /// An empty cache holding at most `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        Self {
            map: HashMap::new(),
            order: Vec::new(),
            capacity,
        }
    }

    /// Looks up a memoized cost, refreshing its recency on hit.
    pub fn get(&mut self, key: (u64, u64, u64)) -> Option<f64> {
        let cost = *self.map.get(&key)?;
        self.touch(key);
        Some(cost)
    }

    /// Inserts (or refreshes) a memoized cost, evicting the least recently
    /// used entry when full.
    pub fn insert(&mut self, key: (u64, u64, u64), cost: f64) {
        if self.map.insert(key, cost).is_none() {
            self.order.push(key);
            if self.order.len() > self.capacity {
                let evicted = self.order.remove(0);
                self.map.remove(&evicted);
            }
        } else {
            self.touch(key);
        }
    }

    /// Drops every entry belonging to `session`.
    pub fn invalidate_session(&mut self, session: u64) {
        self.map.retain(|k, _| k.0 != session);
        self.order.retain(|k| k.0 != session);
    }

    /// Current number of entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    fn touch(&mut self, key: (u64, u64, u64)) {
        if let Some(pos) = self.order.iter().position(|k| *k == key) {
            self.order.remove(pos);
            self.order.push(key);
        }
    }
}

/// FNV-1a over a layout's fraction bit patterns — the cache key component
/// identifying the candidate layout exactly (bit equality, not epsilon).
pub fn layout_hash(layout: &Layout) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    for obj in 0..layout.object_count() {
        for &f in layout.fractions_of(obj) {
            eat(&f.to_bits().to_le_bytes());
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use dblayout_catalog::resolve_catalog;
    use dblayout_core::build_access_graph;

    fn tpch_session() -> Session {
        Session::new(
            resolve_catalog("tpch:0.01").unwrap(),
            dblayout_disksim::paper_disks(),
        )
    }

    #[test]
    fn add_statements_extends_all_artifacts() {
        let mut s = tpch_session();
        let added = s
            .add_statements("SELECT COUNT(*) FROM lineitem, orders WHERE l_orderkey = o_orderkey;")
            .unwrap();
        assert_eq!(added, 1);
        assert_eq!(s.version, 1);
        assert_eq!(s.plans.len(), 1);
        assert_eq!(s.workload.len(), 1);

        s.add_statements("-- weight: 4\nSELECT COUNT(*) FROM lineitem;")
            .unwrap();
        assert_eq!(s.version, 2);
        assert_eq!(s.plans.len(), 2);

        // Incremental graph == batch rebuild, bit for bit.
        let batch = build_access_graph(s.catalog.objects().len(), &s.plans);
        for u in 0..s.graph.len() {
            assert_eq!(
                batch.node_weight(u).to_bits(),
                s.graph.node_weight(u).to_bits()
            );
        }
    }

    #[test]
    fn failed_add_leaves_session_untouched() {
        let mut s = tpch_session();
        s.add_statements("SELECT COUNT(*) FROM lineitem;").unwrap();
        let err = s
            .add_statements("SELECT COUNT(*) FROM lineitem;\nSELECT COUNT(*) FROM nope;")
            .unwrap_err();
        assert_eq!(err.code, "plan_error");
        assert_eq!(s.plans.len(), 1);
        assert_eq!(s.version, 1);
        assert!(s.add_statements("").is_err());
    }

    #[test]
    fn registry_caps_and_recycles() {
        let mut reg = SessionRegistry::new(2);
        let a = reg.open(tpch_session()).unwrap();
        let _b = reg.open(tpch_session()).unwrap();
        assert_eq!(reg.open(tpch_session()).unwrap_err().code, "capacity");
        reg.close(a).unwrap();
        assert_eq!(reg.len(), 1);
        let c = reg.open(tpch_session()).unwrap();
        assert!(c > a, "ids are never reused");
        assert!(reg.get(a).is_err());
        assert_eq!(crate::lock_unpoisoned(&reg.get(c).unwrap()).version, 0);
    }

    #[test]
    fn idle_ttl_evicts_only_stale_sessions() {
        let mut reg = SessionRegistry::new(8);
        let a = reg.open(tpch_session()).unwrap();
        let b = reg.open(tpch_session()).unwrap();
        // No TTL configured: sweeping is a no-op.
        assert!(reg.sweep_idle().is_empty());
        assert_eq!(reg.evicted_total(), 0);

        reg.set_idle_ttl(Some(Duration::from_millis(30)));
        std::thread::sleep(Duration::from_millis(60));
        // Touching `b` refreshes it; `a` stays stale.
        reg.get(b).unwrap();
        let evicted = reg.sweep_idle();
        assert_eq!(evicted, vec![a]);
        assert_eq!(reg.evicted_total(), 1);
        assert!(reg.get(a).is_err());
        assert!(reg.get(b).is_ok());

        // Disabling the TTL stops further eviction.
        reg.set_idle_ttl(None);
        std::thread::sleep(Duration::from_millis(60));
        assert!(reg.sweep_idle().is_empty());
        assert_eq!(reg.len(), 1);
    }

    #[test]
    fn decay_session_ages_graph_per_ingestion() {
        let mut s = Session::with_relayout(
            resolve_catalog("tpch:0.01").unwrap(),
            dblayout_disksim::paper_disks(),
            1,
            0.5,
        );
        s.add_statements("SELECT COUNT(*) FROM lineitem, orders WHERE l_orderkey = o_orderkey;")
            .unwrap();
        assert_eq!(s.epoch, 1);
        let li = s.catalog.object_id("lineitem").unwrap().index();
        let ord = s.catalog.object_id("orders").unwrap().index();
        let w1 = s.graph.edge_weight(li, ord);
        assert!(w1 > 0.0);
        // Second identical ingestion: old weight halves, new lands on top.
        s.add_statements("SELECT COUNT(*) FROM lineitem, orders WHERE l_orderkey = o_orderkey;")
            .unwrap();
        assert_eq!(s.epoch, 2);
        assert_eq!(
            s.graph.edge_weight(li, ord).to_bits(),
            (w1 * 0.5 + w1).to_bits()
        );
        // Relayout state starts at the baseline with no advice taken.
        assert_eq!(s.deployed.object_count(), s.full_striping().object_count());
        assert!(s.last_target.is_none());
        assert_eq!(s.advised_graph.edge_count(), 0);
    }

    #[test]
    fn cost_cache_is_lru_and_bounded() {
        let mut cache = CostCache::new(2);
        cache.insert((1, 1, 10), 100.0);
        cache.insert((1, 1, 20), 200.0);
        assert_eq!(cache.get((1, 1, 10)), Some(100.0)); // refresh 10
        cache.insert((1, 1, 30), 300.0); // evicts 20
        assert_eq!(cache.get((1, 1, 20)), None);
        assert_eq!(cache.get((1, 1, 10)), Some(100.0));
        assert_eq!(cache.len(), 2);
        cache.invalidate_session(1);
        assert!(cache.is_empty());
    }

    #[test]
    fn layout_hash_separates_layouts() {
        let s = tpch_session();
        let sizes = s.object_sizes();
        let fs = Layout::full_striping(sizes.clone(), &s.disks);
        let mut other = Layout::empty(sizes, s.disks.len());
        for obj in 0..other.object_count() {
            other.place(obj, &[(obj % s.disks.len(), 1.0)]);
        }
        assert_ne!(layout_hash(&fs), layout_hash(&other));
        assert_eq!(layout_hash(&fs), layout_hash(&fs.clone()));
    }

    #[test]
    fn fraction_matrix_roundtrip_and_validation() {
        let mut s = tpch_session();
        s.add_statements("SELECT COUNT(*) FROM lineitem;").unwrap();
        let n = s.catalog.objects().len();
        let m = s.disks.len();
        let even = vec![vec![1.0 / m as f64; m]; n];
        let layout = s.layout_from_fractions(&even).unwrap();
        assert_eq!(layout.object_count(), n);
        assert!(s.layout_from_fractions(&even[..n - 1]).is_err());
        let mut ragged = even.clone();
        ragged[0].pop();
        assert!(s.layout_from_fractions(&ragged).is_err());
        let mut under = even.clone();
        under[0] = vec![0.0; m];
        assert!(s.layout_from_fractions(&under).is_err());
        // NaN must fail closed instead of reaching the assert in `place`.
        let mut nan_row = even.clone();
        nan_row[0] = vec![f64::NAN; m];
        assert!(s.layout_from_fractions(&nan_row).is_err());
        let mut inf_row = even;
        inf_row[0][0] = f64::INFINITY;
        assert!(s.layout_from_fractions(&inf_row).is_err());
    }
}
