//! A minimal blocking client for the newline-delimited JSON protocol, used
//! by the CLI `client` subcommand, the integration tests, and the loopback
//! benchmark.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

/// One connection to a running server.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connects to `addr` (`host:port`).
    pub fn connect(addr: &str) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok(); // dblayout::allow(R9, reason = "nodelay is a best-effort latency hint; the connection works without it")
        let writer = stream.try_clone()?;
        Ok(Self {
            reader: BufReader::new(stream),
            writer,
        })
    }

    /// Sends one request line and reads the one-line response (both without
    /// trailing newlines).
    pub fn roundtrip(&mut self, request: &str) -> std::io::Result<String> {
        self.writer.write_all(request.as_bytes())?;
        self.writer.write_all(b"\n")?;
        let mut line = String::new();
        let n = self.reader.read_line(&mut line)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        while line.ends_with('\n') || line.ends_with('\r') {
            line.pop();
        }
        Ok(line)
    }
}
