//! Transport-independent request execution: the session registry, the
//! what-if cost cache, and metrics, behind one [`Engine::execute`] entry
//! point. The TCP layer ([`crate::server`]) drives it per connection; tests
//! and benchmarks drive it in-process to measure dispatch without wire
//! overhead.

use std::sync::atomic::Ordering;
use std::sync::Mutex;

use dblayout_catalog::resolve_catalog;
use dblayout_core::advisor::{Advisor, AdvisorConfig, AdvisorError};
use dblayout_core::costmodel::CostModel;
use dblayout_core::tsgreedy::TsGreedyConfig;
use dblayout_disksim::Layout;
use serde_json::Value;

use crate::metrics::Metrics;
use crate::protocol::{obj, recommendation_result, resolve_disks, ApiError, LayoutSpec, Request};
use crate::session::{layout_hash, CostCache, Session, SessionRegistry};

/// Transport-side gauges folded into `stats` responses (zero when driving
/// the engine in-process).
#[derive(Debug, Clone, Copy, Default)]
pub struct RuntimeInfo {
    /// Connections currently waiting for a worker.
    pub queue_depth: u64,
    /// Worker threads serving the engine.
    pub threads: u64,
}

/// The resident advisory state and its request dispatcher.
pub struct Engine {
    registry: Mutex<SessionRegistry>,
    cache: Mutex<CostCache>,
    /// Request/error/cache/latency counters (shared with the transport).
    pub metrics: Metrics,
}

impl Engine {
    /// An engine bounded to `session_capacity` open sessions and
    /// `cache_capacity` memoized costs.
    pub fn new(session_capacity: usize, cache_capacity: usize) -> Self {
        Self {
            registry: Mutex::new(SessionRegistry::new(session_capacity)),
            cache: Mutex::new(CostCache::new(cache_capacity)),
            metrics: Metrics::default(),
        }
    }

    /// Executes one request against the resident state.
    pub fn execute(&self, request: Request, runtime: &RuntimeInfo) -> Result<Value, ApiError> {
        match request {
            Request::OpenSession { catalog, disks } => {
                let catalog = resolve_catalog(&catalog).map_err(ApiError::bad_request)?;
                let disks = resolve_disks(&disks)?;
                let objects = catalog.objects().len() as u64;
                let n_disks = disks.len() as u64;
                let id =
                    crate::lock_unpoisoned(&self.registry).open(Session::new(catalog, disks))?;
                Ok(obj(vec![
                    ("session", Value::U64(id)),
                    ("objects", Value::U64(objects)),
                    ("disks", Value::U64(n_disks)),
                ]))
            }
            Request::AddStatements { session, sql } => {
                let handle = crate::lock_unpoisoned(&self.registry).get(session)?;
                let mut s = crate::lock_unpoisoned(&handle);
                let added = s.add_statements(&sql)? as u64;
                let result = obj(vec![
                    ("added", Value::U64(added)),
                    ("statements", Value::U64(s.plans.len() as u64)),
                    ("version", Value::U64(s.version)),
                ]);
                drop(s);
                // Entries for older versions can never be read again; drop
                // them rather than waiting for LRU churn.
                crate::lock_unpoisoned(&self.cache).invalidate_session(session);
                Ok(result)
            }
            Request::WhatifCost {
                session,
                layout,
                no_cache,
            } => {
                let handle = crate::lock_unpoisoned(&self.registry).get(session)?;
                let s = crate::lock_unpoisoned(&handle);
                let owned;
                let (layout, lhash): (&Layout, u64) = match &layout {
                    LayoutSpec::FullStriping => (s.full_striping(), s.full_striping_hash()),
                    LayoutSpec::Fractions(fractions) => {
                        owned = s.layout_from_fractions(fractions)?;
                        let h = layout_hash(&owned);
                        (&owned, h)
                    }
                };
                let key = (session, s.version, lhash);
                let mut cached = false;
                let cost = if no_cache {
                    None
                } else {
                    crate::lock_unpoisoned(&self.cache).get(key)
                };
                let cost_ms = match cost {
                    Some(c) => {
                        self.metrics.cache_hits.fetch_add(1, Ordering::Relaxed);
                        cached = true;
                        c
                    }
                    None => {
                        if !no_cache {
                            self.metrics.cache_misses.fetch_add(1, Ordering::Relaxed);
                        }
                        let c = CostModel::default().workload_cost_subplans(
                            &s.workload,
                            layout,
                            &s.disks,
                        );
                        if !no_cache {
                            crate::lock_unpoisoned(&self.cache).insert(key, c);
                        }
                        c
                    }
                };
                Ok(obj(vec![
                    ("cost_ms", Value::F64(cost_ms)),
                    ("cached", Value::Bool(cached)),
                    ("version", Value::U64(s.version)),
                ]))
            }
            Request::Recommend { session, k } => {
                let handle = crate::lock_unpoisoned(&self.registry).get(session)?;
                let s = crate::lock_unpoisoned(&handle);
                let cfg = AdvisorConfig {
                    search: TsGreedyConfig {
                        k,
                        ..Default::default()
                    },
                };
                let advisor = Advisor::new(&s.catalog, &s.disks);
                let rec = advisor
                    .recommend_prepared(s.plans.clone(), s.graph.clone(), &s.workload, &cfg)
                    .map_err(|e| match e {
                        AdvisorError::EmptyWorkload => {
                            ApiError::new("empty_workload", "session has no statements yet")
                        }
                        other => ApiError::new("search_error", other.to_string()),
                    })?;
                Ok(recommendation_result(&s.catalog, &s.disks, &rec))
            }
            Request::Stats => {
                let m = self.metrics.snapshot();
                let sessions_open = crate::lock_unpoisoned(&self.registry).len() as u64;
                let cache_entries = crate::lock_unpoisoned(&self.cache).len() as u64;
                Ok(obj(vec![
                    ("requests_total", Value::U64(m.requests_total)),
                    ("errors_total", Value::U64(m.errors_total)),
                    ("connections_total", Value::U64(m.connections_total)),
                    ("rejected_total", Value::U64(m.rejected_total)),
                    (
                        "deadline_expired_total",
                        Value::U64(m.deadline_expired_total),
                    ),
                    ("sessions_open", Value::U64(sessions_open)),
                    ("cache_entries", Value::U64(cache_entries)),
                    ("cache_hits", Value::U64(m.cache_hits)),
                    ("cache_misses", Value::U64(m.cache_misses)),
                    ("cache_hit_rate", Value::F64(m.cache_hit_rate)),
                    ("queue_depth", Value::U64(runtime.queue_depth)),
                    ("threads", Value::U64(runtime.threads)),
                    ("latency_p50_us", Value::U64(m.latency_p50_us)),
                    ("latency_p99_us", Value::U64(m.latency_p99_us)),
                ]))
            }
            Request::CloseSession { session } => {
                crate::lock_unpoisoned(&self.registry).close(session)?;
                crate::lock_unpoisoned(&self.cache).invalidate_session(session);
                Ok(obj(vec![("closed", Value::U64(session))]))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::ValueExt;

    fn exec(engine: &Engine, req: Request) -> Value {
        engine
            .execute(req, &RuntimeInfo::default())
            .expect("request succeeds")
    }

    #[test]
    fn in_process_session_roundtrip() {
        let engine = Engine::new(4, 16);
        let open = exec(
            &engine,
            Request::OpenSession {
                catalog: "tpch:0.01".into(),
                disks: "paper".into(),
            },
        );
        let sid = open.get("session").and_then(|v| v.as_u64()).unwrap();
        exec(
            &engine,
            Request::AddStatements {
                session: sid,
                sql: "SELECT COUNT(*) FROM lineitem, orders WHERE l_orderkey = o_orderkey;".into(),
            },
        );
        let miss = exec(
            &engine,
            Request::WhatifCost {
                session: sid,
                layout: LayoutSpec::FullStriping,
                no_cache: false,
            },
        );
        assert_eq!(miss.get("cached").and_then(|v| v.as_bool()), Some(false));
        let hit = exec(
            &engine,
            Request::WhatifCost {
                session: sid,
                layout: LayoutSpec::FullStriping,
                no_cache: false,
            },
        );
        assert_eq!(hit.get("cached").and_then(|v| v.as_bool()), Some(true));
        assert_eq!(
            hit.get("cost_ms").and_then(|v| v.as_f64()),
            miss.get("cost_ms").and_then(|v| v.as_f64())
        );
        let rec = exec(&engine, Request::Recommend { session: sid, k: 1 });
        assert!(
            rec.get("estimated_improvement_pct")
                .and_then(|v| v.as_f64())
                .unwrap()
                >= 0.0
        );
        exec(&engine, Request::CloseSession { session: sid });
        let stats = exec(&engine, Request::Stats);
        assert_eq!(stats.get("sessions_open").and_then(|v| v.as_u64()), Some(0));
    }

    #[test]
    fn recommend_on_empty_session_is_structured() {
        let engine = Engine::new(4, 16);
        let open = exec(
            &engine,
            Request::OpenSession {
                catalog: "tpch:0.01".into(),
                disks: "paper".into(),
            },
        );
        let sid = open.get("session").and_then(|v| v.as_u64()).unwrap();
        let err = engine
            .execute(
                Request::Recommend { session: sid, k: 1 },
                &RuntimeInfo::default(),
            )
            .unwrap_err();
        assert_eq!(err.code, "empty_workload");
    }
}
