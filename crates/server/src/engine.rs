//! Transport-independent request execution: the session registry, the
//! what-if cost cache, and metrics, behind one [`Engine::execute`] entry
//! point. The TCP layer ([`crate::server`]) drives it per connection; tests
//! and benchmarks drive it in-process to measure dispatch without wire
//! overhead.

use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex};
use std::time::Duration;

use dblayout_audit::{
    record_budgeted, record_recommendation, replay, AuditError, DecisionLog, DecisionRecord,
    RecordInputs, ReplayConfig,
};
use dblayout_catalog::resolve_catalog;
use dblayout_core::advisor::{Advisor, AdvisorConfig, AdvisorError};
use dblayout_core::costmodel::CostModel;
use dblayout_core::tsgreedy::TsGreedyConfig;
use dblayout_disksim::Layout;
use dblayout_obs::counters::{self, Counter};
use dblayout_obs::prof::PhaseTimer;
use dblayout_obs::{Collector, RingSink};
use dblayout_relayout::{
    detect_drift, plan_migration, recommend_budgeted, BudgetConfig, DriftConfig, PlanError,
};
use serde_json::Value;

use crate::metrics::{render_prometheus, Gauges, Metrics};
use crate::protocol::{obj, recommendation_result, resolve_disks, ApiError, LayoutSpec, Request};
use crate::session::{layout_hash, CostCache, Session, SessionRegistry};

/// Default capacity of the engine's bounded trace ring buffer (records,
/// not requests; each served request emits two span records).
pub const DEFAULT_TRACE_CAPACITY: usize = 4096;

/// Transport-side gauges folded into `stats` responses (zero when driving
/// the engine in-process).
#[derive(Debug, Clone, Copy, Default)]
pub struct RuntimeInfo {
    /// Connections currently waiting for a worker.
    pub queue_depth: u64,
    /// Worker threads serving the engine.
    pub threads: u64,
}

/// The resident advisory state and its request dispatcher.
pub struct Engine {
    registry: Mutex<SessionRegistry>,
    cache: Mutex<CostCache>,
    /// Request/error/cache/latency counters (shared with the transport).
    pub metrics: Metrics,
    trace: Arc<RingSink>,
    /// Always-on collector feeding the bounded trace ring; the transport
    /// opens one `server.request` span per request through it. The ring
    /// drops oldest records at capacity, so tracing never grows memory.
    pub collector: Collector,
    /// Always-on wall-clock phase profile (`dblayout-prof`): analyze /
    /// build-graph / search / cost accumulate here across requests (the
    /// transport adds `serialize`); the `profile` op reads it.
    pub prof: PhaseTimer,
    /// Decision-record log (`dblayout-audit`): when enabled, every
    /// `recommend`/`recommend_budgeted` appends one replayable
    /// provenance record and the `audit_list`/`audit_get` ops read them
    /// back. `None` (the default) keeps recording off and answers the
    /// audit ops with `audit_disabled`.
    audit: Option<Mutex<DecisionLog>>,
}

impl Engine {
    /// An engine bounded to `session_capacity` open sessions and
    /// `cache_capacity` memoized costs, with the default trace ring.
    pub fn new(session_capacity: usize, cache_capacity: usize) -> Self {
        Self::with_trace_capacity(session_capacity, cache_capacity, DEFAULT_TRACE_CAPACITY)
    }

    /// [`Engine::new`] with an explicit trace ring capacity (in records).
    pub fn with_trace_capacity(
        session_capacity: usize,
        cache_capacity: usize,
        trace_capacity: usize,
    ) -> Self {
        let trace = Arc::new(RingSink::new(trace_capacity));
        Self {
            registry: Mutex::new(SessionRegistry::new(session_capacity)),
            cache: Mutex::new(CostCache::new(cache_capacity)),
            metrics: Metrics::default(),
            collector: Collector::new(trace.clone()),
            trace,
            prof: PhaseTimer::new(),
            audit: None,
        }
    }

    /// Enables decision recording into a [`DecisionLog`] rooted at `dir`
    /// (created when missing). Once on, every recommendation op appends a
    /// record and tags its response with the assigned `decision_id`.
    pub fn enable_audit(&mut self, dir: impl AsRef<std::path::Path>) -> Result<(), AuditError> {
        let log = DecisionLog::open(dir)?;
        self.audit = Some(Mutex::new(log));
        Ok(())
    }

    /// Whether decision recording is active.
    pub fn audit_enabled(&self) -> bool {
        self.audit.is_some()
    }

    /// Appends a freshly built record to the decision log. Only called on
    /// paths that already checked `self.audit.is_some()`.
    fn append_record(&self, mut record: DecisionRecord) -> Result<u64, ApiError> {
        let log = self.audit.as_ref().ok_or_else(audit_disabled)?;
        crate::lock_unpoisoned(log)
            .append(&mut record)
            .map_err(audit_api_error)
    }

    /// Sets (or clears) the max-idle session TTL; idle sessions are swept
    /// on request entry. `None` (the default) disables eviction.
    pub fn set_session_idle_ttl(&self, ttl: Option<Duration>) {
        crate::lock_unpoisoned(&self.registry).set_idle_ttl(ttl);
    }

    /// Samples the engine-owned gauges, folding in the transport-owned
    /// queue depth.
    fn gauges(&self, runtime: &RuntimeInfo) -> Gauges {
        let registry = crate::lock_unpoisoned(&self.registry);
        Gauges {
            queue_depth: runtime.queue_depth,
            sessions_open: registry.len() as u64,
            sessions_evicted_total: registry.evicted_total(),
            cache_entries: crate::lock_unpoisoned(&self.cache).len() as u64,
        }
    }

    /// Executes one request against the resident state.
    pub fn execute(&self, request: Request, runtime: &RuntimeInfo) -> Result<Value, ApiError> {
        // Reclaim sessions idle past the configured TTL (no-op when the
        // TTL is unset) before dispatching, so an expired session answers
        // `unknown_session` instead of being silently revived.
        let evicted = crate::lock_unpoisoned(&self.registry).sweep_idle();
        if !evicted.is_empty() {
            let mut cache = crate::lock_unpoisoned(&self.cache);
            for id in evicted {
                cache.invalidate_session(id);
            }
        }
        match request {
            Request::OpenSession {
                catalog,
                disks,
                threads,
                decay,
            } => {
                let resolved_catalog = resolve_catalog(&catalog).map_err(ApiError::bad_request)?;
                let resolved_disks = resolve_disks(&disks)?;
                let objects = resolved_catalog.objects().len() as u64;
                let n_disks = resolved_disks.len() as u64;
                let mut session =
                    Session::with_relayout(resolved_catalog, resolved_disks, threads, decay);
                // Keep the raw spec strings: decision records must name the
                // inputs as the caller supplied them so a replay can
                // re-resolve from the record alone.
                session.catalog_spec = catalog;
                session.disks_spec = disks;
                let id = crate::lock_unpoisoned(&self.registry).open(session)?;
                Ok(obj(vec![
                    ("session", Value::U64(id)),
                    ("objects", Value::U64(objects)),
                    ("disks", Value::U64(n_disks)),
                    ("threads", Value::U64(threads.max(1) as u64)),
                    ("decay", Value::F64(decay)),
                ]))
            }
            Request::AddStatements { session, sql } => {
                let handle = crate::lock_unpoisoned(&self.registry).get(session)?;
                let mut s = crate::lock_unpoisoned(&handle);
                let added = s.add_statements_profiled(&sql, &self.prof)? as u64;
                let result = obj(vec![
                    ("added", Value::U64(added)),
                    ("statements", Value::U64(s.plans.len() as u64)),
                    ("version", Value::U64(s.version)),
                ]);
                drop(s);
                // Entries for older versions can never be read again; drop
                // them rather than waiting for LRU churn.
                crate::lock_unpoisoned(&self.cache).invalidate_session(session);
                Ok(result)
            }
            Request::WhatifCost {
                session,
                layout,
                no_cache,
            } => {
                let handle = crate::lock_unpoisoned(&self.registry).get(session)?;
                let s = crate::lock_unpoisoned(&handle);
                let owned;
                let (layout, lhash): (&Layout, u64) = match &layout {
                    LayoutSpec::FullStriping => (s.full_striping(), s.full_striping_hash()),
                    LayoutSpec::Fractions(fractions) => {
                        owned = s.layout_from_fractions(fractions)?;
                        let h = layout_hash(&owned);
                        (&owned, h)
                    }
                };
                let key = (session, s.version, lhash);
                let mut cached = false;
                let cost = if no_cache {
                    None
                } else {
                    crate::lock_unpoisoned(&self.cache).get(key)
                };
                let cost_ms = match cost {
                    Some(c) => {
                        self.metrics.cache_hits.fetch_add(1, Ordering::Relaxed);
                        counters::incr(Counter::ServerCacheHits);
                        cached = true;
                        c
                    }
                    None => {
                        if !no_cache {
                            self.metrics.cache_misses.fetch_add(1, Ordering::Relaxed);
                            counters::incr(Counter::ServerCacheMisses);
                        }
                        let _phase = self.prof.phase("cost");
                        counters::incr(Counter::CostmodelFullRecosts);
                        let c = CostModel::default().workload_cost_subplans(
                            &s.workload,
                            layout,
                            &s.disks,
                        );
                        if !no_cache {
                            crate::lock_unpoisoned(&self.cache).insert(key, c);
                        }
                        c
                    }
                };
                Ok(obj(vec![
                    ("cost_ms", Value::F64(cost_ms)),
                    ("cached", Value::Bool(cached)),
                    ("version", Value::U64(s.version)),
                ]))
            }
            Request::Recommend { session, k } => {
                let handle = crate::lock_unpoisoned(&self.registry).get(session)?;
                let mut s = crate::lock_unpoisoned(&handle);
                let cfg = AdvisorConfig {
                    search: TsGreedyConfig {
                        k,
                        threads: s.threads,
                        ..Default::default()
                    },
                    prof: self.prof.clone(),
                };
                let advisor = Advisor::new(&s.catalog, &s.disks);
                let counters_before = counters::snapshot();
                let rec = advisor
                    .recommend_prepared(s.plans.clone(), s.graph.clone(), &s.workload, &cfg)
                    .map_err(|e| match e {
                        AdvisorError::EmptyWorkload => {
                            ApiError::new("empty_workload", "session has no statements yet")
                        }
                        other => ApiError::new("search_error", other.to_string()),
                    })?;
                let mut result = recommendation_result(&s.catalog, &s.disks, &rec);
                if self.audit.is_some() {
                    let delta = counters::snapshot().delta(&counters_before);
                    let record = record_recommendation(
                        &RecordInputs {
                            source: "server.recommend",
                            catalog_spec: &s.catalog_spec,
                            workload_sql: &s.sql_text,
                            constraints_text: None,
                            disks: &s.disks,
                            k,
                            threads: s.threads,
                            ts_unix_ms: now_unix_ms(),
                        },
                        &rec,
                        &self.prof.rows(),
                        &delta,
                    );
                    let id = self.append_record(record)?;
                    s.last_decision = Some(id);
                    if let Value::Map(pairs) = &mut result {
                        pairs.push(("decision_id".to_string(), Value::U64(id)));
                    }
                }
                Ok(result)
            }
            Request::Drift {
                session,
                top_k,
                distance_threshold,
                churn_threshold,
            } => {
                let handle = crate::lock_unpoisoned(&self.registry).get(session)?;
                let s = crate::lock_unpoisoned(&handle);
                let defaults = DriftConfig::default();
                let cfg = DriftConfig {
                    top_k: top_k.unwrap_or(defaults.top_k),
                    distance_threshold: distance_threshold.unwrap_or(defaults.distance_threshold),
                    churn_threshold: churn_threshold.unwrap_or(defaults.churn_threshold),
                };
                let mut report = detect_drift(&s.graph, &s.advised_graph, &cfg);
                // Provenance: tie the report to the decision whose advised
                // graph it drifted from (absent when nothing was recorded).
                report.decision_id = s.last_decision;
                let mut pairs = vec![
                    ("epoch".to_string(), Value::U64(s.epoch)),
                    ("version".to_string(), Value::U64(s.version)),
                    ("decay".to_string(), Value::F64(s.decay)),
                ];
                if let Value::Map(report_pairs) = report.to_json() {
                    pairs.extend(report_pairs);
                }
                Ok(Value::Map(pairs))
            }
            Request::RecommendBudgeted {
                session,
                k,
                budget_mb,
                min_improvement_pct,
            } => {
                let handle = crate::lock_unpoisoned(&self.registry).get(session)?;
                let mut s = crate::lock_unpoisoned(&handle);
                if s.workload.is_empty() {
                    return Err(ApiError::new(
                        "empty_workload",
                        "session has no statements yet",
                    ));
                }
                let cfg = BudgetConfig {
                    budget_blocks: budget_mb.map(mb_to_blocks),
                    min_improvement_pct,
                    search: TsGreedyConfig {
                        k,
                        threads: s.threads,
                        ..Default::default()
                    },
                };
                let sizes = s.object_sizes();
                let counters_before = counters::snapshot();
                let outcome = {
                    let _phase = self.prof.phase("search");
                    recommend_budgeted(&sizes, &s.graph, &s.workload, &s.disks, &s.deployed, &cfg)
                        .map_err(|e| ApiError::new("search_error", e.to_string()))?
                };
                let decision_id = if self.audit.is_some() {
                    let delta = counters::snapshot().delta(&counters_before);
                    let record = record_budgeted(
                        &RecordInputs {
                            source: "server.recommend_budgeted",
                            catalog_spec: &s.catalog_spec,
                            workload_sql: &s.sql_text,
                            constraints_text: None,
                            disks: &s.disks,
                            k,
                            threads: s.threads,
                            ts_unix_ms: now_unix_ms(),
                        },
                        &outcome,
                        &s.deployed,
                        &s.graph,
                        &s.workload,
                        min_improvement_pct,
                        &self.prof.rows(),
                        &delta,
                    );
                    Some(self.append_record(record)?)
                } else {
                    None
                };
                // The recommendation becomes the implicit migration target,
                // and the advised-graph snapshot resets to now.
                s.last_target = Some(outcome.layout.clone());
                s.advised_graph = s.graph.clone();
                if let Some(id) = decision_id {
                    s.last_decision = Some(id);
                }
                let mut pairs = Vec::new();
                if let Value::Map(outcome_pairs) = outcome.to_json() {
                    pairs.extend(outcome_pairs);
                }
                pairs.push(("layout".to_string(), fraction_rows(&outcome.layout)));
                if let Some(id) = decision_id {
                    pairs.push(("decision_id".to_string(), Value::U64(id)));
                }
                Ok(Value::Map(pairs))
            }
            Request::PlanMigration {
                session,
                target,
                apply,
            } => {
                let handle = crate::lock_unpoisoned(&self.registry).get(session)?;
                let mut s = crate::lock_unpoisoned(&handle);
                let target_layout = match target {
                    Some(fractions) => s.layout_from_fractions(&fractions)?,
                    None => s.last_target.clone().ok_or_else(|| {
                        ApiError::new(
                            "no_target",
                            "no stored recommendation to migrate to; \
                             run recommend_budgeted first or pass `target`",
                        )
                    })?,
                };
                let mut plan = {
                    let _phase = self.prof.phase("migrate");
                    plan_migration(
                        &s.deployed,
                        &target_layout,
                        &s.disks,
                        &s.workload,
                        &CostModel::default(),
                    )
                    .map_err(|e| {
                        let code = match e {
                            PlanError::Stuck { .. } => "migration_stuck",
                            _ => "bad_request",
                        };
                        ApiError::new(code, e.to_string())
                    })?
                };
                // Provenance: the plan migrates toward the last recorded
                // recommendation (absent when nothing was recorded).
                plan.decision_id = s.last_decision;
                if apply {
                    s.deployed = target_layout;
                    s.advised_graph = s.graph.clone();
                }
                let mut pairs = vec![("applied".to_string(), Value::Bool(apply))];
                if let Value::Map(plan_pairs) = plan.to_json() {
                    pairs.extend(plan_pairs);
                }
                Ok(Value::Map(pairs))
            }
            Request::Stats => {
                let m = self.metrics.snapshot_with_gauges(self.gauges(runtime));
                Ok(obj(vec![
                    ("requests_total", Value::U64(m.requests_total)),
                    ("errors_total", Value::U64(m.errors_total)),
                    ("connections_total", Value::U64(m.connections_total)),
                    ("rejected_total", Value::U64(m.rejected_total)),
                    (
                        "deadline_expired_total",
                        Value::U64(m.deadline_expired_total),
                    ),
                    ("sessions_open", Value::U64(m.sessions_open)),
                    (
                        "sessions_evicted_total",
                        Value::U64(m.sessions_evicted_total),
                    ),
                    ("cache_entries", Value::U64(m.cache_entries)),
                    ("cache_hits", Value::U64(m.cache_hits)),
                    ("cache_misses", Value::U64(m.cache_misses)),
                    ("cache_hit_rate", Value::F64(m.cache_hit_rate)),
                    ("queue_depth", Value::U64(m.queue_depth)),
                    ("queue_depth_highwater", Value::U64(m.queue_depth_highwater)),
                    ("threads", Value::U64(runtime.threads)),
                    ("latency_p50_us", Value::U64(m.latency_p50_us)),
                    ("latency_p99_us", Value::U64(m.latency_p99_us)),
                    ("latency_p999_us", Value::U64(m.latency.p999_us)),
                    ("stage_queue_p50_us", Value::U64(m.stage_queue.p50_us)),
                    ("stage_queue_p99_us", Value::U64(m.stage_queue.p99_us)),
                    ("stage_compute_p50_us", Value::U64(m.stage_compute.p50_us)),
                    ("stage_compute_p99_us", Value::U64(m.stage_compute.p99_us)),
                    (
                        "stage_serialize_p50_us",
                        Value::U64(m.stage_serialize.p50_us),
                    ),
                    (
                        "stage_serialize_p99_us",
                        Value::U64(m.stage_serialize.p99_us),
                    ),
                ]))
            }
            Request::Metrics => {
                let mut m = self.metrics.snapshot_with_gauges(self.gauges(runtime));
                // Trace loss is owned by the engine's ring, not the metric
                // counters; stamp it after the snapshot. (No JSONL sink is
                // attached server-side, so write errors stay 0 here.)
                m.trace_dropped_total = self.trace.dropped();
                Ok(obj(vec![("text", Value::Str(render_prometheus(&m)))]))
            }
            Request::Trace => {
                // One consistent snapshot-and-clear: records and the
                // dropped count come from a single cut (`RingSink::take`),
                // so a span written mid-drain is either fully in this
                // response or fully retained for the next one.
                let (records, dropped) = self.trace.take();
                let events: Vec<Value> = records.iter().map(|r| r.to_json()).collect();
                Ok(obj(vec![
                    ("events", Value::Seq(events)),
                    ("dropped", Value::U64(dropped)),
                ]))
            }
            Request::Profile => {
                let phases: Vec<Value> = self
                    .prof
                    .rows()
                    .into_iter()
                    .map(|r| {
                        obj(vec![
                            ("phase", Value::Str(r.name)),
                            ("calls", Value::U64(r.calls)),
                            ("total_us", Value::U64(r.total_us)),
                        ])
                    })
                    .collect();
                Ok(obj(vec![("phases", Value::Seq(phases))]))
            }
            Request::AuditList { limit } => {
                let log = self.audit.as_ref().ok_or_else(audit_disabled)?;
                let mut summaries = crate::lock_unpoisoned(log)
                    .list()
                    .map_err(audit_api_error)?;
                // `list` returns ascending ids; a limit keeps the most
                // recent N (the ones an operator asks about).
                if let Some(n) = limit {
                    let skip = summaries.len().saturating_sub(n);
                    summaries.drain(..skip);
                }
                Ok(obj(vec![
                    ("count", Value::U64(summaries.len() as u64)),
                    (
                        "decisions",
                        Value::Seq(summaries.iter().map(|d| d.to_json()).collect()),
                    ),
                ]))
            }
            Request::AuditGet {
                id,
                replay: run_replay,
            } => {
                let log = self.audit.as_ref().ok_or_else(audit_disabled)?;
                let record = crate::lock_unpoisoned(log)
                    .get(id)
                    .map_err(audit_api_error)?;
                let mut pairs = vec![("record".to_string(), record.to_json())];
                if run_replay {
                    let report = {
                        let _phase = self.prof.phase("replay");
                        replay(&record, &ReplayConfig::default()).map_err(audit_api_error)?
                    };
                    self.metrics
                        .audit_replay_error_ppm
                        .observe_us(error_ppm(report.relative_error_pct));
                    pairs.push(("replay".to_string(), report.to_json()));
                }
                Ok(Value::Map(pairs))
            }
            Request::CloseSession { session } => {
                crate::lock_unpoisoned(&self.registry).close(session)?;
                crate::lock_unpoisoned(&self.cache).invalidate_session(session);
                Ok(obj(vec![("closed", Value::U64(session))]))
            }
        }
    }
}

/// Whole megabytes → 64 KB blocks (16 blocks per MB).
fn mb_to_blocks(mb: u64) -> u64 {
    mb.saturating_mul(1_048_576 / dblayout_catalog::BLOCK_BYTES)
}

/// Wall-clock milliseconds since the Unix epoch, `None` if the clock sits
/// before it (records stay replayable either way — the timestamp is
/// provenance, not an input to the search).
fn now_unix_ms() -> Option<u64> {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .ok()
        .and_then(|d| u64::try_from(d.as_millis()).ok())
}

/// A relative error percentage as parts-per-million for the replay-error
/// histogram (non-finite or negative readings saturate high so they show
/// up as outliers, not as zeros).
fn error_ppm(pct: f64) -> u64 {
    if pct.is_finite() && pct >= 0.0 {
        (pct * 10_000.0).round() as u64
    } else {
        crate::metrics::LAST_BUCKET_BOUND_US
    }
}

/// The audit ops' answer when the engine has no decision log attached.
fn audit_disabled() -> ApiError {
    ApiError::new(
        "audit_disabled",
        "decision recording is disabled; start the server with an audit directory",
    )
}

/// Maps decision-log failures onto wire error codes: a missing id is the
/// client's problem (`not_found`), everything else is the log's
/// (`audit_error`).
fn audit_api_error(e: AuditError) -> ApiError {
    match e {
        AuditError::NotFound(id) => {
            ApiError::new("not_found", format!("no decision record with id {id}"))
        }
        other => ApiError::new("audit_error", other.to_string()),
    }
}

/// A layout's full fraction matrix as an array of per-object rows.
fn fraction_rows(layout: &Layout) -> Value {
    Value::Seq(
        (0..layout.object_count())
            .map(|i| {
                Value::Seq(
                    layout
                        .fractions_of(i)
                        .iter()
                        .map(|&f| Value::F64(f))
                        .collect(),
                )
            })
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::ValueExt;

    fn exec(engine: &Engine, req: Request) -> Value {
        engine
            .execute(req, &RuntimeInfo::default())
            .expect("request succeeds")
    }

    #[test]
    fn in_process_session_roundtrip() {
        let engine = Engine::new(4, 16);
        let open = exec(
            &engine,
            Request::OpenSession {
                catalog: "tpch:0.01".into(),
                disks: "paper".into(),
                threads: 2,
                decay: 1.0,
            },
        );
        assert_eq!(open.get("threads").and_then(|v| v.as_u64()), Some(2));
        let sid = open.get("session").and_then(|v| v.as_u64()).unwrap();
        exec(
            &engine,
            Request::AddStatements {
                session: sid,
                sql: "SELECT COUNT(*) FROM lineitem, orders WHERE l_orderkey = o_orderkey;".into(),
            },
        );
        let miss = exec(
            &engine,
            Request::WhatifCost {
                session: sid,
                layout: LayoutSpec::FullStriping,
                no_cache: false,
            },
        );
        assert_eq!(miss.get("cached").and_then(|v| v.as_bool()), Some(false));
        let hit = exec(
            &engine,
            Request::WhatifCost {
                session: sid,
                layout: LayoutSpec::FullStriping,
                no_cache: false,
            },
        );
        assert_eq!(hit.get("cached").and_then(|v| v.as_bool()), Some(true));
        assert_eq!(
            hit.get("cost_ms").and_then(|v| v.as_f64()),
            miss.get("cost_ms").and_then(|v| v.as_f64())
        );
        let rec = exec(&engine, Request::Recommend { session: sid, k: 1 });
        assert!(
            rec.get("estimated_improvement_pct")
                .and_then(|v| v.as_f64())
                .unwrap()
                >= 0.0
        );
        exec(&engine, Request::CloseSession { session: sid });
        let stats = exec(&engine, Request::Stats);
        assert_eq!(stats.get("sessions_open").and_then(|v| v.as_u64()), Some(0));
    }

    #[test]
    fn metrics_op_renders_prometheus_text() {
        let engine = Engine::new(4, 16);
        engine
            .metrics
            .requests_total
            .fetch_add(7, Ordering::Relaxed);
        let m = exec(&engine, Request::Metrics);
        let text = m.get("text").and_then(|v| v.as_str()).unwrap();
        assert!(text.contains("dblayout_requests_total 7\n"), "{text}");
        assert!(text.contains("# TYPE dblayout_queue_depth gauge"), "{text}");
        assert!(text.contains("dblayout_stage_compute_us_count"), "{text}");
        // The trace-loss counters and the work-counter registry ride along
        // in the same exposition.
        assert!(text.contains("dblayout_trace_dropped_total 0\n"), "{text}");
        assert!(
            text.contains("dblayout_trace_write_errors_total 0\n"),
            "{text}"
        );
        assert!(
            text.contains("# TYPE dblayout_server_cache_hits_total counter"),
            "{text}"
        );
    }

    #[test]
    fn profile_op_reports_engine_phases() {
        let engine = Engine::new(4, 16);
        let open = exec(
            &engine,
            Request::OpenSession {
                catalog: "tpch:0.01".into(),
                disks: "paper".into(),
                threads: 1,
                decay: 1.0,
            },
        );
        let sid = open.get("session").and_then(|v| v.as_u64()).unwrap();
        exec(
            &engine,
            Request::AddStatements {
                session: sid,
                sql: "SELECT COUNT(*) FROM lineitem;".into(),
            },
        );
        exec(
            &engine,
            Request::WhatifCost {
                session: sid,
                layout: LayoutSpec::FullStriping,
                no_cache: false,
            },
        );
        let p = exec(&engine, Request::Profile);
        let phases = p.get("phases").and_then(|v| v.as_array()).unwrap();
        let names: Vec<&str> = phases
            .iter()
            .filter_map(|row| row.get("phase").and_then(|v| v.as_str()))
            .collect();
        for expected in ["analyze", "build-graph", "cost"] {
            assert!(names.contains(&expected), "missing {expected} in {names:?}");
        }
        for row in phases {
            assert!(row.get("calls").and_then(|v| v.as_u64()).unwrap() >= 1);
            assert!(row.get("total_us").and_then(|v| v.as_u64()).is_some());
        }
    }

    #[test]
    fn trace_op_drains_the_ring() {
        use dblayout_obs::f;
        let engine = Engine::new(4, 16);
        let span = engine
            .collector
            .span("server.request", vec![f("op", "stats")]);
        span.end_with(vec![f("ok", true)]);
        let t = exec(&engine, Request::Trace);
        let events = t.get("events").and_then(|v| v.as_array()).unwrap();
        assert_eq!(events.len(), 2, "span start + end");
        assert_eq!(
            events[0].get("name").and_then(|v| v.as_str()),
            Some("server.request")
        );
        assert_eq!(t.get("dropped").and_then(|v| v.as_u64()), Some(0));
        // Draining empties the ring.
        let again = exec(&engine, Request::Trace);
        assert_eq!(
            again.get("events").and_then(|v| v.as_array()).map(Vec::len),
            Some(0)
        );
    }

    #[test]
    fn audit_ops_without_a_log_answer_audit_disabled() {
        let engine = Engine::new(4, 16);
        for req in [
            Request::AuditList { limit: None },
            Request::AuditGet {
                id: 1,
                replay: false,
            },
        ] {
            let err = engine.execute(req, &RuntimeInfo::default()).unwrap_err();
            assert_eq!(err.code, "audit_disabled");
        }
    }

    /// The audited round trip: recommend tags its response with a decision
    /// id, the record lists and fetches back, a server-side replay
    /// reproduces the layout bit-identically, and downstream drift/plan
    /// responses inherit the provenance id.
    #[test]
    fn audited_recommend_emits_a_replayable_record() {
        let dir =
            std::env::temp_dir().join(format!("dblayout_server_audit_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut engine = Engine::new(4, 16);
        engine.enable_audit(&dir).expect("open decision log");
        assert!(engine.audit_enabled());
        let open = exec(
            &engine,
            Request::OpenSession {
                catalog: "tpch:0.01".into(),
                disks: "paper".into(),
                threads: 2,
                decay: 1.0,
            },
        );
        let sid = open.get("session").and_then(|v| v.as_u64()).unwrap();
        exec(
            &engine,
            Request::AddStatements {
                session: sid,
                sql: "SELECT COUNT(*) FROM lineitem, orders WHERE l_orderkey = o_orderkey;".into(),
            },
        );
        let rec = exec(&engine, Request::Recommend { session: sid, k: 2 });
        let id = rec
            .get("decision_id")
            .and_then(|v| v.as_u64())
            .expect("recommend tags its decision id");

        let list = exec(&engine, Request::AuditList { limit: Some(8) });
        assert_eq!(list.get("count").and_then(|v| v.as_u64()), Some(1));

        let got = exec(&engine, Request::AuditGet { id, replay: true });
        let record = got.get("record").expect("record present");
        assert_eq!(
            record.get("source").and_then(|v| v.as_str()),
            Some("server.recommend")
        );
        assert_eq!(
            record.get("catalog_spec").and_then(|v| v.as_str()),
            Some("tpch:0.01")
        );
        let report = got.get("replay").expect("replay report present");
        assert_eq!(
            report.get("layout_matches").and_then(|v| v.as_bool()),
            Some(true)
        );
        assert_eq!(report.get("passed").and_then(|v| v.as_bool()), Some(true));
        assert_eq!(engine.metrics.audit_replay_error_ppm.snapshot().count, 1);

        // Budgeted recommendations record too, and drift/migration
        // responses carry the latest decision id.
        let budgeted = exec(
            &engine,
            Request::RecommendBudgeted {
                session: sid,
                k: 2,
                budget_mb: None,
                min_improvement_pct: 0.0,
            },
        );
        let bid = budgeted
            .get("decision_id")
            .and_then(|v| v.as_u64())
            .expect("budgeted recommend tags its decision id");
        assert!(bid > id, "ids are monotone: {id} then {bid}");
        let drift = exec(
            &engine,
            Request::Drift {
                session: sid,
                top_k: None,
                distance_threshold: None,
                churn_threshold: None,
            },
        );
        assert_eq!(drift.get("decision_id").and_then(|v| v.as_u64()), Some(bid));
        let plan = exec(
            &engine,
            Request::PlanMigration {
                session: sid,
                target: None,
                apply: false,
            },
        );
        assert_eq!(plan.get("decision_id").and_then(|v| v.as_u64()), Some(bid));

        let missing = engine
            .execute(
                Request::AuditGet {
                    id: 9_999,
                    replay: false,
                },
                &RuntimeInfo::default(),
            )
            .unwrap_err();
        assert_eq!(missing.code, "not_found");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn recommend_on_empty_session_is_structured() {
        let engine = Engine::new(4, 16);
        let open = exec(
            &engine,
            Request::OpenSession {
                catalog: "tpch:0.01".into(),
                disks: "paper".into(),
                threads: 1,
                decay: 1.0,
            },
        );
        let sid = open.get("session").and_then(|v| v.as_u64()).unwrap();
        let err = engine
            .execute(
                Request::Recommend { session: sid, k: 1 },
                &RuntimeInfo::default(),
            )
            .unwrap_err();
        assert_eq!(err.code, "empty_workload");
    }
}
