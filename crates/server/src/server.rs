//! The TCP service: a fixed worker pool over a bounded connection queue.
//!
//! Life of a connection: the acceptor thread enqueues it (or rejects it with
//! a structured `busy` error when the queue is full); a worker pops it,
//! enforces the queue-wait deadline, then serves newline-delimited JSON
//! requests until EOF, idle timeout, or shutdown. Shutdown is graceful: the
//! accept loop stops, workers drain every queued connection and finish their
//! in-flight request before exiting.
//!
//! The deadline guards *queueing* — a connection that waited longer than the
//! per-request deadline is answered with `deadline_exceeded` instead of
//! being served stale. Compute itself (the TS-GREEDY search) is never
//! preempted; it runs to completion once started, which is what keeps
//! results deterministic.
//!
//! All request semantics live in [`crate::engine::Engine`]; this module only
//! owns the transport: sockets, the queue, admission control, and shutdown.

use std::collections::VecDeque;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use dblayout_obs::f;

use crate::engine::{Engine, RuntimeInfo, DEFAULT_TRACE_CAPACITY};
use crate::protocol::{err_line, ok_line, parse_request, ApiError, Request};

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks a free port (see [`ServerHandle::addr`]).
    pub addr: String,
    /// Worker threads serving connections.
    pub threads: usize,
    /// Maximum connections waiting for a worker before new ones are
    /// rejected with `busy`.
    pub queue_capacity: usize,
    /// Per-request deadline; connections that waited longer in the queue
    /// are answered with `deadline_exceeded`.
    pub deadline: Duration,
    /// Idle read timeout per connection.
    pub idle_timeout: Duration,
    /// Maximum concurrently open sessions.
    pub session_capacity: usize,
    /// Maximum memoized what-if costs.
    pub cache_capacity: usize,
    /// Capacity (in records) of the bounded trace ring the `trace` op
    /// drains; oldest records are dropped first.
    pub trace_capacity: usize,
    /// Max-idle session TTL; sessions untouched for longer are evicted on
    /// the next request. `None` (the default) keeps sessions until closed.
    pub session_idle_ttl: Option<Duration>,
    /// Decision-log directory: when set, every recommendation op appends
    /// a replayable provenance record there and the `audit_list` /
    /// `audit_get` ops serve it. `None` (the default) disables recording.
    pub audit_dir: Option<String>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".into(),
            threads: 4,
            queue_capacity: 64,
            deadline: Duration::from_secs(30),
            idle_timeout: Duration::from_secs(30),
            session_capacity: 64,
            cache_capacity: 1024,
            trace_capacity: DEFAULT_TRACE_CAPACITY,
            session_idle_ttl: None,
            audit_dir: None,
        }
    }
}

/// State shared by the acceptor and the workers.
pub(crate) struct Shared {
    pub(crate) config: ServerConfig,
    pub(crate) queue: Mutex<VecDeque<(TcpStream, Instant)>>,
    pub(crate) available: Condvar,
    pub(crate) shutdown: AtomicBool,
    pub(crate) engine: Engine,
}

/// A running server; dropping the handle does **not** stop it — call
/// [`ServerHandle::shutdown`].
pub struct Server;

/// Handle to a started server.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds, spawns the worker pool, and starts accepting.
    pub fn start(config: ServerConfig) -> std::io::Result<ServerHandle> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let mut engine = Engine::with_trace_capacity(
            config.session_capacity,
            config.cache_capacity,
            config.trace_capacity,
        );
        if let Some(dir) = &config.audit_dir {
            engine
                .enable_audit(dir)
                .map_err(|e| std::io::Error::other(format!("opening decision log {dir}: {e}")))?;
        }
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            shutdown: AtomicBool::new(false),
            engine,
            config,
        });
        shared
            .engine
            .set_session_idle_ttl(shared.config.session_idle_ttl);

        let workers = (0..shared.config.threads.max(1))
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();

        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || accept_loop(&listener, &shared))
        };

        Ok(ServerHandle {
            addr,
            shared,
            acceptor: Some(acceptor),
            workers,
        })
    }
}

impl ServerHandle {
    /// The bound address (with the actual port when `addr` asked for 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting, drains queued connections, and joins every thread.
    pub fn shutdown(mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // Unblock the acceptor with a throwaway connection; it re-checks the
        // flag after every accept.
        let _ = TcpStream::connect(self.addr); // dblayout::allow(R9, reason = "throwaway self-connection only unblocks accept(); the acceptor re-checks the shutdown flag either way")
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join(); // dblayout::allow(R9, reason = "join error means the acceptor panicked; at shutdown there is nothing left to recover")
        }
        self.shared.available.notify_all();
        for worker in self.workers.drain(..) {
            let _ = worker.join(); // dblayout::allow(R9, reason = "join error means the worker panicked; at shutdown there is nothing left to recover")
        }
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    for conn in listener.incoming() {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = conn else { continue };
        shared
            .engine
            .metrics
            .connections_total
            .fetch_add(1, Ordering::Relaxed);
        let mut queue = crate::lock_unpoisoned(&shared.queue);
        if queue.len() >= shared.config.queue_capacity {
            drop(queue);
            shared
                .engine
                .metrics
                .rejected_total
                .fetch_add(1, Ordering::Relaxed);
            reply_and_close(
                stream,
                &ApiError::new("busy", "connection queue full, retry later"),
            );
            continue;
        }
        queue.push_back((stream, Instant::now()));
        shared
            .engine
            .metrics
            .queue_depth_highwater
            .fetch_max(queue.len() as u64, Ordering::Relaxed);
        drop(queue);
        shared.available.notify_one();
    }
}

fn worker_loop(shared: &Arc<Shared>) {
    loop {
        let popped = {
            let mut queue = crate::lock_unpoisoned(&shared.queue);
            loop {
                if let Some(item) = queue.pop_front() {
                    break Some(item);
                }
                if shared.shutdown.load(Ordering::SeqCst) {
                    break None;
                }
                queue = shared
                    .available
                    .wait(queue)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
        };
        let Some((stream, enqueued)) = popped else {
            return; // shutdown with an empty queue: drained.
        };
        let waited = enqueued.elapsed();
        if waited > shared.config.deadline {
            shared
                .engine
                .metrics
                .deadline_expired_total
                .fetch_add(1, Ordering::Relaxed);
            reply_and_close(
                stream,
                &ApiError::new(
                    "deadline_exceeded",
                    "request waited past its deadline in the queue",
                ),
            );
            continue;
        }
        // Queue-wait stage: admission wait of connections that get served
        // (expired ones are counted above instead).
        shared.engine.metrics.stage_queue.observe(waited);
        serve_connection(shared, stream);
    }
}

/// Runs one request with panic isolation: a panic inside the engine answers
/// a structured `internal_error` instead of killing the worker thread. The
/// pool is fixed-size and never respawned, so without this each panicking
/// request would permanently shrink capacity until the server accepted
/// connections but never answered them.
fn execute_guarded(
    run: impl FnOnce() -> Result<serde_json::Value, ApiError>,
) -> Result<serde_json::Value, ApiError> {
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(run)).unwrap_or_else(|panic| {
        let detail = panic
            .downcast_ref::<&str>()
            .map(|s| (*s).to_string())
            .or_else(|| panic.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "unknown panic".into());
        Err(ApiError::new(
            "internal_error",
            format!("request handler panicked: {detail}"),
        ))
    })
}

fn reply_and_close(mut stream: TcpStream, error: &ApiError) {
    let mut line = err_line(error);
    line.push('\n');
    let _ = stream.write_all(line.as_bytes()); // dblayout::allow(R9, reason = "best-effort error reply on a connection being closed; the peer may already be gone")
}

fn serve_connection(shared: &Arc<Shared>, stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(shared.config.idle_timeout)); // dblayout::allow(R9, reason = "idle timeout is a best-effort hygiene hint; a session without it still serves correctly")
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let Ok(line) = line else { break }; // EOF, reset, or idle timeout.
        if line.trim().is_empty() {
            continue;
        }
        let started = Instant::now();
        let span = shared.engine.collector.span("server.request", Vec::new());
        let mut op = "invalid";
        let outcome = parse_request(&line).and_then(|req| {
            op = req.op_name();
            // Gauges are only read by `stats`/`metrics`; fetch them lazily
            // so every other op skips the queue lock.
            let runtime = if matches!(req, Request::Stats | Request::Metrics) {
                RuntimeInfo {
                    queue_depth: crate::lock_unpoisoned(&shared.queue).len() as u64,
                    threads: shared.config.threads as u64,
                }
            } else {
                RuntimeInfo::default()
            };
            execute_guarded(|| shared.engine.execute(req, &runtime))
        });
        // Compute stage: parse + engine execution.
        shared
            .engine
            .metrics
            .stage_compute
            .observe(started.elapsed());
        shared
            .engine
            .metrics
            .requests_total
            .fetch_add(1, Ordering::Relaxed);
        let ok = outcome.is_ok();
        let serialize_started = Instant::now();
        let serialize_phase = shared.engine.prof.phase("serialize");
        let mut response = match outcome {
            Ok(result) => ok_line(result),
            Err(err) => {
                shared
                    .engine
                    .metrics
                    .errors_total
                    .fetch_add(1, Ordering::Relaxed);
                err_line(&err)
            }
        };
        response.push('\n');
        drop(serialize_phase);
        // Serialize stage: response-line construction.
        shared
            .engine
            .metrics
            .stage_serialize
            .observe(serialize_started.elapsed());
        shared
            .engine
            .metrics
            .observe_op_latency(op, started.elapsed());
        span.end_with(vec![f("op", op), f("ok", ok)]);
        if writer.write_all(response.as_bytes()).is_err() {
            break;
        }
        if shared.shutdown.load(Ordering::SeqCst) {
            break; // graceful: finish the in-flight request, then close.
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::Client;
    use serde_json::{Value, ValueExt};

    fn start() -> ServerHandle {
        Server::start(ServerConfig {
            threads: 2,
            ..Default::default()
        })
        .expect("bind loopback")
    }

    fn result(line: &str) -> Value {
        let v: Value = serde_json::from_str(line).unwrap();
        assert_eq!(v.get("ok").and_then(|b| b.as_bool()), Some(true), "{line}");
        v.get("result").unwrap().clone()
    }

    #[test]
    fn session_lifecycle_over_loopback() {
        let server = start();
        let mut client = Client::connect(&server.addr().to_string()).unwrap();

        let open = result(
            &client
                .roundtrip(r#"{"op":"open_session","catalog":"tpch:0.01"}"#)
                .unwrap(),
        );
        let sid = open.get("session").and_then(|v| v.as_u64()).unwrap();
        assert_eq!(open.get("disks").and_then(|v| v.as_u64()), Some(8));

        let add = result(
            &client
                .roundtrip(&format!(
                    r#"{{"op":"add_statements","session":{sid},"sql":"SELECT COUNT(*) FROM lineitem, orders WHERE l_orderkey = o_orderkey;"}}"#
                ))
                .unwrap(),
        );
        assert_eq!(add.get("added").and_then(|v| v.as_u64()), Some(1));
        assert_eq!(add.get("version").and_then(|v| v.as_u64()), Some(1));

        let what = result(
            &client
                .roundtrip(&format!(
                    r#"{{"op":"whatif_cost","session":{sid},"layout":"full_striping"}}"#
                ))
                .unwrap(),
        );
        assert!(what.get("cost_ms").and_then(|v| v.as_f64()).unwrap() > 0.0);
        assert_eq!(what.get("cached").and_then(|v| v.as_bool()), Some(false));

        let again = result(
            &client
                .roundtrip(&format!(
                    r#"{{"op":"whatif_cost","session":{sid},"layout":"full_striping"}}"#
                ))
                .unwrap(),
        );
        assert_eq!(again.get("cached").and_then(|v| v.as_bool()), Some(true));
        assert_eq!(
            again.get("cost_ms").and_then(|v| v.as_f64()),
            what.get("cost_ms").and_then(|v| v.as_f64())
        );

        let rec = result(
            &client
                .roundtrip(&format!(r#"{{"op":"recommend","session":{sid}}}"#))
                .unwrap(),
        );
        assert!(
            rec.get("estimated_improvement_pct")
                .and_then(|v| v.as_f64())
                .unwrap()
                >= 0.0
        );

        let stats = result(&client.roundtrip(r#"{"op":"stats"}"#).unwrap());
        assert_eq!(stats.get("sessions_open").and_then(|v| v.as_u64()), Some(1));
        assert!(
            stats
                .get("requests_total")
                .and_then(|v| v.as_u64())
                .unwrap()
                >= 5
        );
        assert_eq!(stats.get("threads").and_then(|v| v.as_u64()), Some(2));

        let closed = result(
            &client
                .roundtrip(&format!(r#"{{"op":"close_session","session":{sid}}}"#))
                .unwrap(),
        );
        assert_eq!(closed.get("closed").and_then(|v| v.as_u64()), Some(sid));

        server.shutdown();
    }

    #[test]
    fn metrics_and_trace_ops_over_loopback() {
        let server = start();
        let mut client = Client::connect(&server.addr().to_string()).unwrap();

        let stats = result(&client.roundtrip(r#"{"op":"stats"}"#).unwrap());
        assert!(
            stats
                .get("stage_compute_p50_us")
                .and_then(|v| v.as_u64())
                .is_some(),
            "stats surfaces stage percentiles: {stats:?}"
        );

        let m = result(&client.roundtrip(r#"{"op":"metrics"}"#).unwrap());
        let text = m.get("text").and_then(|v| v.as_str()).unwrap();
        assert!(
            text.contains("# TYPE dblayout_requests_total counter"),
            "{text}"
        );
        assert!(text.contains("dblayout_sessions_open 0\n"), "{text}");
        // The queue-wait stage observed at least this connection's admission.
        assert!(text.contains("dblayout_stage_queue_us_count 1\n"), "{text}");

        let t = result(&client.roundtrip(r#"{"op":"trace"}"#).unwrap());
        let events = t.get("events").and_then(|v| v.as_array()).unwrap();
        // stats + metrics spans completed (start/end each); the in-flight
        // trace request contributes at least its span_start.
        assert!(events.len() >= 5, "got {} events", events.len());
        // The wire events round-trip through the trace parser as JSONL.
        let jsonl: String = events
            .iter()
            .map(|e| {
                let mut line = serde_json::to_string(e).unwrap();
                line.push('\n');
                line
            })
            .collect();
        let parsed = dblayout_obs::parse_trace(&jsonl).unwrap();
        assert_eq!(parsed.len(), events.len());
        assert!(
            parsed
                .iter()
                .any(|r| r.name == "server.request" && r.field_str("op") == Some("stats")),
            "missing stats span in {jsonl}"
        );
        let end = parsed
            .iter()
            .find(|r| r.field_str("op") == Some("metrics"))
            .unwrap();
        assert!(end.elapsed_us.is_some(), "timed collector stamps span ends");
        assert_eq!(end.field("ok"), Some(&dblayout_obs::FieldValue::Bool(true)));

        // Draining leaves only records emitted after the drain.
        let t2 = result(&client.roundtrip(r#"{"op":"trace"}"#).unwrap());
        let events2 = t2.get("events").and_then(|v| v.as_array()).unwrap();
        assert!(events2.len() < events.len());

        server.shutdown();
    }

    #[test]
    fn degenerate_disk_spec_is_rejected_and_server_survives() {
        let server = start();
        let mut client = Client::connect(&server.addr().to_string()).unwrap();

        // A zero read rate used to reach TS-GREEDY and panic a worker while
        // it held the session lock; it must be a bad_request at open time.
        let bad: Value = serde_json::from_str(
            &client
                .roundtrip(
                    r#"{"op":"open_session","catalog":"tpch:0.01","disks":"uniform:4:100000:10:0"}"#,
                )
                .unwrap(),
        )
        .unwrap();
        assert_eq!(bad.get("ok").and_then(|v| v.as_bool()), Some(false));
        assert_eq!(
            bad.get("error")
                .and_then(|e| e.get("code"))
                .and_then(|c| c.as_str()),
            Some("bad_request")
        );

        // The same connection (and worker) keeps serving.
        let open = result(
            &client
                .roundtrip(r#"{"op":"open_session","catalog":"tpch:0.01"}"#)
                .unwrap(),
        );
        assert!(open.get("session").and_then(|v| v.as_u64()).is_some());

        server.shutdown();
    }

    #[test]
    fn panicking_handler_answers_internal_error() {
        let err = execute_guarded(|| -> Result<Value, ApiError> { panic!("boom") }).unwrap_err();
        assert_eq!(err.code, "internal_error");
        assert!(err.message.contains("boom"), "{}", err.message);
    }

    #[test]
    fn poisoned_queue_lock_recovers() {
        let server = start();
        // Poison the queue mutex the way a panicking thread would.
        let shared = Arc::clone(&server.shared);
        let _ = std::thread::spawn(move || {
            let _guard = crate::lock_unpoisoned(&shared.queue);
            panic!("poison the queue lock");
        })
        .join();
        assert!(server.shared.queue.is_poisoned());

        // The acceptor and workers recover the lock and keep serving
        // (`result` asserts the response is ok; `stats` itself reads the
        // recovered queue lock for its queue-depth gauge).
        let mut client = Client::connect(&server.addr().to_string()).unwrap();
        let stats = result(&client.roundtrip(r#"{"op":"stats"}"#).unwrap());
        assert_eq!(stats.get("threads").and_then(|v| v.as_u64()), Some(2));

        server.shutdown();
    }

    #[test]
    fn malformed_and_unknown_requests_answer_structured_errors() {
        let server = start();
        let mut client = Client::connect(&server.addr().to_string()).unwrap();

        let bad: Value = serde_json::from_str(&client.roundtrip("{not json").unwrap()).unwrap();
        assert_eq!(bad.get("ok").and_then(|v| v.as_bool()), Some(false));
        assert_eq!(
            bad.get("error")
                .and_then(|e| e.get("code"))
                .and_then(|c| c.as_str()),
            Some("parse_error")
        );

        // The connection survives the malformed line.
        let unknown: Value = serde_json::from_str(
            &client
                .roundtrip(r#"{"op":"recommend","session":404}"#)
                .unwrap(),
        )
        .unwrap();
        assert_eq!(
            unknown
                .get("error")
                .and_then(|e| e.get("code"))
                .and_then(|c| c.as_str()),
            Some("unknown_session")
        );

        server.shutdown();
    }
}
