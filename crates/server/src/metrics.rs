//! Server metrics: lock-free counters plus a log-bucketed latency histogram
//! good enough for p50/p99 without keeping per-request samples.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Histogram bucket count. Bucket `i` holds requests whose latency in
/// microseconds `l` satisfies `floor(log2(max(l, 1))) == i`; the last bucket
/// absorbs everything slower (`2^62 µs` is far beyond any deadline).
const BUCKETS: usize = 63;

/// Shared metric counters (all relaxed atomics — monitoring, not
/// synchronization).
pub struct Metrics {
    /// Requests fully served (success or structured error).
    pub requests_total: AtomicU64,
    /// Requests answered with a structured error.
    pub errors_total: AtomicU64,
    /// Connections accepted.
    pub connections_total: AtomicU64,
    /// Connections rejected because the queue was full.
    pub rejected_total: AtomicU64,
    /// Requests dropped because their deadline passed while queued.
    pub deadline_expired_total: AtomicU64,
    /// What-if cost cache hits.
    pub cache_hits: AtomicU64,
    /// What-if cost cache misses.
    pub cache_misses: AtomicU64,
    latency_buckets: [AtomicU64; BUCKETS],
}

impl Default for Metrics {
    fn default() -> Self {
        Self {
            requests_total: AtomicU64::new(0),
            errors_total: AtomicU64::new(0),
            connections_total: AtomicU64::new(0),
            rejected_total: AtomicU64::new(0),
            deadline_expired_total: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
            latency_buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

/// A point-in-time metrics reading, plus gauges sampled by the caller.
#[derive(Debug, Clone, Copy)]
pub struct MetricsSnapshot {
    /// Requests fully served.
    pub requests_total: u64,
    /// Structured errors answered.
    pub errors_total: u64,
    /// Connections accepted.
    pub connections_total: u64,
    /// Connections rejected at admission.
    pub rejected_total: u64,
    /// Requests expired in the queue.
    pub deadline_expired_total: u64,
    /// Cache hits.
    pub cache_hits: u64,
    /// Cache misses.
    pub cache_misses: u64,
    /// Hit fraction in `[0, 1]` (0 when no lookups yet).
    pub cache_hit_rate: f64,
    /// Median request latency (µs, bucket upper bound).
    pub latency_p50_us: u64,
    /// 99th-percentile request latency (µs, bucket upper bound).
    pub latency_p99_us: u64,
}

impl Metrics {
    /// Records one served request's latency.
    pub fn observe_latency(&self, took: Duration) {
        let us = took.as_micros().max(1) as u64;
        let bucket = (63 - us.leading_zeros() as usize).min(BUCKETS - 1);
        if let Some(b) = self.latency_buckets.get(bucket) {
            b.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Reads every counter and derives the percentile estimates.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let hits = self.cache_hits.load(Ordering::Relaxed);
        let misses = self.cache_misses.load(Ordering::Relaxed);
        let lookups = hits + misses;
        MetricsSnapshot {
            requests_total: self.requests_total.load(Ordering::Relaxed),
            errors_total: self.errors_total.load(Ordering::Relaxed),
            connections_total: self.connections_total.load(Ordering::Relaxed),
            rejected_total: self.rejected_total.load(Ordering::Relaxed),
            deadline_expired_total: self.deadline_expired_total.load(Ordering::Relaxed),
            cache_hits: hits,
            cache_misses: misses,
            cache_hit_rate: if lookups > 0 {
                hits as f64 / lookups as f64
            } else {
                0.0
            },
            latency_p50_us: self.percentile_us(0.50),
            latency_p99_us: self.percentile_us(0.99),
        }
    }

    /// Bucket-resolution percentile: the upper bound (`2^(i+1) - 1` µs) of
    /// the bucket containing the q-quantile observation.
    fn percentile_us(&self, q: f64) -> u64 {
        let counts: Vec<u64> = self
            .latency_buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0;
        }
        let rank = ((total as f64 * q).ceil() as u64).max(1);
        let mut seen = 0;
        for (i, &c) in counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return (1u64 << (i + 1)) - 1;
            }
        }
        u64::MAX
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_metrics_report_zero() {
        let m = Metrics::default();
        let s = m.snapshot();
        assert_eq!(s.requests_total, 0);
        assert_eq!(s.latency_p50_us, 0);
        assert_eq!(s.cache_hit_rate, 0.0);
    }

    #[test]
    fn percentiles_track_bucket_bounds() {
        let m = Metrics::default();
        for _ in 0..99 {
            m.observe_latency(Duration::from_micros(100)); // bucket 6: 64..128
        }
        m.observe_latency(Duration::from_millis(50)); // far slower outlier
        let s = m.snapshot();
        assert_eq!(s.latency_p50_us, 127);
        assert!(s.latency_p99_us <= 127, "p99 is still the common case");
        for _ in 0..100 {
            m.observe_latency(Duration::from_millis(50));
        }
        assert!(m.snapshot().latency_p99_us > 10_000);
    }

    #[test]
    fn hit_rate_is_derived() {
        let m = Metrics::default();
        m.cache_hits.fetch_add(3, Ordering::Relaxed);
        m.cache_misses.fetch_add(1, Ordering::Relaxed);
        assert_eq!(m.snapshot().cache_hit_rate, 0.75);
    }
}
