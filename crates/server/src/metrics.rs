//! Server metrics: lock-free counters plus log-linear latency histograms
//! good enough for p50/p99/p999 without keeping per-request samples.
//!
//! Besides the overall request latency, three *stage* histograms break each
//! request's wall-clock into where it went: `queue` (connection admission
//! wait), `compute` (parse + engine execution), and `serialize` (response
//! line construction) — plus a per-op family keyed by the wire vocabulary
//! ([`OP_NAMES`]). The `metrics` wire op renders everything in Prometheus
//! text exposition format (see [`render_prometheus`]).
//!
//! Histograms are [`dblayout_obs::hist`] log-linear: 8 linear sub-buckets
//! per power-of-two octave, so every reported quantile overstates the true
//! value by at most 12.5% (the old power-of-two bucketing carried up to 2×
//! error exactly where p99/p999 live). The [`Histogram`] wrapper here
//! keeps the historical server semantics on top: observations clamp to at
//! least 1 µs, and quantiles report bucket upper bounds.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use dblayout_obs::counters::{self, Counter, CounterSnapshot};
use dblayout_obs::hist;

/// The largest value a percentile estimate can report: the upper bound of
/// the last histogram bucket (`2^63 - 1` µs). Returned instead of a
/// sentinel when a rank overshoots the scanned counts (relaxed-atomic
/// skew).
pub const LAST_BUCKET_BOUND_US: u64 = hist::MAX_BOUND;

/// The wire-op vocabulary for the per-op latency family, mirroring
/// [`crate::protocol::Request::op_name`] plus the `invalid` slot that
/// unparseable requests land in.
pub const OP_NAMES: [&str; 15] = [
    "open_session",
    "add_statements",
    "whatif_cost",
    "recommend",
    "drift",
    "recommend_budgeted",
    "plan_migration",
    "audit_list",
    "audit_get",
    "stats",
    "metrics",
    "trace",
    "profile",
    "close_session",
    "invalid",
];

/// Index of `op` in [`OP_NAMES`]; unknown names share the `invalid` slot.
fn op_index(op: &str) -> usize {
    OP_NAMES
        .iter()
        .position(|n| *n == op)
        .unwrap_or(OP_NAMES.len() - 1)
}

/// A lock-free log-linear histogram of microsecond observations (a thin
/// wrapper over [`dblayout_obs::hist::Histogram`] with the server's
/// clamp-to-1µs convention).
#[derive(Default)]
pub struct Histogram {
    inner: hist::Histogram,
}

/// A point-in-time reading of one [`Histogram`].
#[derive(Debug, Clone, Copy, Default)]
pub struct HistogramSnapshot {
    /// Observations recorded.
    pub count: u64,
    /// Sum of all observed values (µs, saturating).
    pub sum_us: u64,
    /// Median (µs, bucket upper bound; 0 when empty).
    pub p50_us: u64,
    /// 90th percentile (µs, bucket upper bound; 0 when empty).
    pub p90_us: u64,
    /// 99th percentile (µs, bucket upper bound; 0 when empty).
    pub p99_us: u64,
    /// 99.9th percentile (µs, bucket upper bound; 0 when empty).
    pub p999_us: u64,
    /// Exact maximum observed value (µs, not bucket-rounded).
    pub max_us: u64,
}

impl Histogram {
    /// Records one duration (values below 1 µs count as 1 µs; values past
    /// `u64` µs saturate into the last bucket).
    pub fn observe(&self, took: Duration) {
        self.observe_us(u64::try_from(took.as_micros()).unwrap_or(u64::MAX));
    }

    /// Records one microsecond value.
    pub fn observe_us(&self, us: u64) {
        self.inner.record(us.max(1));
    }

    /// Bucket-resolution percentile: the upper bound of the bucket
    /// containing the q-quantile observation (0 when empty), at most
    /// 12.5% above the true value.
    pub fn percentile_us(&self, q: f64) -> u64 {
        self.inner.snapshot().quantile(q)
    }

    /// Reads count, sum, and the standard percentiles at once.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let s = self.inner.snapshot();
        HistogramSnapshot {
            count: s.count,
            sum_us: s.sum,
            p50_us: s.quantile(0.50),
            p90_us: s.quantile(0.90),
            p99_us: s.quantile(0.99),
            p999_us: s.quantile(0.999),
            max_us: s.max,
        }
    }
}

/// Finds the bucket containing the observation of the given 1-based rank
/// and returns its upper bound. When `rank` exceeds the total count — which
/// relaxed-atomic skew between a `sum` and a later per-bucket scan can
/// produce — the answer is the **last finite bucket bound**
/// ([`LAST_BUCKET_BOUND_US`]), never a `u64::MAX` sentinel that would
/// poison latency dashboards.
#[cfg(test)]
fn percentile_from_counts(counts: &[u64], rank: u64) -> u64 {
    hist::rank_value(counts, rank)
}

/// Gauges sampled at snapshot time by whoever owns the live structures (the
/// engine knows sessions and cache; the transport knows its queue).
#[derive(Debug, Clone, Copy, Default)]
pub struct Gauges {
    /// Connections currently waiting for a worker.
    pub queue_depth: u64,
    /// Sessions currently open.
    pub sessions_open: u64,
    /// Sessions evicted by idle-TTL sweeps since startup (a counter that
    /// rides along with the gauges because the registry owns it).
    pub sessions_evicted_total: u64,
    /// Entries resident in the what-if cost cache.
    pub cache_entries: u64,
}

/// Shared metric counters (all relaxed atomics — monitoring, not
/// synchronization).
pub struct Metrics {
    /// Requests fully served (success or structured error).
    pub requests_total: AtomicU64,
    /// Requests answered with a structured error.
    pub errors_total: AtomicU64,
    /// Connections accepted.
    pub connections_total: AtomicU64,
    /// Connections rejected because the queue was full (busy sheds).
    pub rejected_total: AtomicU64,
    /// Requests dropped because their deadline passed while queued.
    pub deadline_expired_total: AtomicU64,
    /// Highest queue depth ever observed at admission time — how close
    /// the bounded queue has come to shedding.
    pub queue_depth_highwater: AtomicU64,
    /// What-if cost cache hits.
    pub cache_hits: AtomicU64,
    /// What-if cost cache misses.
    pub cache_misses: AtomicU64,
    /// End-to-end request latency.
    pub latency: Histogram,
    /// Stage: connection admission wait in the bounded queue.
    pub stage_queue: Histogram,
    /// Stage: request parse + engine execution.
    pub stage_compute: Histogram,
    /// Stage: response line construction.
    pub stage_serialize: Histogram,
    /// Predicted-vs-simulated relative error of audit replays, in parts
    /// per million (1 % = 10 000 ppm). Fed by the `audit_get` op when the
    /// client asks for a replay; empty until someone audits.
    pub audit_replay_error_ppm: Histogram,
    /// End-to-end latency split by wire op ([`OP_NAMES`] order).
    per_op: [Histogram; OP_NAMES.len()],
}

impl Default for Metrics {
    fn default() -> Self {
        Self {
            requests_total: AtomicU64::new(0),
            errors_total: AtomicU64::new(0),
            connections_total: AtomicU64::new(0),
            rejected_total: AtomicU64::new(0),
            deadline_expired_total: AtomicU64::new(0),
            queue_depth_highwater: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
            latency: Histogram::default(),
            stage_queue: Histogram::default(),
            stage_compute: Histogram::default(),
            stage_serialize: Histogram::default(),
            audit_replay_error_ppm: Histogram::default(),
            per_op: std::array::from_fn(|_| Histogram::default()),
        }
    }
}

/// A point-in-time metrics reading, including gauges supplied by the
/// caller (zero when snapshotting without a transport, e.g. in-process).
#[derive(Debug, Clone, Copy)]
pub struct MetricsSnapshot {
    /// Requests fully served.
    pub requests_total: u64,
    /// Structured errors answered.
    pub errors_total: u64,
    /// Connections accepted.
    pub connections_total: u64,
    /// Connections rejected at admission (busy sheds).
    pub rejected_total: u64,
    /// Requests expired in the queue.
    pub deadline_expired_total: u64,
    /// Highest queue depth observed at admission time.
    pub queue_depth_highwater: u64,
    /// Cache hits.
    pub cache_hits: u64,
    /// Cache misses.
    pub cache_misses: u64,
    /// Hit fraction in `[0, 1]` (0 when no lookups yet).
    pub cache_hit_rate: f64,
    /// Median request latency (µs, bucket upper bound).
    pub latency_p50_us: u64,
    /// 99th-percentile request latency (µs, bucket upper bound).
    pub latency_p99_us: u64,
    /// Full end-to-end latency histogram reading.
    pub latency: HistogramSnapshot,
    /// Queue-wait stage histogram reading.
    pub stage_queue: HistogramSnapshot,
    /// Compute stage histogram reading.
    pub stage_compute: HistogramSnapshot,
    /// Serialize stage histogram reading.
    pub stage_serialize: HistogramSnapshot,
    /// Audit replay-error histogram reading (ppm).
    pub audit_replay_error_ppm: HistogramSnapshot,
    /// Per-op end-to-end latency readings, [`OP_NAMES`] order.
    pub per_op_latency: [HistogramSnapshot; OP_NAMES.len()],
    /// Connections currently waiting for a worker.
    pub queue_depth: u64,
    /// Sessions currently open.
    pub sessions_open: u64,
    /// Sessions evicted by idle-TTL sweeps since startup.
    pub sessions_evicted_total: u64,
    /// Entries resident in the what-if cost cache.
    pub cache_entries: u64,
    /// Trace records evicted from the engine's span ring (the engine
    /// owner fills this in after snapshotting; 0 when no ring exists).
    pub trace_dropped_total: u64,
    /// Trace records lost to JSONL sink write errors (0 unless a file
    /// sink is attached and failing).
    pub trace_write_errors_total: u64,
    /// The workspace-wide `obs::counters` registry reading taken with
    /// this snapshot — rendered as `dblayout_<name>_total` families.
    pub work: CounterSnapshot,
}

impl Metrics {
    /// Records one served request's end-to-end latency.
    pub fn observe_latency(&self, took: Duration) {
        self.latency.observe(took);
    }

    /// Records one served request's end-to-end latency against both the
    /// overall histogram and its wire-op family.
    pub fn observe_op_latency(&self, op: &str, took: Duration) {
        self.latency.observe(took);
        if let Some(h) = self.per_op.get(op_index(op)) {
            h.observe(took);
        }
    }

    /// Reads every counter with zeroed gauges (in-process callers have no
    /// queue or registry to sample).
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.snapshot_with_gauges(Gauges::default())
    }

    /// Reads every counter and folds in the caller-sampled gauges.
    pub fn snapshot_with_gauges(&self, gauges: Gauges) -> MetricsSnapshot {
        let hits = self.cache_hits.load(Ordering::Relaxed);
        let misses = self.cache_misses.load(Ordering::Relaxed);
        let lookups = hits + misses;
        let latency = self.latency.snapshot();
        MetricsSnapshot {
            requests_total: self.requests_total.load(Ordering::Relaxed),
            errors_total: self.errors_total.load(Ordering::Relaxed),
            connections_total: self.connections_total.load(Ordering::Relaxed),
            rejected_total: self.rejected_total.load(Ordering::Relaxed),
            deadline_expired_total: self.deadline_expired_total.load(Ordering::Relaxed),
            queue_depth_highwater: self.queue_depth_highwater.load(Ordering::Relaxed),
            cache_hits: hits,
            cache_misses: misses,
            cache_hit_rate: if lookups > 0 {
                hits as f64 / lookups as f64
            } else {
                0.0
            },
            latency_p50_us: latency.p50_us,
            latency_p99_us: latency.p99_us,
            latency,
            stage_queue: self.stage_queue.snapshot(),
            stage_compute: self.stage_compute.snapshot(),
            stage_serialize: self.stage_serialize.snapshot(),
            audit_replay_error_ppm: self.audit_replay_error_ppm.snapshot(),
            per_op_latency: std::array::from_fn(|i| {
                self.per_op
                    .get(i)
                    .map(Histogram::snapshot)
                    .unwrap_or_default()
            }),
            queue_depth: gauges.queue_depth,
            sessions_open: gauges.sessions_open,
            sessions_evicted_total: gauges.sessions_evicted_total,
            cache_entries: gauges.cache_entries,
            trace_dropped_total: 0,
            trace_write_errors_total: 0,
            work: counters::snapshot(),
        }
    }
}

fn push_counter(out: &mut String, name: &str, value: u64) {
    out.push_str(&format!("# TYPE {name} counter\n{name} {value}\n"));
}

fn push_gauge(out: &mut String, name: &str, value: u64) {
    out.push_str(&format!("# TYPE {name} gauge\n{name} {value}\n"));
}

/// Escapes a label value per the Prometheus text exposition format:
/// backslash, double quote, and line feed become `\\`, `\"`, and `\n`.
/// Every label value emitted here is a static quantile string, but going
/// through the escaper keeps the renderer correct by construction (and
/// testable) should dynamic labels ever appear.
fn escape_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// The quantile series of one histogram reading, including the exact max
/// as `quantile="1"`.
fn quantile_series(h: &HistogramSnapshot) -> [(&'static str, u64); 5] {
    [
        ("0.5", h.p50_us),
        ("0.9", h.p90_us),
        ("0.99", h.p99_us),
        ("0.999", h.p999_us),
        ("1", h.max_us),
    ]
}

fn push_summary(out: &mut String, name: &str, h: &HistogramSnapshot) {
    out.push_str(&format!("# TYPE {name} summary\n"));
    for (q, v) in quantile_series(h) {
        out.push_str(&format!(
            "{name}{{quantile=\"{}\"}} {v}\n",
            escape_label_value(q)
        ));
    }
    out.push_str(&format!(
        "{name}_sum {}\n{name}_count {}\n",
        h.sum_us, h.count
    ));
}

/// The per-op latency family: one `# TYPE` line, then quantile samples
/// labeled `op="..."` for every op that has served at least one request
/// (empty ops are elided to keep the exposition small).
fn push_per_op_summaries(out: &mut String, s: &MetricsSnapshot) {
    let name = "dblayout_request_latency_by_op_us";
    out.push_str(&format!("# TYPE {name} summary\n"));
    for (op, h) in OP_NAMES.iter().zip(s.per_op_latency.iter()) {
        if h.count == 0 {
            continue;
        }
        let op = sanitize_label_value(op);
        for (q, v) in quantile_series(h) {
            out.push_str(&format!("{name}{{op=\"{op}\",quantile=\"{q}\"}} {v}\n"));
        }
        out.push_str(&format!("{name}_sum{{op=\"{op}\"}} {}\n", h.sum_us));
        out.push_str(&format!("{name}_count{{op=\"{op}\"}} {}\n", h.count));
    }
}

/// A label value that is safe inside the single-sample-per-line exposition
/// this module emits: escaped per the text format, with whitespace folded
/// to `_` so every non-comment line stays exactly two space-separated
/// tokens (a property the format tests — and simple scrapers — rely on).
fn sanitize_label_value(v: &str) -> String {
    let folded: String = v
        .chars()
        .map(|c| if c.is_whitespace() { '_' } else { c })
        .collect();
    escape_label_value(&folded)
}

/// Renders the `dblayout_build_info` identity gauge: always-1, with the
/// build's git revision (`DBLAYOUT_GIT_REV`, `unknown` when unset) and
/// crate version as labels — the join key that lets dashboards slice the
/// replay-error series by the code that produced the decisions.
fn push_build_info(out: &mut String) {
    let revision = std::env::var("DBLAYOUT_GIT_REV").unwrap_or_else(|_| "unknown".to_string());
    out.push_str(&format!(
        "# TYPE dblayout_build_info gauge\n\
         dblayout_build_info{{revision=\"{}\",version=\"{}\"}} 1\n",
        sanitize_label_value(&revision),
        sanitize_label_value(env!("CARGO_PKG_VERSION")),
    ));
}

/// Renders a snapshot in Prometheus text exposition format (the `metrics`
/// wire op's payload). Deterministic key order; quantiles are
/// bucket-resolution, in microseconds.
pub fn render_prometheus(s: &MetricsSnapshot) -> String {
    let mut out = String::new();
    push_build_info(&mut out);
    push_counter(&mut out, "dblayout_requests_total", s.requests_total);
    push_counter(&mut out, "dblayout_errors_total", s.errors_total);
    push_counter(&mut out, "dblayout_connections_total", s.connections_total);
    push_counter(&mut out, "dblayout_rejected_total", s.rejected_total);
    // The same busy-shed count under its documented load-test name; the
    // legacy `dblayout_rejected_total` family stays for old dashboards.
    push_counter(
        &mut out,
        "dblayout_requests_rejected_total",
        s.rejected_total,
    );
    push_counter(
        &mut out,
        "dblayout_deadline_expired_total",
        s.deadline_expired_total,
    );
    push_counter(&mut out, "dblayout_cache_hits_total", s.cache_hits);
    push_counter(&mut out, "dblayout_cache_misses_total", s.cache_misses);
    push_counter(
        &mut out,
        "dblayout_sessions_evicted_total",
        s.sessions_evicted_total,
    );
    push_counter(
        &mut out,
        "dblayout_trace_dropped_total",
        s.trace_dropped_total,
    );
    push_counter(
        &mut out,
        "dblayout_trace_write_errors_total",
        s.trace_write_errors_total,
    );
    // The decision-log family under its documented wire name (the
    // registry also exports the raw counter as
    // `dblayout_audit_records_written_total` below).
    push_counter(
        &mut out,
        "dblayout_audit_records_total",
        s.work.get(Counter::AuditRecordsWritten),
    );
    // The workspace-wide work-unit registry (obs::counters), in its fixed
    // exposition order.
    for (name, value) in s.work.pairs() {
        push_counter(&mut out, &format!("dblayout_{name}_total"), value);
    }
    push_gauge(&mut out, "dblayout_queue_depth", s.queue_depth);
    push_gauge(
        &mut out,
        "dblayout_queue_depth_highwater",
        s.queue_depth_highwater,
    );
    push_gauge(&mut out, "dblayout_sessions_open", s.sessions_open);
    push_gauge(&mut out, "dblayout_cache_entries", s.cache_entries);
    push_summary(&mut out, "dblayout_request_latency_us", &s.latency);
    push_summary(&mut out, "dblayout_stage_queue_us", &s.stage_queue);
    push_summary(&mut out, "dblayout_stage_compute_us", &s.stage_compute);
    push_summary(&mut out, "dblayout_stage_serialize_us", &s.stage_serialize);
    push_summary(
        &mut out,
        "dblayout_audit_replay_error_ppm",
        &s.audit_replay_error_ppm,
    );
    push_per_op_summaries(&mut out, s);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dblayout_obs::hist::{bucket_bound, bucket_index, SUB_BITS};

    #[test]
    fn empty_metrics_report_zero() {
        let m = Metrics::default();
        let s = m.snapshot();
        assert_eq!(s.requests_total, 0);
        assert_eq!(s.latency_p50_us, 0);
        assert_eq!(s.cache_hit_rate, 0.0);
        assert_eq!(s.queue_depth, 0);
        assert_eq!(s.queue_depth_highwater, 0);
        assert_eq!(s.stage_compute.count, 0);
        assert!(s.per_op_latency.iter().all(|h| h.count == 0));
    }

    #[test]
    fn percentiles_track_bucket_bounds() {
        let m = Metrics::default();
        for _ in 0..99 {
            // 100 µs: octave 6 (64..128), sub-bucket [96, 104) — bound 103.
            m.observe_latency(Duration::from_micros(100));
        }
        m.observe_latency(Duration::from_millis(50)); // far slower outlier
        let s = m.snapshot();
        assert_eq!(s.latency_p50_us, 103);
        assert!(s.latency_p99_us <= 103, "p99 is still the common case");
        // Log-linear resolution: p50 within 12.5% of the true 100 µs.
        assert!((s.latency_p50_us as f64) <= 100.0 * 1.125);
        for _ in 0..100 {
            m.observe_latency(Duration::from_millis(50));
        }
        let p99 = m.snapshot().latency_p99_us;
        assert!(p99 >= 50_000 && (p99 as f64) <= 50_000.0 * 1.125, "{p99}");
    }

    #[test]
    fn hit_rate_is_derived() {
        let m = Metrics::default();
        m.cache_hits.fetch_add(3, Ordering::Relaxed);
        m.cache_misses.fetch_add(1, Ordering::Relaxed);
        assert_eq!(m.snapshot().cache_hit_rate, 0.75);
    }

    /// Exact powers of two sit at the *bottom* of their octave's first
    /// sub-bucket: `2^k` µs reports `2^k + 2^(k-3) - 1`, and `2^k - 1`
    /// is the exact top of the previous octave.
    #[test]
    fn power_of_two_boundaries_land_in_their_bucket() {
        for k in SUB_BITS..63 {
            let h = Histogram::default();
            h.observe_us(1u64 << k);
            assert_eq!(
                h.percentile_us(0.5),
                (1u64 << k) + (1u64 << (k - SUB_BITS)) - 1,
                "2^{k} µs reports its sub-bucket's bound"
            );
            let h = Histogram::default();
            h.observe_us((1u64 << k) - 1);
            assert_eq!(
                h.percentile_us(0.5),
                (1u64 << k) - 1,
                "2^{k}-1 µs is an exact octave top"
            );
        }
        // Small values (below one octave of sub-buckets) are exact.
        for v in 1u64..8 {
            let h = Histogram::default();
            h.observe_us(v);
            assert_eq!(h.percentile_us(0.5), v);
        }
    }

    #[test]
    fn zero_and_one_microsecond_share_the_first_bucket() {
        let h = Histogram::default();
        h.observe(Duration::ZERO);
        h.observe(Duration::from_micros(1));
        let s = h.snapshot();
        assert_eq!(s.count, 2);
        assert_eq!(s.p50_us, 1);
        assert_eq!(s.p99_us, 1);
        // Zero clamps to 1 µs in the sum as well.
        assert_eq!(s.sum_us, 2);
    }

    /// `Duration::MAX` is ~5.8e14 years; its microsecond count overflows
    /// `u64`. It must saturate into the last bucket, not truncate into an
    /// arbitrary one.
    #[test]
    fn duration_max_saturates_into_last_bucket() {
        let h = Histogram::default();
        h.observe(Duration::MAX);
        assert_eq!(h.percentile_us(0.5), LAST_BUCKET_BOUND_US);
        assert_eq!(h.snapshot().p99_us, LAST_BUCKET_BOUND_US);
    }

    /// Regression for the racing-counts fallthrough: when the rank exceeds
    /// everything the scan sees (relaxed-atomic skew between the total and
    /// the per-bucket reads), the estimate is the last finite bucket bound,
    /// not a `u64::MAX` sentinel.
    #[test]
    fn rank_overshooting_counts_returns_last_bucket_bound() {
        let counts = [3u64, 2, 0, 1]; // total 6
        assert_eq!(percentile_from_counts(&counts, 7), LAST_BUCKET_BOUND_US);
        assert_ne!(percentile_from_counts(&counts, 7), u64::MAX);
        // In-range ranks still resolve normally (small buckets are exact).
        assert_eq!(percentile_from_counts(&counts, 1), bucket_bound(0));
        assert_eq!(percentile_from_counts(&counts, 4), bucket_bound(1));
        assert_eq!(percentile_from_counts(&counts, 6), bucket_bound(3));
        // Empty counts behave identically.
        assert_eq!(percentile_from_counts(&[], 1), LAST_BUCKET_BOUND_US);
    }

    /// The extended snapshot percentiles are ordered and max is exact.
    #[test]
    fn snapshot_percentiles_are_ordered_with_exact_max() {
        let h = Histogram::default();
        for i in 1..=1000u64 {
            h.observe_us(i);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 1000);
        assert!(s.p50_us <= s.p90_us);
        assert!(s.p90_us <= s.p99_us);
        assert!(s.p99_us <= s.p999_us);
        assert!(s.p999_us <= s.max_us.max(bucket_bound(bucket_index(1000))));
        assert_eq!(s.max_us, 1000, "max is the exact observation");
        // p50 within resolution of the true median (500).
        assert!(s.p50_us >= 500 && (s.p50_us as f64) <= 500.0 * 1.125);
    }

    #[test]
    fn prometheus_exposition_contains_all_families() {
        let m = Metrics::default();
        m.requests_total.fetch_add(5, Ordering::Relaxed);
        m.rejected_total.fetch_add(3, Ordering::Relaxed);
        m.queue_depth_highwater.store(9, Ordering::Relaxed);
        m.observe_latency(Duration::from_micros(100));
        m.stage_queue.observe(Duration::from_micros(10));
        m.stage_compute.observe(Duration::from_micros(80));
        m.stage_serialize.observe(Duration::from_micros(5));
        let text = render_prometheus(&m.snapshot_with_gauges(Gauges {
            queue_depth: 2,
            sessions_open: 3,
            sessions_evicted_total: 6,
            cache_entries: 4,
        }));
        assert!(text.contains("dblayout_requests_total 5\n"), "{text}");
        assert!(text.contains("dblayout_rejected_total 3\n"), "{text}");
        assert!(
            text.contains("dblayout_requests_rejected_total 3\n"),
            "{text}"
        );
        assert!(text.contains("dblayout_queue_depth 2\n"), "{text}");
        assert!(
            text.contains("dblayout_queue_depth_highwater 9\n"),
            "{text}"
        );
        assert!(text.contains("dblayout_sessions_open 3\n"), "{text}");
        assert!(
            text.contains("dblayout_sessions_evicted_total 6\n"),
            "{text}"
        );
        assert!(text.contains("dblayout_cache_entries 4\n"), "{text}");
        assert!(
            text.contains("dblayout_request_latency_us{quantile=\"0.5\"} 103\n"),
            "{text}"
        );
        for stage in ["queue", "compute", "serialize"] {
            assert!(
                text.contains(&format!("dblayout_stage_{stage}_us_count 1\n")),
                "missing stage {stage} in: {text}"
            );
        }
        // Every line is a comment or `name[{labels}] value`.
        for line in text.lines() {
            assert!(
                line.starts_with("# ") || line.split(' ').count() == 2,
                "malformed line: {line}"
            );
        }
    }

    /// The per-op family renders one TYPE line and labeled samples for
    /// exactly the ops that served requests, keeping the two-token shape.
    #[test]
    fn per_op_latency_family_renders_labeled_quantiles() {
        let m = Metrics::default();
        m.observe_op_latency("stats", Duration::from_micros(50));
        m.observe_op_latency("stats", Duration::from_micros(60));
        m.observe_op_latency("recommend", Duration::from_millis(3));
        m.observe_op_latency("nonsense op", Duration::from_micros(10)); // -> invalid
        let text = render_prometheus(&m.snapshot());
        assert_eq!(
            text.matches("# TYPE dblayout_request_latency_by_op_us summary\n")
                .count(),
            1
        );
        assert!(
            text.contains("dblayout_request_latency_by_op_us{op=\"stats\",quantile=\"0.5\"}"),
            "{text}"
        );
        assert!(
            text.contains("dblayout_request_latency_by_op_us{op=\"recommend\",quantile=\"0.999\"}"),
            "{text}"
        );
        assert!(
            text.contains("dblayout_request_latency_by_op_us_count{op=\"stats\"} 2\n"),
            "{text}"
        );
        // Unknown names share the invalid slot.
        assert!(
            text.contains("dblayout_request_latency_by_op_us_count{op=\"invalid\"} 1\n"),
            "{text}"
        );
        // Ops that never served a request are elided.
        assert!(!text.contains("{op=\"trace\""), "{text}");
        // Overall latency saw every observation.
        assert!(
            text.contains("dblayout_request_latency_us_count 4\n"),
            "{text}"
        );
        for line in text.lines() {
            assert!(
                line.starts_with("# ") || line.split(' ').count() == 2,
                "malformed line: {line}"
            );
        }
    }

    #[test]
    fn exposition_includes_trace_loss_and_work_counters() {
        let m = Metrics::default();
        let mut s = m.snapshot();
        s.trace_dropped_total = 7;
        s.trace_write_errors_total = 2;
        let text = render_prometheus(&s);
        assert!(text.contains("dblayout_trace_dropped_total 7\n"), "{text}");
        assert!(
            text.contains("dblayout_trace_write_errors_total 2\n"),
            "{text}"
        );
        // Every registry counter appears as a `_total` family.
        for (name, _) in s.work.pairs() {
            assert!(
                text.contains(&format!("# TYPE dblayout_{name}_total counter\n")),
                "registry counter {name} missing from: {text}"
            );
        }
    }

    /// Format correctness: every emitted sample family has exactly one
    /// `# TYPE` line, declared before its first sample, and every metric
    /// name is legal (`[a-zA-Z_:][a-zA-Z0-9_:]*`).
    #[test]
    fn every_family_has_a_type_line_and_legal_name() {
        let m = Metrics::default();
        m.observe_latency(Duration::from_micros(50));
        m.observe_op_latency("whatif_cost", Duration::from_micros(120));
        let text = render_prometheus(&m.snapshot());
        let mut typed: Vec<String> = Vec::new();
        for line in text.lines() {
            if let Some(rest) = line.strip_prefix("# TYPE ") {
                let mut parts = rest.split(' ');
                let fam = parts.next().unwrap_or("").to_string();
                let kind = parts.next().unwrap_or("");
                assert!(
                    matches!(kind, "counter" | "gauge" | "summary"),
                    "unknown TYPE kind in: {line}"
                );
                assert!(!typed.contains(&fam), "duplicate TYPE for {fam}");
                typed.push(fam);
                continue;
            }
            let name_part = line.split([' ', '{']).next().unwrap_or("");
            // Samples belong to a family declared above: the name itself,
            // or a summary's `_sum`/`_count` companion series.
            let family = name_part
                .strip_suffix("_sum")
                .or_else(|| name_part.strip_suffix("_count"))
                .filter(|f| typed.contains(&(*f).to_string()))
                .unwrap_or(name_part);
            assert!(
                typed.contains(&family.to_string()),
                "sample `{line}` precedes its # TYPE declaration"
            );
            let mut chars = name_part.chars();
            let first = chars.next().unwrap();
            assert!(
                first.is_ascii_alphabetic() || first == '_' || first == ':',
                "illegal first char in metric name: {name_part}"
            );
            assert!(
                chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
                "illegal metric name: {name_part}"
            );
        }
        assert!(!typed.is_empty());
    }

    /// The build-identity gauge and both audit families render with type
    /// lines, and every emitted line keeps the two-token shape even with
    /// the labeled build_info sample present.
    #[test]
    fn exposition_includes_build_info_and_audit_families() {
        let m = Metrics::default();
        m.audit_replay_error_ppm.observe_us(25);
        let text = render_prometheus(&m.snapshot());
        assert!(
            text.contains("# TYPE dblayout_build_info gauge\n"),
            "{text}"
        );
        assert!(text.contains("dblayout_build_info{revision=\""), "{text}");
        assert!(text.contains(&format!("version=\"{}\"}} 1\n", env!("CARGO_PKG_VERSION"))));
        assert!(
            text.contains("# TYPE dblayout_audit_records_total counter\n"),
            "{text}"
        );
        assert!(
            text.contains("dblayout_audit_replay_error_ppm_count 1\n"),
            "{text}"
        );
        for line in text.lines() {
            assert!(
                line.starts_with("# ") || line.split(' ').count() == 2,
                "malformed line: {line}"
            );
        }
    }

    /// Label sanitation folds whitespace (which would break the
    /// one-sample-per-line shape) and still escapes quotes/backslashes.
    #[test]
    fn sanitized_labels_contain_no_whitespace() {
        assert_eq!(sanitize_label_value("a b\tc"), "a_b_c");
        assert_eq!(sanitize_label_value("a\"b"), "a\\\"b");
        assert_eq!(sanitize_label_value("v0.1.0"), "v0.1.0");
    }

    #[test]
    fn label_values_are_escaped() {
        assert_eq!(escape_label_value("0.99"), "0.99");
        assert_eq!(escape_label_value("a\"b"), "a\\\"b");
        assert_eq!(escape_label_value("a\\b"), "a\\\\b");
        assert_eq!(escape_label_value("a\nb"), "a\\nb");
        // The rendered quantile labels parse as quoted strings.
        let m = Metrics::default();
        m.observe_latency(Duration::from_micros(10));
        let text = render_prometheus(&m.snapshot());
        assert!(text.contains("{quantile=\"0.5\"}"), "{text}");
        assert!(text.contains("{quantile=\"0.99\"}"), "{text}");
        assert!(text.contains("{quantile=\"0.999\"}"), "{text}");
    }

    /// Counter monotonicity across the exposition boundary: registry
    /// increments between two renders can only increase the exported
    /// `_total` values (8-thread hammering of the registry itself lives
    /// in `dblayout_obs::counters`).
    #[test]
    fn rendered_work_counters_are_monotonic() {
        use dblayout_obs::counters::Counter;
        let m = Metrics::default();
        let before = m.snapshot();
        counters::add(Counter::ServerCacheHits, 3);
        let after = m.snapshot();
        for ((name, b), (_, a)) in before.work.pairs().into_iter().zip(after.work.pairs()) {
            assert!(a >= b, "{name} went backwards: {b} -> {a}");
        }
        assert!(
            after.work.get(Counter::ServerCacheHits)
                >= before.work.get(Counter::ServerCacheHits) + 3
        );
    }
}
