//! Server metrics: lock-free counters plus log-bucketed latency histograms
//! good enough for p50/p99 without keeping per-request samples.
//!
//! Besides the overall request latency, three *stage* histograms break each
//! request's wall-clock into where it went: `queue` (connection admission
//! wait), `compute` (parse + engine execution), and `serialize` (response
//! line construction). The `metrics` wire op renders everything in
//! Prometheus text exposition format (see [`render_prometheus`]).

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use dblayout_obs::counters::{self, Counter, CounterSnapshot};

/// Histogram bucket count. Bucket `i` holds observations whose value in
/// microseconds `v` satisfies `floor(log2(max(v, 1))) == i`; the last bucket
/// absorbs everything slower (`2^62 µs` is far beyond any deadline).
const BUCKETS: usize = 63;

/// Upper bound in µs of bucket `i`: `2^(i+1) - 1`.
fn bucket_bound_us(i: usize) -> u64 {
    (1u64 << (i + 1).min(63)).wrapping_sub(1)
}

/// The largest value a percentile estimate can report: the upper bound of
/// the last bucket (`2^63 - 1` µs). Returned instead of a sentinel when a
/// rank overshoots the scanned counts (relaxed-atomic skew).
pub const LAST_BUCKET_BOUND_US: u64 = u64::MAX >> 1;

/// A lock-free log2-bucketed histogram of microsecond observations.
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    sum_us: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum_us: AtomicU64::new(0),
        }
    }
}

/// A point-in-time reading of one [`Histogram`].
#[derive(Debug, Clone, Copy, Default)]
pub struct HistogramSnapshot {
    /// Observations recorded.
    pub count: u64,
    /// Sum of all observed values (µs, saturating).
    pub sum_us: u64,
    /// Median (µs, bucket upper bound; 0 when empty).
    pub p50_us: u64,
    /// 99th percentile (µs, bucket upper bound; 0 when empty).
    pub p99_us: u64,
}

impl Histogram {
    /// Records one duration (values below 1 µs count as 1 µs; values past
    /// `u64` µs saturate into the last bucket).
    pub fn observe(&self, took: Duration) {
        self.observe_us(u64::try_from(took.as_micros()).unwrap_or(u64::MAX));
    }

    /// Records one microsecond value.
    pub fn observe_us(&self, us: u64) {
        let us = us.max(1);
        let bucket = (63 - us.leading_zeros() as usize).min(BUCKETS - 1);
        if let Some(b) = self.buckets.get(bucket) {
            b.fetch_add(1, Ordering::Relaxed);
        }
        // Saturating sum: fetch_add wraps, so clamp via compare loop only
        // when near the top — in practice fetch_add is fine for monitoring,
        // but don't let a wrapped sum masquerade as small.
        let prev = self.sum_us.fetch_add(us, Ordering::Relaxed);
        if prev.checked_add(us).is_none() {
            self.sum_us.store(u64::MAX, Ordering::Relaxed);
        }
    }

    /// Reads the per-bucket counts.
    fn counts(&self) -> [u64; BUCKETS] {
        std::array::from_fn(|i| match self.buckets.get(i) {
            Some(b) => b.load(Ordering::Relaxed),
            None => 0,
        })
    }

    /// Bucket-resolution percentile: the upper bound of the bucket
    /// containing the q-quantile observation (0 when empty).
    pub fn percentile_us(&self, q: f64) -> u64 {
        let counts = self.counts();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0;
        }
        let rank = ((total as f64 * q).ceil() as u64).max(1);
        percentile_from_counts(&counts, rank)
    }

    /// Reads count, sum, and the standard percentiles at once.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let counts = self.counts();
        let total: u64 = counts.iter().sum();
        let rank = |q: f64| ((total as f64 * q).ceil() as u64).max(1);
        HistogramSnapshot {
            count: total,
            sum_us: self.sum_us.load(Ordering::Relaxed),
            p50_us: if total == 0 {
                0
            } else {
                percentile_from_counts(&counts, rank(0.50))
            },
            p99_us: if total == 0 {
                0
            } else {
                percentile_from_counts(&counts, rank(0.99))
            },
        }
    }
}

/// Finds the bucket containing the observation of the given 1-based rank
/// and returns its upper bound. When `rank` exceeds the total count — which
/// relaxed-atomic skew between a `sum` and a later per-bucket scan can
/// produce — the answer is the **last finite bucket bound**
/// ([`LAST_BUCKET_BOUND_US`]), never a `u64::MAX` sentinel that would
/// poison latency dashboards.
fn percentile_from_counts(counts: &[u64], rank: u64) -> u64 {
    let mut seen = 0u64;
    for (i, &c) in counts.iter().enumerate() {
        seen = seen.saturating_add(c);
        if seen >= rank {
            return bucket_bound_us(i);
        }
    }
    LAST_BUCKET_BOUND_US
}

/// Gauges sampled at snapshot time by whoever owns the live structures (the
/// engine knows sessions and cache; the transport knows its queue).
#[derive(Debug, Clone, Copy, Default)]
pub struct Gauges {
    /// Connections currently waiting for a worker.
    pub queue_depth: u64,
    /// Sessions currently open.
    pub sessions_open: u64,
    /// Sessions evicted by idle-TTL sweeps since startup (a counter that
    /// rides along with the gauges because the registry owns it).
    pub sessions_evicted_total: u64,
    /// Entries resident in the what-if cost cache.
    pub cache_entries: u64,
}

/// Shared metric counters (all relaxed atomics — monitoring, not
/// synchronization).
pub struct Metrics {
    /// Requests fully served (success or structured error).
    pub requests_total: AtomicU64,
    /// Requests answered with a structured error.
    pub errors_total: AtomicU64,
    /// Connections accepted.
    pub connections_total: AtomicU64,
    /// Connections rejected because the queue was full.
    pub rejected_total: AtomicU64,
    /// Requests dropped because their deadline passed while queued.
    pub deadline_expired_total: AtomicU64,
    /// What-if cost cache hits.
    pub cache_hits: AtomicU64,
    /// What-if cost cache misses.
    pub cache_misses: AtomicU64,
    /// End-to-end request latency.
    pub latency: Histogram,
    /// Stage: connection admission wait in the bounded queue.
    pub stage_queue: Histogram,
    /// Stage: request parse + engine execution.
    pub stage_compute: Histogram,
    /// Stage: response line construction.
    pub stage_serialize: Histogram,
    /// Predicted-vs-simulated relative error of audit replays, in parts
    /// per million (1 % = 10 000 ppm). Fed by the `audit_get` op when the
    /// client asks for a replay; empty until someone audits.
    pub audit_replay_error_ppm: Histogram,
}

impl Default for Metrics {
    fn default() -> Self {
        Self {
            requests_total: AtomicU64::new(0),
            errors_total: AtomicU64::new(0),
            connections_total: AtomicU64::new(0),
            rejected_total: AtomicU64::new(0),
            deadline_expired_total: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
            latency: Histogram::default(),
            stage_queue: Histogram::default(),
            stage_compute: Histogram::default(),
            stage_serialize: Histogram::default(),
            audit_replay_error_ppm: Histogram::default(),
        }
    }
}

/// A point-in-time metrics reading, including gauges supplied by the
/// caller (zero when snapshotting without a transport, e.g. in-process).
#[derive(Debug, Clone, Copy)]
pub struct MetricsSnapshot {
    /// Requests fully served.
    pub requests_total: u64,
    /// Structured errors answered.
    pub errors_total: u64,
    /// Connections accepted.
    pub connections_total: u64,
    /// Connections rejected at admission.
    pub rejected_total: u64,
    /// Requests expired in the queue.
    pub deadline_expired_total: u64,
    /// Cache hits.
    pub cache_hits: u64,
    /// Cache misses.
    pub cache_misses: u64,
    /// Hit fraction in `[0, 1]` (0 when no lookups yet).
    pub cache_hit_rate: f64,
    /// Median request latency (µs, bucket upper bound).
    pub latency_p50_us: u64,
    /// 99th-percentile request latency (µs, bucket upper bound).
    pub latency_p99_us: u64,
    /// Full end-to-end latency histogram reading.
    pub latency: HistogramSnapshot,
    /// Queue-wait stage histogram reading.
    pub stage_queue: HistogramSnapshot,
    /// Compute stage histogram reading.
    pub stage_compute: HistogramSnapshot,
    /// Serialize stage histogram reading.
    pub stage_serialize: HistogramSnapshot,
    /// Audit replay-error histogram reading (ppm).
    pub audit_replay_error_ppm: HistogramSnapshot,
    /// Connections currently waiting for a worker.
    pub queue_depth: u64,
    /// Sessions currently open.
    pub sessions_open: u64,
    /// Sessions evicted by idle-TTL sweeps since startup.
    pub sessions_evicted_total: u64,
    /// Entries resident in the what-if cost cache.
    pub cache_entries: u64,
    /// Trace records evicted from the engine's span ring (the engine
    /// owner fills this in after snapshotting; 0 when no ring exists).
    pub trace_dropped_total: u64,
    /// Trace records lost to JSONL sink write errors (0 unless a file
    /// sink is attached and failing).
    pub trace_write_errors_total: u64,
    /// The workspace-wide `obs::counters` registry reading taken with
    /// this snapshot — rendered as `dblayout_<name>_total` families.
    pub work: CounterSnapshot,
}

impl Metrics {
    /// Records one served request's end-to-end latency.
    pub fn observe_latency(&self, took: Duration) {
        self.latency.observe(took);
    }

    /// Reads every counter with zeroed gauges (in-process callers have no
    /// queue or registry to sample).
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.snapshot_with_gauges(Gauges::default())
    }

    /// Reads every counter and folds in the caller-sampled gauges.
    pub fn snapshot_with_gauges(&self, gauges: Gauges) -> MetricsSnapshot {
        let hits = self.cache_hits.load(Ordering::Relaxed);
        let misses = self.cache_misses.load(Ordering::Relaxed);
        let lookups = hits + misses;
        let latency = self.latency.snapshot();
        MetricsSnapshot {
            requests_total: self.requests_total.load(Ordering::Relaxed),
            errors_total: self.errors_total.load(Ordering::Relaxed),
            connections_total: self.connections_total.load(Ordering::Relaxed),
            rejected_total: self.rejected_total.load(Ordering::Relaxed),
            deadline_expired_total: self.deadline_expired_total.load(Ordering::Relaxed),
            cache_hits: hits,
            cache_misses: misses,
            cache_hit_rate: if lookups > 0 {
                hits as f64 / lookups as f64
            } else {
                0.0
            },
            latency_p50_us: latency.p50_us,
            latency_p99_us: latency.p99_us,
            latency,
            stage_queue: self.stage_queue.snapshot(),
            stage_compute: self.stage_compute.snapshot(),
            stage_serialize: self.stage_serialize.snapshot(),
            audit_replay_error_ppm: self.audit_replay_error_ppm.snapshot(),
            queue_depth: gauges.queue_depth,
            sessions_open: gauges.sessions_open,
            sessions_evicted_total: gauges.sessions_evicted_total,
            cache_entries: gauges.cache_entries,
            trace_dropped_total: 0,
            trace_write_errors_total: 0,
            work: counters::snapshot(),
        }
    }
}

fn push_counter(out: &mut String, name: &str, value: u64) {
    out.push_str(&format!("# TYPE {name} counter\n{name} {value}\n"));
}

fn push_gauge(out: &mut String, name: &str, value: u64) {
    out.push_str(&format!("# TYPE {name} gauge\n{name} {value}\n"));
}

/// Escapes a label value per the Prometheus text exposition format:
/// backslash, double quote, and line feed become `\\`, `\"`, and `\n`.
/// Every label value emitted here is a static quantile string, but going
/// through the escaper keeps the renderer correct by construction (and
/// testable) should dynamic labels ever appear.
fn escape_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

fn push_summary(out: &mut String, name: &str, h: &HistogramSnapshot) {
    out.push_str(&format!("# TYPE {name} summary\n"));
    for (q, v) in [("0.5", h.p50_us), ("0.99", h.p99_us)] {
        out.push_str(&format!(
            "{name}{{quantile=\"{}\"}} {v}\n",
            escape_label_value(q)
        ));
    }
    out.push_str(&format!(
        "{name}_sum {}\n{name}_count {}\n",
        h.sum_us, h.count
    ));
}

/// A label value that is safe inside the single-sample-per-line exposition
/// this module emits: escaped per the text format, with whitespace folded
/// to `_` so every non-comment line stays exactly two space-separated
/// tokens (a property the format tests — and simple scrapers — rely on).
fn sanitize_label_value(v: &str) -> String {
    let folded: String = v
        .chars()
        .map(|c| if c.is_whitespace() { '_' } else { c })
        .collect();
    escape_label_value(&folded)
}

/// Renders the `dblayout_build_info` identity gauge: always-1, with the
/// build's git revision (`DBLAYOUT_GIT_REV`, `unknown` when unset) and
/// crate version as labels — the join key that lets dashboards slice the
/// replay-error series by the code that produced the decisions.
fn push_build_info(out: &mut String) {
    let revision = std::env::var("DBLAYOUT_GIT_REV").unwrap_or_else(|_| "unknown".to_string());
    out.push_str(&format!(
        "# TYPE dblayout_build_info gauge\n\
         dblayout_build_info{{revision=\"{}\",version=\"{}\"}} 1\n",
        sanitize_label_value(&revision),
        sanitize_label_value(env!("CARGO_PKG_VERSION")),
    ));
}

/// Renders a snapshot in Prometheus text exposition format (the `metrics`
/// wire op's payload). Deterministic key order; quantiles are
/// bucket-resolution, in microseconds.
pub fn render_prometheus(s: &MetricsSnapshot) -> String {
    let mut out = String::new();
    push_build_info(&mut out);
    push_counter(&mut out, "dblayout_requests_total", s.requests_total);
    push_counter(&mut out, "dblayout_errors_total", s.errors_total);
    push_counter(&mut out, "dblayout_connections_total", s.connections_total);
    push_counter(&mut out, "dblayout_rejected_total", s.rejected_total);
    push_counter(
        &mut out,
        "dblayout_deadline_expired_total",
        s.deadline_expired_total,
    );
    push_counter(&mut out, "dblayout_cache_hits_total", s.cache_hits);
    push_counter(&mut out, "dblayout_cache_misses_total", s.cache_misses);
    push_counter(
        &mut out,
        "dblayout_sessions_evicted_total",
        s.sessions_evicted_total,
    );
    push_counter(
        &mut out,
        "dblayout_trace_dropped_total",
        s.trace_dropped_total,
    );
    push_counter(
        &mut out,
        "dblayout_trace_write_errors_total",
        s.trace_write_errors_total,
    );
    // The decision-log family under its documented wire name (the
    // registry also exports the raw counter as
    // `dblayout_audit_records_written_total` below).
    push_counter(
        &mut out,
        "dblayout_audit_records_total",
        s.work.get(Counter::AuditRecordsWritten),
    );
    // The workspace-wide work-unit registry (obs::counters), in its fixed
    // exposition order.
    for (name, value) in s.work.pairs() {
        push_counter(&mut out, &format!("dblayout_{name}_total"), value);
    }
    push_gauge(&mut out, "dblayout_queue_depth", s.queue_depth);
    push_gauge(&mut out, "dblayout_sessions_open", s.sessions_open);
    push_gauge(&mut out, "dblayout_cache_entries", s.cache_entries);
    push_summary(&mut out, "dblayout_request_latency_us", &s.latency);
    push_summary(&mut out, "dblayout_stage_queue_us", &s.stage_queue);
    push_summary(&mut out, "dblayout_stage_compute_us", &s.stage_compute);
    push_summary(&mut out, "dblayout_stage_serialize_us", &s.stage_serialize);
    push_summary(
        &mut out,
        "dblayout_audit_replay_error_ppm",
        &s.audit_replay_error_ppm,
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_metrics_report_zero() {
        let m = Metrics::default();
        let s = m.snapshot();
        assert_eq!(s.requests_total, 0);
        assert_eq!(s.latency_p50_us, 0);
        assert_eq!(s.cache_hit_rate, 0.0);
        assert_eq!(s.queue_depth, 0);
        assert_eq!(s.stage_compute.count, 0);
    }

    #[test]
    fn percentiles_track_bucket_bounds() {
        let m = Metrics::default();
        for _ in 0..99 {
            m.observe_latency(Duration::from_micros(100)); // bucket 6: 64..128
        }
        m.observe_latency(Duration::from_millis(50)); // far slower outlier
        let s = m.snapshot();
        assert_eq!(s.latency_p50_us, 127);
        assert!(s.latency_p99_us <= 127, "p99 is still the common case");
        for _ in 0..100 {
            m.observe_latency(Duration::from_millis(50));
        }
        assert!(m.snapshot().latency_p99_us > 10_000);
    }

    #[test]
    fn hit_rate_is_derived() {
        let m = Metrics::default();
        m.cache_hits.fetch_add(3, Ordering::Relaxed);
        m.cache_misses.fetch_add(1, Ordering::Relaxed);
        assert_eq!(m.snapshot().cache_hit_rate, 0.75);
    }

    /// Exact powers of two sit at the *bottom* of their bucket: `2^i` µs
    /// lands in bucket `i`, whose reported bound is `2^(i+1) - 1`.
    #[test]
    fn power_of_two_boundaries_land_in_their_bucket() {
        for i in 0..BUCKETS {
            let h = Histogram::default();
            h.observe_us(1u64 << i);
            assert_eq!(
                h.percentile_us(0.5),
                bucket_bound_us(i),
                "2^{i} µs should report bucket {i}'s bound"
            );
            // One below the power (when distinct from 0) is the previous
            // bucket's top.
            if i >= 1 {
                let h = Histogram::default();
                h.observe_us((1u64 << i) - 1);
                assert_eq!(h.percentile_us(0.5), bucket_bound_us(i - 1));
            }
        }
    }

    #[test]
    fn zero_and_one_microsecond_share_the_first_bucket() {
        let h = Histogram::default();
        h.observe(Duration::ZERO);
        h.observe(Duration::from_micros(1));
        let s = h.snapshot();
        assert_eq!(s.count, 2);
        assert_eq!(s.p50_us, 1);
        assert_eq!(s.p99_us, 1);
        // Zero clamps to 1 µs in the sum as well.
        assert_eq!(s.sum_us, 2);
    }

    /// `Duration::MAX` is ~5.8e14 years; its microsecond count overflows
    /// `u64`. It must saturate into the last bucket, not truncate into an
    /// arbitrary one.
    #[test]
    fn duration_max_saturates_into_last_bucket() {
        let h = Histogram::default();
        h.observe(Duration::MAX);
        assert_eq!(h.percentile_us(0.5), LAST_BUCKET_BOUND_US);
        assert_eq!(h.snapshot().p99_us, LAST_BUCKET_BOUND_US);
    }

    /// Regression for the racing-counts fallthrough: when the rank exceeds
    /// everything the scan sees (relaxed-atomic skew between the total and
    /// the per-bucket reads), the estimate is the last finite bucket bound,
    /// not a `u64::MAX` sentinel.
    #[test]
    fn rank_overshooting_counts_returns_last_bucket_bound() {
        let counts = [3u64, 2, 0, 1]; // total 6
        assert_eq!(percentile_from_counts(&counts, 7), LAST_BUCKET_BOUND_US);
        assert_ne!(percentile_from_counts(&counts, 7), u64::MAX);
        // In-range ranks still resolve normally.
        assert_eq!(percentile_from_counts(&counts, 1), 1);
        assert_eq!(percentile_from_counts(&counts, 4), 3);
        assert_eq!(percentile_from_counts(&counts, 6), 15);
        // Empty counts behave identically.
        assert_eq!(percentile_from_counts(&[], 1), LAST_BUCKET_BOUND_US);
    }

    #[test]
    fn prometheus_exposition_contains_all_families() {
        let m = Metrics::default();
        m.requests_total.fetch_add(5, Ordering::Relaxed);
        m.observe_latency(Duration::from_micros(100));
        m.stage_queue.observe(Duration::from_micros(10));
        m.stage_compute.observe(Duration::from_micros(80));
        m.stage_serialize.observe(Duration::from_micros(5));
        let text = render_prometheus(&m.snapshot_with_gauges(Gauges {
            queue_depth: 2,
            sessions_open: 3,
            sessions_evicted_total: 6,
            cache_entries: 4,
        }));
        assert!(text.contains("dblayout_requests_total 5\n"), "{text}");
        assert!(text.contains("dblayout_queue_depth 2\n"), "{text}");
        assert!(text.contains("dblayout_sessions_open 3\n"), "{text}");
        assert!(
            text.contains("dblayout_sessions_evicted_total 6\n"),
            "{text}"
        );
        assert!(text.contains("dblayout_cache_entries 4\n"), "{text}");
        assert!(
            text.contains("dblayout_request_latency_us{quantile=\"0.5\"} 127\n"),
            "{text}"
        );
        for stage in ["queue", "compute", "serialize"] {
            assert!(
                text.contains(&format!("dblayout_stage_{stage}_us_count 1\n")),
                "missing stage {stage} in: {text}"
            );
        }
        // Every line is a comment or `name[{labels}] value`.
        for line in text.lines() {
            assert!(
                line.starts_with("# ") || line.split(' ').count() == 2,
                "malformed line: {line}"
            );
        }
    }

    #[test]
    fn exposition_includes_trace_loss_and_work_counters() {
        let m = Metrics::default();
        let mut s = m.snapshot();
        s.trace_dropped_total = 7;
        s.trace_write_errors_total = 2;
        let text = render_prometheus(&s);
        assert!(text.contains("dblayout_trace_dropped_total 7\n"), "{text}");
        assert!(
            text.contains("dblayout_trace_write_errors_total 2\n"),
            "{text}"
        );
        // Every registry counter appears as a `_total` family.
        for (name, _) in s.work.pairs() {
            assert!(
                text.contains(&format!("# TYPE dblayout_{name}_total counter\n")),
                "registry counter {name} missing from: {text}"
            );
        }
    }

    /// Format correctness: every emitted sample family has exactly one
    /// `# TYPE` line, declared before its first sample, and every metric
    /// name is legal (`[a-zA-Z_:][a-zA-Z0-9_:]*`).
    #[test]
    fn every_family_has_a_type_line_and_legal_name() {
        let m = Metrics::default();
        m.observe_latency(Duration::from_micros(50));
        let text = render_prometheus(&m.snapshot());
        let mut typed: Vec<String> = Vec::new();
        for line in text.lines() {
            if let Some(rest) = line.strip_prefix("# TYPE ") {
                let mut parts = rest.split(' ');
                let fam = parts.next().unwrap_or("").to_string();
                let kind = parts.next().unwrap_or("");
                assert!(
                    matches!(kind, "counter" | "gauge" | "summary"),
                    "unknown TYPE kind in: {line}"
                );
                assert!(!typed.contains(&fam), "duplicate TYPE for {fam}");
                typed.push(fam);
                continue;
            }
            let name_part = line.split([' ', '{']).next().unwrap_or("");
            // Samples belong to a family declared above: the name itself,
            // or a summary's `_sum`/`_count` companion series.
            let family = name_part
                .strip_suffix("_sum")
                .or_else(|| name_part.strip_suffix("_count"))
                .filter(|f| typed.contains(&(*f).to_string()))
                .unwrap_or(name_part);
            assert!(
                typed.contains(&family.to_string()),
                "sample `{line}` precedes its # TYPE declaration"
            );
            let mut chars = name_part.chars();
            let first = chars.next().unwrap();
            assert!(
                first.is_ascii_alphabetic() || first == '_' || first == ':',
                "illegal first char in metric name: {name_part}"
            );
            assert!(
                chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
                "illegal metric name: {name_part}"
            );
        }
        assert!(!typed.is_empty());
    }

    /// The build-identity gauge and both audit families render with type
    /// lines, and every emitted line keeps the two-token shape even with
    /// the labeled build_info sample present.
    #[test]
    fn exposition_includes_build_info_and_audit_families() {
        let m = Metrics::default();
        m.audit_replay_error_ppm.observe_us(25);
        let text = render_prometheus(&m.snapshot());
        assert!(
            text.contains("# TYPE dblayout_build_info gauge\n"),
            "{text}"
        );
        assert!(text.contains("dblayout_build_info{revision=\""), "{text}");
        assert!(text.contains(&format!("version=\"{}\"}} 1\n", env!("CARGO_PKG_VERSION"))));
        assert!(
            text.contains("# TYPE dblayout_audit_records_total counter\n"),
            "{text}"
        );
        assert!(
            text.contains("dblayout_audit_replay_error_ppm_count 1\n"),
            "{text}"
        );
        for line in text.lines() {
            assert!(
                line.starts_with("# ") || line.split(' ').count() == 2,
                "malformed line: {line}"
            );
        }
    }

    /// Label sanitation folds whitespace (which would break the
    /// one-sample-per-line shape) and still escapes quotes/backslashes.
    #[test]
    fn sanitized_labels_contain_no_whitespace() {
        assert_eq!(sanitize_label_value("a b\tc"), "a_b_c");
        assert_eq!(sanitize_label_value("a\"b"), "a\\\"b");
        assert_eq!(sanitize_label_value("v0.1.0"), "v0.1.0");
    }

    #[test]
    fn label_values_are_escaped() {
        assert_eq!(escape_label_value("0.99"), "0.99");
        assert_eq!(escape_label_value("a\"b"), "a\\\"b");
        assert_eq!(escape_label_value("a\\b"), "a\\\\b");
        assert_eq!(escape_label_value("a\nb"), "a\\nb");
        // The rendered quantile labels parse as quoted strings.
        let m = Metrics::default();
        m.observe_latency(Duration::from_micros(10));
        let text = render_prometheus(&m.snapshot());
        assert!(text.contains("{quantile=\"0.5\"}"), "{text}");
        assert!(text.contains("{quantile=\"0.99\"}"), "{text}");
    }

    /// Counter monotonicity across the exposition boundary: registry
    /// increments between two renders can only increase the exported
    /// `_total` values (8-thread hammering of the registry itself lives
    /// in `dblayout_obs::counters`).
    #[test]
    fn rendered_work_counters_are_monotonic() {
        use dblayout_obs::counters::Counter;
        let m = Metrics::default();
        let before = m.snapshot();
        counters::add(Counter::ServerCacheHits, 3);
        let after = m.snapshot();
        for ((name, b), (_, a)) in before.work.pairs().into_iter().zip(after.work.pairs()) {
            assert!(a >= b, "{name} went backwards: {b} -> {a}");
        }
        assert!(
            after.work.get(Counter::ServerCacheHits)
                >= before.work.get(Counter::ServerCacheHits) + 3
        );
    }
}
