#![warn(missing_docs)]

//! `dblayout-server` — the layout advisor as a long-lived what-if service.
//!
//! The offline [`Advisor`](dblayout_core::Advisor) re-parses, re-plans, and
//! re-analyzes the whole workload on every invocation. Interactive what-if
//! tuning (paper §3: the advisor as a DBA's exploration tool) wants the
//! opposite shape: keep the catalog, the optimized plans, the decomposed
//! sub-plan workload, and the Figure-6 access graph **resident**, and answer
//! each "what if the layout were L?" or "what do you recommend now?" against
//! that warm state.
//!
//! This crate provides exactly that as a multi-threaded, std-only TCP
//! service speaking newline-delimited JSON ([`protocol`]):
//!
//! * [`engine`] — the transport-independent dispatcher over the resident
//!   state; drive it in-process (tests, benchmarks) or behind the server;
//! * [`server`] — fixed worker pool over a bounded connection queue, with
//!   per-request deadlines, structured admission-control errors, and
//!   graceful drain on shutdown;
//! * [`session`] — the registry of open sessions (catalog + disks + plans +
//!   incrementally-extended access graph), the statement-set versioning
//!   that keys memoization, and the LRU layout-hash→cost cache;
//! * [`metrics`] — request/error/cache counters, per-stage (queue-wait /
//!   compute / serialize) latency histograms, and gauges, surfaced by the
//!   `stats` op and rendered as Prometheus text by the `metrics` op;
//!   per-request spans land in a bounded ring drained by the `trace` op;
//! * [`client`] — a small blocking client for tests, benches, and the CLI.
//!
//! Determinism is a design constraint, not an accident: responses serialize
//! with fixed key order, the incremental access graph accumulates in
//! arrival order (bit-identical to a batch rebuild), and TS-GREEDY is
//! deterministic — so N concurrent clients asking the same question get
//! byte-identical answers, equal to what the offline advisor prints.

pub mod client;
pub mod engine;
pub mod metrics;
pub mod protocol;
pub mod server;
pub mod session;

pub use client::Client;

/// Locks a mutex, recovering the inner data when the lock is poisoned.
///
/// A panicking request must not take the server down with it: request
/// execution is wrapped in `catch_unwind` (see [`server`]), so a lock held
/// across such a panic ends up poisoned even though the shared state is
/// still usable (request handlers mutate state only after validation, and
/// [`Session::add_statements`](session::Session::add_statements) stages its
/// updates before applying them). Recover with `into_inner` instead of
/// panicking every later thread that touches the lock.
pub(crate) fn lock_unpoisoned<T>(mutex: &std::sync::Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}
pub use engine::{Engine, RuntimeInfo, DEFAULT_TRACE_CAPACITY};
pub use metrics::{
    render_prometheus, Gauges, Histogram, HistogramSnapshot, Metrics, MetricsSnapshot,
};
pub use protocol::{
    parse_request, recommendation_result, resolve_disks, ApiError, LayoutSpec, Request,
};
pub use server::{Server, ServerConfig, ServerHandle};
pub use session::{layout_hash, CostCache, Session, SessionRegistry};
