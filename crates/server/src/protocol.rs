//! The wire protocol: newline-delimited JSON requests and responses.
//!
//! One request per line; the server answers each with exactly one JSON line.
//! Every response is either `{"ok":true,"result":{...}}` or
//! `{"ok":false,"error":{"code":"...","message":"..."}}`. Keys are emitted
//! in a fixed order and the serializer is deterministic, so two servers (or
//! a server and the offline [`Advisor`](dblayout_core::Advisor)) producing
//! the same result produce **byte-identical** lines — the property the
//! loopback integration tests assert.
//!
//! Requests are dispatched on the `op` field:
//!
//! | op                   | fields                                           |
//! |----------------------|--------------------------------------------------|
//! | `open_session`       | `catalog` (spec), `disks`? (spec, default paper),|
//! |                      | `threads`? (search workers, default 1, max 512), |
//! |                      | `decay`? (graph aging factor in (0, 1], default  |
//! |                      | 1.0 = no aging)                                  |
//! | `add_statements`     | `session`, `sql` (workload-file syntax)          |
//! | `whatif_cost`        | `session`, `layout` (`"full_striping"` or an     |
//! |                      | objects×disks fraction matrix), `no_cache`?      |
//! | `recommend`          | `session`, `k`? (greedy step width, default 1)   |
//! | `drift`              | `session`, `top_k`?, `distance_threshold`?,      |
//! |                      | `churn_threshold`? — live vs advised graph       |
//! | `recommend_budgeted` | `session`, `k`?, `budget_mb`? (absent =          |
//! |                      | unbounded), `min_improvement_pct`? (default 0)   |
//! | `plan_migration`     | `session`, `target`? (fraction matrix; default   |
//! |                      | the last budgeted recommendation), `apply`?      |
//! | `audit_list`         | `limit`? (most recent N decision summaries;      |
//! |                      | default all retained)                            |
//! | `audit_get`          | `id`, `replay`? (re-derive the decision and      |
//! |                      | report predicted-vs-simulated error)             |
//! | `stats`              | —                                                |
//! | `metrics`            | — (Prometheus text exposition under `text`)      |
//! | `trace`              | — (drains the server's span ring buffer)         |
//! | `profile`            | — (aggregated wall-time per engine phase)        |
//! | `close_session`      | `session`                                        |

use dblayout_catalog::Catalog;
use dblayout_core::advisor::Recommendation;
use dblayout_disksim::DiskSpec;
use serde_json::{Value, ValueExt};

/// A structured protocol-level error (serialized under `"error"`).
#[derive(Debug, Clone, PartialEq)]
pub struct ApiError {
    /// Stable machine-readable code (`bad_request`, `unknown_session`, ...).
    pub code: &'static str,
    /// Human-readable detail.
    pub message: String,
}

impl ApiError {
    /// Shorthand constructor.
    pub fn new(code: &'static str, message: impl Into<String>) -> Self {
        Self {
            code,
            message: message.into(),
        }
    }

    /// A malformed or unparseable request.
    pub fn bad_request(message: impl Into<String>) -> Self {
        Self::new("bad_request", message)
    }
}

/// How a what-if request names the layout to cost.
#[derive(Debug, Clone, PartialEq)]
pub enum LayoutSpec {
    /// The FULL STRIPING baseline over the session's disks.
    FullStriping,
    /// An explicit objects×disks fraction matrix.
    Fractions(Vec<Vec<f64>>),
}

/// A parsed request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Open a session against a named catalog and disk configuration.
    OpenSession {
        /// Catalog spec (`tpch:0.1`, `apb`, ...).
        catalog: String,
        /// Disk spec (`paper` or `uniform:<n>:<cap>:<seek>:<read>`).
        disks: String,
        /// Worker threads for this session's searches (dblayout-par).
        /// Results are byte-identical at any value; this only trades CPU
        /// for latency.
        threads: usize,
        /// Access-graph decay factor in `(0, 1]` (1.0 = no aging).
        decay: f64,
    },
    /// Append weighted statements to a session's resident workload.
    AddStatements {
        /// Target session id.
        session: u64,
        /// Statements in workload-file syntax (`-- weight: w` honored).
        sql: String,
    },
    /// Cost a candidate layout against the session's cached decomposition.
    WhatifCost {
        /// Target session id.
        session: u64,
        /// The layout to evaluate.
        layout: LayoutSpec,
        /// Bypass the cost cache (benchmarking the cold path).
        no_cache: bool,
    },
    /// Run the full TS-GREEDY search over the session's workload.
    Recommend {
        /// Target session id.
        session: u64,
        /// Greedy step width (paper's `k`).
        k: usize,
    },
    /// Compare the live (decayed) access graph against the snapshot the
    /// deployed layout was advised on (DESIGN.md §9).
    Drift {
        /// Target session id.
        session: u64,
        /// Heaviest-edge count for rank churn (default 10).
        top_k: Option<usize>,
        /// Edge-distance threshold in `[0, 1]` (default 0.25).
        distance_threshold: Option<f64>,
        /// Rank-churn threshold in `[0, 1]` (default 0.5).
        churn_threshold: Option<f64>,
    },
    /// Movement-budgeted advising seeded from the deployed layout:
    /// "improve cost, moving at most `budget_mb` megabytes".
    RecommendBudgeted {
        /// Target session id.
        session: u64,
        /// Greedy step width (paper's `k`).
        k: usize,
        /// Relocation budget in whole megabytes; `None` = unbounded.
        budget_mb: Option<u64>,
        /// Improvement (percent vs the deployed layout) the caller
        /// considers worthwhile; stamped into the outcome.
        min_improvement_pct: f64,
    },
    /// Sequence per-object block moves from the deployed layout to a
    /// target, with per-step feasibility and degraded-cost pricing.
    PlanMigration {
        /// Target session id.
        session: u64,
        /// Explicit target fraction matrix; `None` uses the session's last
        /// budgeted recommendation.
        target: Option<Vec<Vec<f64>>>,
        /// When true, a successful plan marks the target as deployed and
        /// re-snapshots the advised graph.
        apply: bool,
    },
    /// Summaries of retained decision records (dblayout-audit).
    AuditList {
        /// Most recent records to return; `None` returns every retained one.
        limit: Option<usize>,
    },
    /// One decision record, optionally replayed for verification.
    AuditGet {
        /// Decision id as assigned by the log.
        id: u64,
        /// When true, also re-derive the decision and report reproduction
        /// fidelity plus predicted-vs-simulated error.
        replay: bool,
    },
    /// Server metrics snapshot.
    Stats,
    /// Server metrics in Prometheus text exposition format.
    Metrics,
    /// Drain the server's bounded trace ring buffer.
    Trace,
    /// Aggregated wall-time attribution per engine phase (dblayout-prof).
    Profile,
    /// Drop a session and everything it holds resident.
    CloseSession {
        /// Target session id.
        session: u64,
    },
}

impl Request {
    /// The wire `op` name of this request (the span/label vocabulary shared
    /// with the trace records the server emits).
    pub fn op_name(&self) -> &'static str {
        match self {
            Request::OpenSession { .. } => "open_session",
            Request::AddStatements { .. } => "add_statements",
            Request::WhatifCost { .. } => "whatif_cost",
            Request::Recommend { .. } => "recommend",
            Request::Drift { .. } => "drift",
            Request::RecommendBudgeted { .. } => "recommend_budgeted",
            Request::PlanMigration { .. } => "plan_migration",
            Request::AuditList { .. } => "audit_list",
            Request::AuditGet { .. } => "audit_get",
            Request::Stats => "stats",
            Request::Metrics => "metrics",
            Request::Trace => "trace",
            Request::Profile => "profile",
            Request::CloseSession { .. } => "close_session",
        }
    }
}

/// Parses one request line.
pub fn parse_request(line: &str) -> Result<Request, ApiError> {
    let value: Value = serde_json::from_str(line)
        .map_err(|e| ApiError::new("parse_error", format!("invalid JSON: {e}")))?;
    if value.as_object().is_none() {
        return Err(ApiError::bad_request("request must be a JSON object"));
    }
    let op = value
        .get("op")
        .and_then(|v| v.as_str())
        .ok_or_else(|| ApiError::bad_request("missing string field `op`"))?;

    let session = |v: &Value| -> Result<u64, ApiError> {
        v.get("session")
            .and_then(|s| s.as_u64())
            .ok_or_else(|| ApiError::bad_request("missing integer field `session`"))
    };

    match op {
        "open_session" => {
            let decay = match value.get("decay") {
                None => 1.0,
                Some(v) => {
                    let d = v.as_f64().ok_or_else(|| {
                        ApiError::bad_request("`decay` must be a number in (0, 1]")
                    })?;
                    if !(d > 0.0 && d <= 1.0) {
                        return Err(ApiError::bad_request(
                            "`decay` must be greater than 0 and at most 1",
                        ));
                    }
                    d
                }
            };
            let threads = match value.get("threads") {
                None => 1,
                Some(v) => {
                    let t = v.as_u64().ok_or_else(|| {
                        ApiError::bad_request("`threads` must be a positive integer")
                    })?;
                    if t == 0 {
                        return Err(ApiError::bad_request("`threads` must be at least 1"));
                    }
                    if t > 512 {
                        return Err(ApiError::bad_request("`threads` must be at most 512"));
                    }
                    t as usize
                }
            };
            Ok(Request::OpenSession {
                catalog: value
                    .get("catalog")
                    .and_then(|v| v.as_str())
                    .ok_or_else(|| ApiError::bad_request("open_session needs string `catalog`"))?
                    .to_string(),
                disks: value
                    .get("disks")
                    .and_then(|v| v.as_str())
                    .unwrap_or("paper")
                    .to_string(),
                threads,
                decay,
            })
        }
        "add_statements" => Ok(Request::AddStatements {
            session: session(&value)?,
            sql: value
                .get("sql")
                .and_then(|v| v.as_str())
                .ok_or_else(|| ApiError::bad_request("add_statements needs string `sql`"))?
                .to_string(),
        }),
        "whatif_cost" => {
            let layout = match value.get("layout") {
                None => LayoutSpec::FullStriping,
                Some(v) if v.as_str() == Some("full_striping") => LayoutSpec::FullStriping,
                Some(v) => LayoutSpec::Fractions(fraction_matrix(
                    v,
                    "`layout` must be \"full_striping\" or an array of per-object fraction rows",
                )?),
            };
            Ok(Request::WhatifCost {
                session: session(&value)?,
                layout,
                no_cache: value
                    .get("no_cache")
                    .and_then(|v| v.as_bool())
                    .unwrap_or(false),
            })
        }
        "recommend" => {
            let k = match value.get("k") {
                None => 1,
                Some(v) => {
                    let k = v
                        .as_u64()
                        .ok_or_else(|| ApiError::bad_request("`k` must be a positive integer"))?;
                    if k == 0 {
                        return Err(ApiError::bad_request("`k` must be at least 1"));
                    }
                    k as usize
                }
            };
            Ok(Request::Recommend {
                session: session(&value)?,
                k,
            })
        }
        "drift" => {
            let opt_usize = |field: &str| -> Result<Option<usize>, ApiError> {
                match value.get(field) {
                    None => Ok(None),
                    Some(v) => v.as_u64().map(|u| Some(u as usize)).ok_or_else(|| {
                        ApiError::bad_request(format!("`{field}` must be a non-negative integer"))
                    }),
                }
            };
            let opt_unit = |field: &str| -> Result<Option<f64>, ApiError> {
                match value.get(field) {
                    None => Ok(None),
                    Some(v) => match v.as_f64() {
                        Some(x) if (0.0..=1.0).contains(&x) => Ok(Some(x)),
                        _ => Err(ApiError::bad_request(format!(
                            "`{field}` must be a number in [0, 1]"
                        ))),
                    },
                }
            };
            Ok(Request::Drift {
                session: session(&value)?,
                top_k: opt_usize("top_k")?,
                distance_threshold: opt_unit("distance_threshold")?,
                churn_threshold: opt_unit("churn_threshold")?,
            })
        }
        "recommend_budgeted" => {
            let k = match value.get("k") {
                None => 1,
                Some(v) => {
                    let k = v
                        .as_u64()
                        .ok_or_else(|| ApiError::bad_request("`k` must be a positive integer"))?;
                    if k == 0 {
                        return Err(ApiError::bad_request("`k` must be at least 1"));
                    }
                    k as usize
                }
            };
            let budget_mb = match value.get("budget_mb") {
                None => None,
                Some(v) => Some(v.as_u64().ok_or_else(|| {
                    ApiError::bad_request("`budget_mb` must be a non-negative integer")
                })?),
            };
            let min_improvement_pct = match value.get("min_improvement_pct") {
                None => 0.0,
                Some(v) => match v.as_f64() {
                    Some(x) if x.is_finite() && x >= 0.0 => x,
                    _ => {
                        return Err(ApiError::bad_request(
                            "`min_improvement_pct` must be a finite non-negative number",
                        ))
                    }
                },
            };
            Ok(Request::RecommendBudgeted {
                session: session(&value)?,
                k,
                budget_mb,
                min_improvement_pct,
            })
        }
        "plan_migration" => {
            let target = match value.get("target") {
                None => None,
                Some(v) => Some(fraction_matrix(
                    v,
                    "`target` must be an array of per-object fraction rows",
                )?),
            };
            Ok(Request::PlanMigration {
                session: session(&value)?,
                target,
                apply: value
                    .get("apply")
                    .and_then(|v| v.as_bool())
                    .unwrap_or(false),
            })
        }
        "audit_list" => {
            let limit = match value.get("limit") {
                None => None,
                Some(v) => Some(v.as_u64().ok_or_else(|| {
                    ApiError::bad_request("`limit` must be a non-negative integer")
                })? as usize),
            };
            Ok(Request::AuditList { limit })
        }
        "audit_get" => Ok(Request::AuditGet {
            id: value
                .get("id")
                .and_then(|v| v.as_u64())
                .ok_or_else(|| ApiError::bad_request("audit_get needs integer `id`"))?,
            replay: value
                .get("replay")
                .and_then(|v| v.as_bool())
                .unwrap_or(false),
        }),
        "stats" => Ok(Request::Stats),
        "metrics" => Ok(Request::Metrics),
        "trace" => Ok(Request::Trace),
        "profile" => Ok(Request::Profile),
        "close_session" => Ok(Request::CloseSession {
            session: session(&value)?,
        }),
        other => Err(ApiError::bad_request(format!("unknown op `{other}`"))),
    }
}

/// Parses an objects×disks fraction matrix from a JSON array-of-arrays.
fn fraction_matrix(v: &Value, shape_msg: &str) -> Result<Vec<Vec<f64>>, ApiError> {
    let rows = v
        .as_array()
        .ok_or_else(|| ApiError::bad_request(shape_msg.to_string()))?;
    let mut fractions = Vec::with_capacity(rows.len());
    for row in rows {
        let cols = row
            .as_array()
            .ok_or_else(|| ApiError::bad_request("each layout row must be an array of numbers"))?;
        let mut out = Vec::with_capacity(cols.len());
        for c in cols {
            out.push(
                c.as_f64()
                    .ok_or_else(|| ApiError::bad_request("layout fractions must be numbers"))?,
            );
        }
        fractions.push(out);
    }
    Ok(fractions)
}

/// Builds a JSON object value with keys in the given order.
pub fn obj(pairs: Vec<(&str, Value)>) -> Value {
    Value::Map(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

/// Serializes a success response line (no trailing newline).
pub fn ok_line(result: Value) -> String {
    let response = obj(vec![("ok", Value::Bool(true)), ("result", result)]);
    serde_json::to_string(&response).unwrap_or_else(|_| fallback_error_line())
}

/// Serializes an error response line (no trailing newline).
pub fn err_line(error: &ApiError) -> String {
    let response = obj(vec![
        ("ok", Value::Bool(false)),
        (
            "error",
            obj(vec![
                ("code", Value::Str(error.code.to_string())),
                ("message", Value::Str(error.message.clone())),
            ]),
        ),
    ]);
    serde_json::to_string(&response).unwrap_or_else(|_| fallback_error_line())
}

/// A hand-assembled error line for the (never observed) case where the
/// serializer itself fails — the client still gets a well-formed response
/// instead of a dropped connection.
fn fallback_error_line() -> String {
    "{\"ok\":false,\"error\":{\"code\":\"internal\",\"message\":\"response serialization failed\"}}"
        .to_string()
}

/// The `result` object of a `recommend` response. Exported so offline
/// clients of [`dblayout_core::Advisor`] can serialize their own
/// recommendation through the identical code path and compare bytes.
pub fn recommendation_result(catalog: &Catalog, disks: &[DiskSpec], rec: &Recommendation) -> Value {
    let objects: Vec<Value> = catalog
        .objects()
        .iter()
        .map(|meta| {
            let idx = meta.id.index();
            obj(vec![
                ("name", Value::Str(meta.name.clone())),
                (
                    "disks",
                    Value::Seq(
                        rec.layout
                            .disks_of(idx)
                            .iter()
                            .map(|&j| {
                                Value::Str(
                                    disks
                                        .get(j)
                                        .map_or_else(|| format!("disk{j}"), |d| d.name.clone()),
                                )
                            })
                            .collect(),
                    ),
                ),
                (
                    "fractions",
                    Value::Seq(
                        rec.layout
                            .fractions_of(idx)
                            .iter()
                            .map(|&f| Value::F64(f))
                            .collect(),
                    ),
                ),
            ])
        })
        .collect();
    obj(vec![
        (
            "estimated_improvement_pct",
            Value::F64(rec.estimated_improvement_pct),
        ),
        (
            "full_striping_cost_ms",
            Value::F64(rec.full_striping_cost_ms),
        ),
        ("recommended_cost_ms", Value::F64(rec.recommended_cost_ms)),
        ("iterations", Value::U64(rec.search.iterations as u64)),
        (
            "cost_evaluations",
            Value::U64(rec.search.cost_evaluations as u64),
        ),
        ("objects", Value::Seq(objects)),
    ])
}

/// Resolves a disk spec string: `paper` (the paper's 8-drive array) or
/// `uniform:<n>:<capacity_blocks>:<seek_ms>:<read_mb_s>`.
pub fn resolve_disks(spec: &str) -> Result<Vec<DiskSpec>, ApiError> {
    if spec == "paper" {
        return Ok(dblayout_disksim::paper_disks());
    }
    if let Some(rest) = spec.strip_prefix("uniform:") {
        let parts: Vec<&str> = rest.split(':').collect();
        let [n_part, cap_part, seek_part, read_part] = parts.as_slice() else {
            return Err(ApiError::bad_request(
                "uniform disks need `uniform:<n>:<capacity_blocks>:<seek_ms>:<read_mb_s>`",
            ));
        };
        let n: usize = n_part
            .parse()
            .map_err(|e| ApiError::bad_request(format!("bad disk count: {e}")))?;
        let cap: u64 = cap_part
            .parse()
            .map_err(|e| ApiError::bad_request(format!("bad capacity: {e}")))?;
        let seek: f64 = seek_part
            .parse()
            .map_err(|e| ApiError::bad_request(format!("bad seek: {e}")))?;
        let read: f64 = read_part
            .parse()
            .map_err(|e| ApiError::bad_request(format!("bad read rate: {e}")))?;
        if n == 0 {
            return Err(ApiError::bad_request("disk count must be at least 1"));
        }
        if cap == 0 {
            return Err(ApiError::bad_request("capacity must be at least 1 block"));
        }
        // Zero, negative, or non-finite rates would produce degenerate cost
        // weights downstream (and all-zero read rates panic layout placement).
        if !(seek.is_finite() && seek > 0.0) {
            return Err(ApiError::bad_request(
                "seek time must be a finite positive number of milliseconds",
            ));
        }
        if !(read.is_finite() && read > 0.0) {
            return Err(ApiError::bad_request(
                "read rate must be a finite positive number of MB/s",
            ));
        }
        return Ok(dblayout_disksim::uniform_disks(n, cap, seek, read));
    }
    Err(ApiError::bad_request(format!(
        "unknown disk spec `{spec}` (expected `paper` or `uniform:<n>:<cap>:<seek>:<read>`)"
    )))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_every_op() {
        assert_eq!(
            parse_request(r#"{"op":"open_session","catalog":"tpch:0.1"}"#).unwrap(),
            Request::OpenSession {
                catalog: "tpch:0.1".into(),
                disks: "paper".into(),
                threads: 1,
                decay: 1.0
            }
        );
        assert_eq!(
            parse_request(r#"{"op":"open_session","catalog":"apb","threads":4,"decay":0.75}"#)
                .unwrap(),
            Request::OpenSession {
                catalog: "apb".into(),
                disks: "paper".into(),
                threads: 4,
                decay: 0.75
            }
        );
        assert_eq!(
            parse_request(r#"{"op":"add_statements","session":3,"sql":"SELECT 1;"}"#).unwrap(),
            Request::AddStatements {
                session: 3,
                sql: "SELECT 1;".into()
            }
        );
        assert_eq!(
            parse_request(r#"{"op":"whatif_cost","session":1,"layout":"full_striping"}"#).unwrap(),
            Request::WhatifCost {
                session: 1,
                layout: LayoutSpec::FullStriping,
                no_cache: false
            }
        );
        assert_eq!(
            parse_request(r#"{"op":"whatif_cost","session":1,"layout":[[0.5,0.5]]}"#).unwrap(),
            Request::WhatifCost {
                session: 1,
                layout: LayoutSpec::Fractions(vec![vec![0.5, 0.5]]),
                no_cache: false
            }
        );
        assert_eq!(
            parse_request(r#"{"op":"recommend","session":2,"k":2}"#).unwrap(),
            Request::Recommend { session: 2, k: 2 }
        );
        assert_eq!(
            parse_request(r#"{"op":"drift","session":1}"#).unwrap(),
            Request::Drift {
                session: 1,
                top_k: None,
                distance_threshold: None,
                churn_threshold: None
            }
        );
        assert_eq!(
            parse_request(
                r#"{"op":"drift","session":1,"top_k":5,"distance_threshold":0.1,"churn_threshold":0.9}"#
            )
            .unwrap(),
            Request::Drift {
                session: 1,
                top_k: Some(5),
                distance_threshold: Some(0.1),
                churn_threshold: Some(0.9)
            }
        );
        assert_eq!(
            parse_request(r#"{"op":"recommend_budgeted","session":2}"#).unwrap(),
            Request::RecommendBudgeted {
                session: 2,
                k: 1,
                budget_mb: None,
                min_improvement_pct: 0.0
            }
        );
        assert_eq!(
            parse_request(
                r#"{"op":"recommend_budgeted","session":2,"k":2,"budget_mb":64,"min_improvement_pct":5}"#
            )
            .unwrap(),
            Request::RecommendBudgeted {
                session: 2,
                k: 2,
                budget_mb: Some(64),
                min_improvement_pct: 5.0
            }
        );
        assert_eq!(
            parse_request(r#"{"op":"plan_migration","session":3}"#).unwrap(),
            Request::PlanMigration {
                session: 3,
                target: None,
                apply: false
            }
        );
        assert_eq!(
            parse_request(
                r#"{"op":"plan_migration","session":3,"target":[[1.0,0.0]],"apply":true}"#
            )
            .unwrap(),
            Request::PlanMigration {
                session: 3,
                target: Some(vec![vec![1.0, 0.0]]),
                apply: true
            }
        );
        assert_eq!(
            parse_request(r#"{"op":"audit_list"}"#).unwrap(),
            Request::AuditList { limit: None }
        );
        assert_eq!(
            parse_request(r#"{"op":"audit_list","limit":5}"#).unwrap(),
            Request::AuditList { limit: Some(5) }
        );
        assert_eq!(
            parse_request(r#"{"op":"audit_get","id":7}"#).unwrap(),
            Request::AuditGet {
                id: 7,
                replay: false
            }
        );
        assert_eq!(
            parse_request(r#"{"op":"audit_get","id":7,"replay":true}"#).unwrap(),
            Request::AuditGet {
                id: 7,
                replay: true
            }
        );
        assert_eq!(parse_request(r#"{"op":"stats"}"#).unwrap(), Request::Stats);
        assert_eq!(
            parse_request(r#"{"op":"metrics"}"#).unwrap(),
            Request::Metrics
        );
        assert_eq!(parse_request(r#"{"op":"trace"}"#).unwrap(), Request::Trace);
        assert_eq!(
            parse_request(r#"{"op":"profile"}"#).unwrap(),
            Request::Profile
        );
        assert_eq!(
            Request::Metrics.op_name(),
            "metrics",
            "op_name mirrors the wire vocabulary"
        );
        assert_eq!(
            parse_request(r#"{"op":"close_session","session":9}"#).unwrap(),
            Request::CloseSession { session: 9 }
        );
    }

    #[test]
    fn malformed_requests_are_structured_errors() {
        assert_eq!(parse_request("{oops").unwrap_err().code, "parse_error");
        assert_eq!(parse_request("42").unwrap_err().code, "bad_request");
        assert_eq!(
            parse_request(r#"{"op":"launch_missiles"}"#)
                .unwrap_err()
                .code,
            "bad_request"
        );
        assert_eq!(
            parse_request(r#"{"op":"recommend"}"#).unwrap_err().code,
            "bad_request"
        );
        assert_eq!(
            parse_request(r#"{"op":"recommend","session":1,"k":0}"#)
                .unwrap_err()
                .code,
            "bad_request"
        );
        // `threads` must be a positive integer within the server's cap.
        for bad in [
            r#"{"op":"open_session","catalog":"apb","threads":0}"#,
            r#"{"op":"open_session","catalog":"apb","threads":513}"#,
            r#"{"op":"open_session","catalog":"apb","threads":"four"}"#,
            r#"{"op":"open_session","catalog":"apb","threads":-2}"#,
        ] {
            assert_eq!(parse_request(bad).unwrap_err().code, "bad_request", "{bad}");
        }
        // Relayout knobs fail closed on out-of-range or mistyped values.
        for bad in [
            r#"{"op":"open_session","catalog":"apb","decay":0}"#,
            r#"{"op":"open_session","catalog":"apb","decay":1.5}"#,
            r#"{"op":"open_session","catalog":"apb","decay":"slow"}"#,
            r#"{"op":"drift","session":1,"distance_threshold":2}"#,
            r#"{"op":"drift","session":1,"churn_threshold":-0.5}"#,
            r#"{"op":"recommend_budgeted","session":1,"k":0}"#,
            r#"{"op":"recommend_budgeted","session":1,"budget_mb":-3}"#,
            r#"{"op":"recommend_budgeted","session":1,"min_improvement_pct":-1}"#,
            r#"{"op":"plan_migration","session":1,"target":"whatever"}"#,
            r#"{"op":"audit_list","limit":"many"}"#,
            r#"{"op":"audit_get"}"#,
            r#"{"op":"audit_get","id":"first"}"#,
        ] {
            assert_eq!(parse_request(bad).unwrap_err().code, "bad_request", "{bad}");
        }
    }

    #[test]
    fn response_lines_are_deterministic() {
        let line = ok_line(obj(vec![("x", Value::U64(1))]));
        assert_eq!(line, r#"{"ok":true,"result":{"x":1}}"#);
        let err = err_line(&ApiError::bad_request("nope"));
        assert_eq!(
            err,
            r#"{"ok":false,"error":{"code":"bad_request","message":"nope"}}"#
        );
    }

    #[test]
    fn disk_specs_resolve() {
        assert_eq!(resolve_disks("paper").unwrap().len(), 8);
        let u = resolve_disks("uniform:4:200000:10:20").unwrap();
        assert_eq!(u.len(), 4);
        assert!(resolve_disks("raid").is_err());
        assert!(resolve_disks("uniform:0:1:1:1").is_err());
        assert!(resolve_disks("uniform:4:1:1").is_err());
    }

    #[test]
    fn degenerate_disk_parameters_are_rejected() {
        // Zero/negative/non-finite rates must be a bad_request, not a panic
        // deep inside layout placement on a later `recommend`.
        for spec in [
            "uniform:4:0:10:20",       // zero capacity
            "uniform:4:100000:0:20",   // zero seek
            "uniform:4:100000:-1:20",  // negative seek
            "uniform:4:100000:nan:20", // NaN seek
            "uniform:4:100000:inf:20", // infinite seek
            "uniform:4:100000:10:0",   // zero read rate
            "uniform:4:100000:10:-5",  // negative read rate
            "uniform:4:100000:10:nan", // NaN read rate
            "uniform:4:100000:10:inf", // infinite read rate
        ] {
            let err = resolve_disks(spec).unwrap_err();
            assert_eq!(err.code, "bad_request", "{spec}");
        }
    }
}
