//! The trace record model: what one line of a trace means.
//!
//! A trace is an ordered sequence of [`Record`]s. Three kinds exist:
//! `span_start` / `span_end` delimit a named region of work (spans nest via
//! `parent`), and `event` attaches a point observation to the innermost
//! enclosing span. Every record carries a collector-wide sequence number
//! (`seq`) and a list of typed key/value [`FieldValue`] pairs.
//!
//! Records serialize to one JSON object per line (JSONL) with a fixed key
//! order, so identical traces produce byte-identical files — the property
//! the `dblayout explain` artifact relies on.

use serde_json::{Value, ValueExt};

/// A typed field value attached to a span or event.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// Unsigned integer (ids, counts, block totals).
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Float (costs, deltas). Non-finite values serialize as strings.
    F64(f64),
    /// Free text (names, reasons).
    Str(String),
    /// Flag.
    Bool(bool),
}

impl From<u64> for FieldValue {
    fn from(v: u64) -> Self {
        FieldValue::U64(v)
    }
}
impl From<usize> for FieldValue {
    fn from(v: usize) -> Self {
        FieldValue::U64(v as u64)
    }
}
impl From<u32> for FieldValue {
    fn from(v: u32) -> Self {
        FieldValue::U64(v as u64)
    }
}
impl From<i64> for FieldValue {
    /// Non-negative values canonicalize to `U64` so construction matches
    /// what [`parse_trace`] produces and round-trips compare equal.
    fn from(v: i64) -> Self {
        match u64::try_from(v) {
            Ok(u) => FieldValue::U64(u),
            Err(_) => FieldValue::I64(v),
        }
    }
}
impl From<f64> for FieldValue {
    fn from(v: f64) -> Self {
        FieldValue::F64(v)
    }
}
impl From<&str> for FieldValue {
    fn from(v: &str) -> Self {
        FieldValue::Str(v.to_string())
    }
}
impl From<String> for FieldValue {
    fn from(v: String) -> Self {
        FieldValue::Str(v)
    }
}
impl From<bool> for FieldValue {
    fn from(v: bool) -> Self {
        FieldValue::Bool(v)
    }
}

/// Shorthand field constructor: `f("cost_ms", 12.5)`.
pub fn f(key: &str, value: impl Into<FieldValue>) -> (String, FieldValue) {
    (key.to_string(), value.into())
}

/// What a record describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecordKind {
    /// A span opened.
    SpanStart,
    /// A span closed.
    SpanEnd,
    /// A point event inside a span.
    Event,
}

impl RecordKind {
    /// Wire name of the kind.
    pub fn as_str(self) -> &'static str {
        match self {
            RecordKind::SpanStart => "span_start",
            RecordKind::SpanEnd => "span_end",
            RecordKind::Event => "event",
        }
    }
}

/// One trace record (one JSONL line).
#[derive(Debug, Clone, PartialEq)]
pub struct Record {
    /// Collector-wide sequence number: unique per record, increasing in
    /// each emitting thread's program order.
    pub seq: u64,
    /// Start, end, or point event.
    pub kind: RecordKind,
    /// The span this record belongs to (its own id for start/end records;
    /// the enclosing span's id for events, `0` when emitted outside any
    /// span).
    pub span: u64,
    /// The enclosing span of a `span_start` (`None` for root spans; absent
    /// for other kinds).
    pub parent: Option<u64>,
    /// Span or event name (dotted taxonomy, e.g. `tsgreedy.candidate`).
    pub name: String,
    /// Typed payload, in emission order.
    pub fields: Vec<(String, FieldValue)>,
    /// Wall-clock span duration in microseconds, present on `span_end`
    /// records only when the collector records timing (off for
    /// deterministic artifacts).
    pub elapsed_us: Option<u64>,
}

impl Record {
    /// Looks up a field by key.
    pub fn field(&self, key: &str) -> Option<&FieldValue> {
        self.fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Field as `u64` (accepting `I64`/`F64` when losslessly convertible).
    pub fn field_u64(&self, key: &str) -> Option<u64> {
        match self.field(key)? {
            FieldValue::U64(v) => Some(*v),
            FieldValue::I64(v) => u64::try_from(*v).ok(),
            _ => None,
        }
    }

    /// Field as `f64` (integers widen).
    pub fn field_f64(&self, key: &str) -> Option<f64> {
        match self.field(key)? {
            FieldValue::F64(v) => Some(*v),
            FieldValue::U64(v) => Some(*v as f64),
            FieldValue::I64(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// Field as `&str`.
    pub fn field_str(&self, key: &str) -> Option<&str> {
        match self.field(key)? {
            FieldValue::Str(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// The record as a JSON value with fixed key order
    /// (`seq`, `kind`, `span`, [`parent`], `name`, [`elapsed_us`],
    /// `fields`).
    pub fn to_json(&self) -> Value {
        let mut pairs: Vec<(String, Value)> = Vec::with_capacity(7);
        pairs.push(("seq".into(), Value::U64(self.seq)));
        pairs.push(("kind".into(), Value::Str(self.kind.as_str().into())));
        pairs.push(("span".into(), Value::U64(self.span)));
        if let Some(parent) = self.parent {
            pairs.push(("parent".into(), Value::U64(parent)));
        }
        pairs.push(("name".into(), Value::Str(self.name.clone())));
        if let Some(us) = self.elapsed_us {
            pairs.push(("elapsed_us".into(), Value::U64(us)));
        }
        let fields: Vec<(String, Value)> = self
            .fields
            .iter()
            .map(|(k, v)| (k.clone(), field_to_json(v)))
            .collect();
        pairs.push(("fields".into(), Value::Map(fields)));
        Value::Map(pairs)
    }

    /// The record as one JSONL line (no trailing newline). Serialization of
    /// the value tree built by [`Record::to_json`] cannot fail; the fallback
    /// line keeps the emit path total anyway.
    pub fn to_jsonl(&self) -> String {
        serde_json::to_string(&self.to_json()).unwrap_or_else(|_| {
            format!("{{\"seq\":{},\"kind\":\"lost\",\"fields\":{{}}}}", self.seq)
        })
    }
}

fn field_to_json(v: &FieldValue) -> Value {
    match v {
        FieldValue::U64(n) => Value::U64(*n),
        FieldValue::I64(n) => Value::I64(*n),
        FieldValue::F64(n) if n.is_finite() => Value::F64(*n),
        // JSON has no NaN/inf; preserve the information as text.
        FieldValue::F64(n) => Value::Str(format!("{n}")),
        FieldValue::Str(s) => Value::Str(s.clone()),
        FieldValue::Bool(b) => Value::Bool(*b),
    }
}

/// A trace-line parse failure.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceParseError {
    /// 1-based line number in the JSONL input.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for TraceParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "trace line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for TraceParseError {}

/// Parses a JSONL trace back into records (inverse of
/// [`Record::to_jsonl`] per line; blank lines are skipped).
pub fn parse_trace(text: &str) -> Result<Vec<Record>, TraceParseError> {
    let mut records = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        records.push(parse_record_line(line).map_err(|message| TraceParseError {
            line: idx + 1,
            message,
        })?);
    }
    Ok(records)
}

/// The outcome of a lenient trace parse: every line that parsed, plus a
/// count of the lines that did not.
#[derive(Debug, Clone, PartialEq)]
pub struct LenientTrace {
    /// Records from every well-formed line, in input order.
    pub records: Vec<Record>,
    /// Malformed or truncated lines skipped (also added to
    /// [`counters::Counter::TraceParseErrors`](crate::counters::Counter)).
    pub skipped: usize,
}

/// Parses a JSONL trace with skip-and-count semantics: malformed or
/// truncated lines (e.g. a trace cut off mid-write) are skipped instead
/// of failing the whole parse, and each skip bumps the
/// `trace_parse_errors` counter so the loss is visible in the Prometheus
/// `metrics` op as `dblayout_trace_parse_errors_total`.
///
/// Use [`parse_trace`] when a malformed line should be a hard error
/// (round-trip tests, artifact verification); use this for operational
/// readers that must make progress on partial data.
pub fn parse_trace_lenient(text: &str) -> LenientTrace {
    let mut records = Vec::new();
    let mut skipped = 0usize;
    for line in text.lines() {
        if line.trim().is_empty() {
            continue;
        }
        match parse_record_line(line) {
            Ok(record) => records.push(record),
            Err(_) => skipped += 1,
        }
    }
    if skipped > 0 {
        crate::counters::add(crate::counters::Counter::TraceParseErrors, skipped as u64);
    }
    LenientTrace { records, skipped }
}

fn parse_record_line(line: &str) -> Result<Record, String> {
    let value: Value = serde_json::from_str(line).map_err(|e| format!("invalid JSON: {e}"))?;
    let kind = match value.get("kind").and_then(|v| v.as_str()) {
        Some("span_start") => RecordKind::SpanStart,
        Some("span_end") => RecordKind::SpanEnd,
        Some("event") => RecordKind::Event,
        Some(other) => return Err(format!("unknown record kind `{other}`")),
        None => return Err("missing string field `kind`".into()),
    };
    let seq = value
        .get("seq")
        .and_then(|v| v.as_u64())
        .ok_or("missing integer field `seq`")?;
    let span = value
        .get("span")
        .and_then(|v| v.as_u64())
        .ok_or("missing integer field `span`")?;
    let parent = value.get("parent").and_then(|v| v.as_u64());
    let name = value
        .get("name")
        .and_then(|v| v.as_str())
        .ok_or("missing string field `name`")?
        .to_string();
    let elapsed_us = value.get("elapsed_us").and_then(|v| v.as_u64());
    let mut fields = Vec::new();
    if let Some(raw) = value.get("fields") {
        let entries = raw.as_object().ok_or("`fields` must be an object")?;
        for (k, v) in entries {
            fields.push((k.clone(), json_to_field(v)?));
        }
    }
    Ok(Record {
        seq,
        kind,
        span,
        parent,
        name,
        fields,
        elapsed_us,
    })
}

fn json_to_field(v: &Value) -> Result<FieldValue, String> {
    match v {
        Value::U64(n) => Ok(FieldValue::U64(*n)),
        // Canonical integer form: non-negative is always U64 (the JSON
        // text is identical either way).
        Value::I64(n) => Ok(match u64::try_from(*n) {
            Ok(u) => FieldValue::U64(u),
            Err(_) => FieldValue::I64(*n),
        }),
        Value::F64(n) => Ok(FieldValue::F64(*n)),
        Value::Str(s) => Ok(FieldValue::Str(s.clone())),
        Value::Bool(b) => Ok(FieldValue::Bool(*b)),
        other => Err(format!("unsupported field value {other:?}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jsonl_round_trips_every_field_type() {
        let record = Record {
            seq: 7,
            kind: RecordKind::Event,
            span: 3,
            parent: None,
            name: "costmodel.subplan".into(),
            fields: vec![
                f("disk", 2u64),
                f("delta", -4i64),
                f("cost_ms", 12.625),
                f("whole_ms", 3.0),
                f("reason", "bottleneck"),
                f("accepted", true),
            ],
            elapsed_us: None,
        };
        let line = record.to_jsonl();
        let parsed = parse_trace(&line).unwrap();
        assert_eq!(parsed, vec![record]);
    }

    #[test]
    fn span_records_round_trip_with_parent_and_elapsed() {
        let start = Record {
            seq: 0,
            kind: RecordKind::SpanStart,
            span: 2,
            parent: Some(1),
            name: "tsgreedy.iteration".into(),
            fields: vec![f("iter", 1u64)],
            elapsed_us: None,
        };
        let end = Record {
            seq: 1,
            kind: RecordKind::SpanEnd,
            span: 2,
            parent: None,
            name: "tsgreedy.iteration".into(),
            fields: Vec::new(),
            elapsed_us: Some(1234),
        };
        let text = format!("{}\n{}\n", start.to_jsonl(), end.to_jsonl());
        let parsed = parse_trace(&text).unwrap();
        assert_eq!(parsed, vec![start, end]);
    }

    #[test]
    fn non_finite_floats_become_strings() {
        let record = Record {
            seq: 0,
            kind: RecordKind::Event,
            span: 0,
            parent: None,
            name: "x".into(),
            fields: vec![f("bad", f64::NAN)],
            elapsed_us: None,
        };
        let parsed = parse_trace(&record.to_jsonl()).unwrap();
        assert_eq!(parsed[0].field_str("bad"), Some("NaN"));
    }

    #[test]
    fn malformed_lines_report_their_line_number() {
        let good = Record {
            seq: 0,
            kind: RecordKind::Event,
            span: 0,
            parent: None,
            name: "ok".into(),
            fields: Vec::new(),
            elapsed_us: None,
        };
        let text = format!("{}\n{{not json\n", good.to_jsonl());
        let err = parse_trace(&text).unwrap_err();
        assert_eq!(err.line, 2);
        let missing = parse_trace(r#"{"kind":"event","span":0,"name":"x"}"#).unwrap_err();
        assert!(missing.message.contains("seq"), "{}", missing.message);
        let bad_kind =
            parse_trace(r#"{"seq":0,"kind":"warp","span":0,"name":"x","fields":{}}"#).unwrap_err();
        assert!(bad_kind.message.contains("warp"));
    }

    #[test]
    fn lenient_parse_skips_and_counts_malformed_lines() {
        use crate::counters::{self, Counter};
        let good = Record {
            seq: 0,
            kind: RecordKind::Event,
            span: 0,
            parent: None,
            name: "ok".into(),
            fields: vec![f("n", 1u64)],
            elapsed_us: None,
        };
        let also_good = Record {
            seq: 1,
            kind: RecordKind::Event,
            span: 0,
            parent: None,
            name: "ok2".into(),
            fields: Vec::new(),
            elapsed_us: None,
        };
        // A trace cut off mid-write: one truncated JSON line, one line of
        // garbage, one structurally valid JSON object missing `seq`, and a
        // blank line (blank lines are not errors).
        let text = format!(
            "{}\n{{\"seq\":5,\"kind\":\"event\",\"sp\nnot json at all\n{}\n\n{{\"kind\":\"event\",\"span\":0,\"name\":\"x\"}}\n",
            good.to_jsonl(),
            also_good.to_jsonl()
        );
        let before = counters::get(Counter::TraceParseErrors);
        let parsed = parse_trace_lenient(&text);
        assert_eq!(parsed.records, vec![good, also_good]);
        assert_eq!(parsed.skipped, 3);
        assert_eq!(counters::get(Counter::TraceParseErrors) - before, 3);
        // The strict parser rejects the same input outright.
        assert!(parse_trace(&text).is_err());
    }

    #[test]
    fn lenient_parse_of_clean_trace_counts_nothing() {
        // (No global-counter equality check here: the malformed-line test
        // above bumps the same process-global counter and tests run in
        // parallel; `skipped == 0` is the per-call guarantee.)
        let record = Record {
            seq: 0,
            kind: RecordKind::SpanStart,
            span: 1,
            parent: None,
            name: "s".into(),
            fields: Vec::new(),
            elapsed_us: None,
        };
        let parsed = parse_trace_lenient(record.to_jsonl().as_str());
        assert_eq!(parsed.skipped, 0);
        assert_eq!(parsed.records.len(), 1);
    }

    #[test]
    fn field_accessors_coerce() {
        let record = Record {
            seq: 0,
            kind: RecordKind::Event,
            span: 0,
            parent: None,
            name: "x".into(),
            fields: vec![f("n", 5u64), f("i", 9i64), f("c", 2.5)],
            elapsed_us: None,
        };
        assert_eq!(record.field_u64("n"), Some(5));
        assert_eq!(record.field_u64("i"), Some(9));
        assert_eq!(record.field_f64("n"), Some(5.0));
        assert_eq!(record.field_f64("c"), Some(2.5));
        assert_eq!(record.field_str("n"), None);
        assert_eq!(record.field("missing"), None);
    }
}
