//! Sinks: where emitted records go.
//!
//! A sink must be cheap, thread-safe, and total — the emit path never
//! panics and never blocks on anything slower than a short mutex hold.
//! Three sinks cover the repo's needs: [`JsonlSink`] streams lines to any
//! writer (the `--trace-out` artifact), [`RingSink`] keeps the newest N
//! records in memory (the server's `trace` request drains it), and the
//! null sink is simply a disabled [`crate::Collector`].

use std::collections::VecDeque;
use std::io::Write;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};

use crate::record::Record;

/// Destination for trace records. Implementations must tolerate concurrent
/// `emit` calls and must not panic.
pub trait Sink: Send + Sync {
    /// Accepts one record. Errors are swallowed (and counted where the
    /// sink can) — tracing must never take down the traced program.
    fn emit(&self, record: Record);
}

/// Recovers a mutex guard even if a previous holder panicked; the guarded
/// state here (a writer or a queue of records) stays usable.
fn lock_unpoisoned<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Streams records as JSON lines to a writer.
pub struct JsonlSink<W: Write + Send> {
    writer: Mutex<W>,
    write_errors: AtomicU64,
}

impl<W: Write + Send> JsonlSink<W> {
    /// Wraps `writer`; each record becomes one `\n`-terminated line.
    pub fn new(writer: W) -> Self {
        JsonlSink {
            writer: Mutex::new(writer),
            write_errors: AtomicU64::new(0),
        }
    }

    /// How many records failed to write (I/O errors are swallowed, not
    /// propagated).
    pub fn write_errors(&self) -> u64 {
        self.write_errors.load(Ordering::Relaxed)
    }

    /// Flushes and returns the inner writer.
    pub fn into_inner(self) -> W {
        let mut writer = self
            .writer
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner);
        let _ = writer.flush();
        writer
    }
}

impl<W: Write + Send> Sink for JsonlSink<W> {
    fn emit(&self, record: Record) {
        let line = record.to_jsonl();
        let mut writer = lock_unpoisoned(&self.writer);
        if writeln!(writer, "{line}").is_err() {
            self.write_errors.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// Bounded in-memory buffer keeping the most recent records; older records
/// are dropped (and counted) once capacity is reached.
pub struct RingSink {
    buf: Mutex<VecDeque<Record>>,
    capacity: usize,
    dropped: AtomicU64,
}

impl RingSink {
    /// A ring holding at most `capacity` records (capacity 0 drops
    /// everything).
    pub fn new(capacity: usize) -> Self {
        RingSink {
            buf: Mutex::new(VecDeque::with_capacity(capacity.min(1024))),
            capacity,
            dropped: AtomicU64::new(0),
        }
    }

    /// Maximum records retained.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Cumulative count of records evicted (or rejected at capacity 0).
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Records currently buffered.
    pub fn len(&self) -> usize {
        lock_unpoisoned(&self.buf).len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Removes and returns all buffered records, oldest first. The dropped
    /// counter is cumulative and survives the drain.
    pub fn drain(&self) -> Vec<Record> {
        lock_unpoisoned(&self.buf).drain(..).collect()
    }

    /// Copies the buffered records without removing them, oldest first.
    pub fn snapshot(&self) -> Vec<Record> {
        lock_unpoisoned(&self.buf).iter().cloned().collect()
    }

    /// Atomically drains the buffer and reads the cumulative dropped
    /// count as **one consistent cut**: both happen under a single buffer
    /// lock acquisition, so concurrent emitters are either entirely
    /// before the cut (their record is returned, their evictions counted)
    /// or entirely after it (their record is retained for the next
    /// `take`). No record can be both returned and retained, and the
    /// dropped count can never run ahead of the drain it is reported
    /// with. This is what the server's `trace` op uses.
    pub fn take(&self) -> (Vec<Record>, u64) {
        let mut buf = lock_unpoisoned(&self.buf);
        let records = buf.drain(..).collect();
        // Still under the lock: evictions are counted while holding it
        // (capacity-0 rings bypass the lock, but those retain nothing).
        let dropped = self.dropped.load(Ordering::Relaxed);
        (records, dropped)
    }
}

impl Sink for RingSink {
    fn emit(&self, record: Record) {
        if self.capacity == 0 {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let mut buf = lock_unpoisoned(&self.buf);
        while buf.len() >= self.capacity {
            buf.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        buf.push_back(record);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{parse_trace, RecordKind};

    fn rec(seq: u64) -> Record {
        Record {
            seq,
            kind: RecordKind::Event,
            span: 0,
            parent: None,
            name: format!("e{seq}"),
            fields: Vec::new(),
            elapsed_us: None,
        }
    }

    #[test]
    fn jsonl_sink_writes_parseable_lines() {
        let sink = JsonlSink::new(Vec::new());
        sink.emit(rec(0));
        sink.emit(rec(1));
        assert_eq!(sink.write_errors(), 0);
        let bytes = sink.into_inner();
        let text = String::from_utf8(bytes).unwrap();
        let records = parse_trace(&text).unwrap();
        assert_eq!(records.len(), 2);
        assert_eq!(records[1].name, "e1");
    }

    struct FailingWriter;
    impl Write for FailingWriter {
        fn write(&mut self, _: &[u8]) -> std::io::Result<usize> {
            Err(std::io::Error::other("nope"))
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn jsonl_sink_counts_write_errors_without_panicking() {
        let sink = JsonlSink::new(FailingWriter);
        sink.emit(rec(0));
        sink.emit(rec(1));
        assert_eq!(sink.write_errors(), 2);
    }

    #[test]
    fn ring_sink_keeps_newest_and_counts_drops() {
        let ring = RingSink::new(3);
        for i in 0..5 {
            ring.emit(rec(i));
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.dropped(), 2);
        let drained = ring.drain();
        let seqs: Vec<u64> = drained.iter().map(|r| r.seq).collect();
        assert_eq!(seqs, vec![2, 3, 4]);
        assert!(ring.is_empty());
        assert_eq!(ring.dropped(), 2, "drain does not reset the counter");
    }

    #[test]
    fn ring_sink_capacity_zero_drops_everything() {
        let ring = RingSink::new(0);
        ring.emit(rec(0));
        assert_eq!(ring.len(), 0);
        assert_eq!(ring.dropped(), 1);
    }

    #[test]
    fn snapshot_leaves_buffer_intact() {
        let ring = RingSink::new(4);
        ring.emit(rec(0));
        ring.emit(rec(1));
        let snap = ring.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(ring.len(), 2);
    }

    #[test]
    fn take_returns_records_and_dropped_in_one_cut() {
        let ring = RingSink::new(2);
        for i in 0..5 {
            ring.emit(rec(i));
        }
        let (records, dropped) = ring.take();
        assert_eq!(records.len(), 2);
        assert_eq!(dropped, 3);
        assert!(ring.is_empty());
        let (records, dropped) = ring.take();
        assert!(records.is_empty());
        assert_eq!(dropped, 3, "dropped is cumulative across takes");
    }

    /// Satellite: concurrent writers vs. a concurrent drainer. Every
    /// emitted record must end up in exactly one place — returned by
    /// exactly one `take`, or still buffered at the end — never both,
    /// never neither (the ring is unbounded here so nothing is evicted).
    #[test]
    fn concurrent_take_never_duplicates_or_loses_records() {
        use std::sync::atomic::AtomicBool;
        use std::sync::Arc;

        const WRITERS: u64 = 4;
        const PER_WRITER: u64 = 2_000;
        let ring = Arc::new(RingSink::new(usize::MAX));
        let done = Arc::new(AtomicBool::new(false));

        let drainer = {
            let ring = ring.clone();
            let done = done.clone();
            std::thread::spawn(move || {
                let mut taken: Vec<Record> = Vec::new();
                while !done.load(Ordering::Acquire) {
                    let (records, dropped) = ring.take();
                    assert_eq!(dropped, 0, "unbounded ring must never evict");
                    taken.extend(records);
                }
                taken
            })
        };
        let writers: Vec<_> = (0..WRITERS)
            .map(|w| {
                let ring = ring.clone();
                std::thread::spawn(move || {
                    for i in 0..PER_WRITER {
                        ring.emit(rec(w * PER_WRITER + i));
                    }
                })
            })
            .collect();
        for h in writers {
            h.join().expect("writer panicked");
        }
        done.store(true, Ordering::Release);
        let mut taken = drainer.join().expect("drainer panicked");
        let (rest, dropped) = ring.take();
        assert_eq!(dropped, 0);
        taken.extend(rest);

        // Conservation + exclusivity: every seq exactly once.
        assert_eq!(taken.len() as u64, WRITERS * PER_WRITER);
        let mut seqs: Vec<u64> = taken.iter().map(|r| r.seq).collect();
        seqs.sort_unstable();
        seqs.dedup();
        assert_eq!(
            seqs.len() as u64,
            WRITERS * PER_WRITER,
            "a record was returned twice or lost"
        );
    }
}
