//! The [`Collector`] handle and its span guard.
//!
//! A `Collector` is the value instrumented code holds. It is a newtype over
//! `Option<Arc<..>>`: a disabled collector is `None`, so the hot-path cost
//! of instrumentation is one pointer-sized branch (`enabled()`), and
//! cloning one is free. Callers guard any non-trivial field construction
//! behind `enabled()`:
//!
//! ```
//! use dblayout_obs::{f, Collector};
//! let collector = Collector::default(); // disabled
//! if collector.enabled() {
//!     collector.event("expensive", vec![f("detail", "never built")]);
//! }
//! ```
//!
//! Spans are RAII guards: [`Collector::span`] emits `span_start` and the
//! returned [`Span`] emits `span_end` when dropped (or explicitly
//! [`Span::end`]ed). Events and child spans hang off the guard, which is
//! how nesting is expressed — there is no thread-local ambient span, so
//! the structure is explicit and deterministic.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use crate::record::{FieldValue, Record, RecordKind};
use crate::sink::Sink;

struct CollectorInner {
    sink: Arc<dyn Sink>,
    /// Next record sequence number. Unique per record; each thread's own
    /// records carry increasing values.
    seq: AtomicU64,
    /// Next span id. Span 0 means "outside any span", so ids start at 1.
    next_span: AtomicU64,
    /// When false, `span_end` records omit `elapsed_us` so a
    /// single-threaded trace is byte-for-byte reproducible.
    timing: bool,
}

/// Cheap, cloneable handle to a trace sink; `Default` is disabled.
#[derive(Clone, Default)]
pub struct Collector(Option<Arc<CollectorInner>>);

impl std::fmt::Debug for Collector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.0 {
            Some(inner) => f
                .debug_struct("Collector")
                .field("enabled", &true)
                .field("timing", &inner.timing)
                .finish(),
            None => f
                .debug_struct("Collector")
                .field("enabled", &false)
                .finish(),
        }
    }
}

impl Collector {
    /// A collector that records nothing; all operations are no-ops.
    pub fn disabled() -> Self {
        Collector(None)
    }

    /// A collector writing to `sink`, recording span durations.
    pub fn new(sink: Arc<dyn Sink>) -> Self {
        Collector(Some(Arc::new(CollectorInner {
            sink,
            seq: AtomicU64::new(0),
            next_span: AtomicU64::new(1),
            timing: true,
        })))
    }

    /// A collector writing to `sink` with timing off: no `elapsed_us` on
    /// span ends, so identical work yields identical traces. Used by
    /// `dblayout explain`.
    pub fn deterministic(sink: Arc<dyn Sink>) -> Self {
        Collector(Some(Arc::new(CollectorInner {
            sink,
            seq: AtomicU64::new(0),
            next_span: AtomicU64::new(1),
            timing: false,
        })))
    }

    /// Whether records will actually be emitted. Guard expensive field
    /// construction behind this.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Whether this collector records wall-clock/timing-dependent detail
    /// (true for [`Collector::new`], false for
    /// [`Collector::deterministic`] and [`Collector::disabled`]). Guard
    /// run-to-run-variable fields — e.g. per-worker scheduling detail —
    /// behind this so deterministic traces stay byte-identical.
    #[inline]
    pub fn timed(&self) -> bool {
        self.0.as_ref().is_some_and(|inner| inner.timing)
    }

    /// Emits a point event outside any span (span id 0).
    pub fn event(&self, name: &str, fields: Vec<(String, FieldValue)>) {
        self.emit_event(0, name, fields);
    }

    /// Opens a root span. The returned guard emits `span_end` on drop.
    pub fn span(&self, name: &str, fields: Vec<(String, FieldValue)>) -> Span {
        self.open_span(None, name, fields)
    }

    fn open_span(
        &self,
        parent: Option<u64>,
        name: &str,
        fields: Vec<(String, FieldValue)>,
    ) -> Span {
        let Some(inner) = &self.0 else {
            return Span {
                collector: Collector(None),
                id: 0,
                name: String::new(),
                started: None,
                ended: true,
            };
        };
        let id = inner.next_span.fetch_add(1, Ordering::Relaxed);
        let started = inner.timing.then(Instant::now); // dblayout::allow(R6, reason = "span timestamps are observability-only and gated off on deterministic collectors; they never feed layout decisions")
        self.emit(Record {
            seq: 0, // assigned in emit
            kind: RecordKind::SpanStart,
            span: id,
            parent,
            name: name.to_string(),
            fields,
            elapsed_us: None,
        });
        Span {
            collector: self.clone(),
            id,
            name: name.to_string(),
            started,
            ended: false,
        }
    }

    fn emit_event(&self, span: u64, name: &str, fields: Vec<(String, FieldValue)>) {
        if self.0.is_none() {
            return;
        }
        self.emit(Record {
            seq: 0,
            kind: RecordKind::Event,
            span,
            parent: None,
            name: name.to_string(),
            fields,
            elapsed_us: None,
        });
    }

    fn emit(&self, mut record: Record) {
        if let Some(inner) = &self.0 {
            record.seq = inner.seq.fetch_add(1, Ordering::Relaxed);
            inner.sink.emit(record);
        }
    }
}

/// RAII guard for an open span. Dropping it (or calling [`Span::end`])
/// emits the matching `span_end` record.
pub struct Span {
    collector: Collector,
    id: u64,
    name: String,
    started: Option<Instant>,
    ended: bool,
}

impl Span {
    /// This span's id (0 when the collector is disabled).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Whether records emitted through this span reach a sink.
    pub fn enabled(&self) -> bool {
        self.collector.enabled()
    }

    /// Emits a point event inside this span.
    pub fn event(&self, name: &str, fields: Vec<(String, FieldValue)>) {
        self.collector.emit_event(self.id, name, fields);
    }

    /// Opens a nested span whose `parent` is this span.
    pub fn child(&self, name: &str, fields: Vec<(String, FieldValue)>) -> Span {
        if self.collector.enabled() {
            self.collector.open_span(Some(self.id), name, fields)
        } else {
            self.collector.open_span(None, name, fields)
        }
    }

    /// Closes the span now, attaching extra fields to the `span_end`
    /// record (e.g. a result summary).
    pub fn end_with(mut self, fields: Vec<(String, FieldValue)>) {
        self.finish(fields);
    }

    /// Closes the span now.
    pub fn end(mut self) {
        self.finish(Vec::new());
    }

    fn finish(&mut self, fields: Vec<(String, FieldValue)>) {
        if self.ended {
            return;
        }
        self.ended = true;
        let elapsed_us = self
            .started
            .map(|t| u64::try_from(t.elapsed().as_micros()).unwrap_or(u64::MAX));
        self.collector.emit(Record {
            seq: 0,
            kind: RecordKind::SpanEnd,
            span: self.id,
            parent: None,
            name: std::mem::take(&mut self.name),
            fields,
            elapsed_us,
        });
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        self.finish(Vec::new());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{f, RecordKind};
    use crate::sink::RingSink;

    #[test]
    fn disabled_collector_is_inert() {
        let c = Collector::default();
        assert!(!c.enabled());
        c.event("nothing", vec![f("x", 1u64)]);
        let span = c.span("root", Vec::new());
        assert_eq!(span.id(), 0);
        assert!(!span.enabled());
        let child = span.child("inner", Vec::new());
        child.event("still nothing", Vec::new());
        drop(child);
        drop(span);
        // No sink to observe; the assertions above plus "did not panic" are
        // the contract.
        assert_eq!(format!("{c:?}"), "Collector { enabled: false }");
    }

    #[test]
    fn span_lifecycle_emits_start_events_end_in_order() {
        let ring = Arc::new(RingSink::new(64));
        let c = Collector::deterministic(ring.clone());
        {
            let root = c.span("root", vec![f("k", 1u64)]);
            root.event("note", vec![f("v", 2u64)]);
            let child = root.child("inner", Vec::new());
            child.event("deep", Vec::new());
            child.end();
            root.end_with(vec![f("result", "ok")]);
        }
        let records = ring.drain();
        let kinds: Vec<RecordKind> = records.iter().map(|r| r.kind).collect();
        assert_eq!(
            kinds,
            vec![
                RecordKind::SpanStart,
                RecordKind::Event,
                RecordKind::SpanStart,
                RecordKind::Event,
                RecordKind::SpanEnd,
                RecordKind::SpanEnd,
            ]
        );
        let seqs: Vec<u64> = records.iter().map(|r| r.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2, 3, 4, 5]);
        // Nesting: the child span's parent is the root span.
        assert_eq!(records[2].parent, Some(records[0].span));
        assert_eq!(records[3].span, records[2].span);
        // Deterministic collector records no durations.
        assert!(records.iter().all(|r| r.elapsed_us.is_none()));
        // end_with fields landed on the final span_end.
        assert_eq!(records[5].field_str("result"), Some("ok"));
    }

    #[test]
    fn timed_collector_records_elapsed_on_span_end() {
        let ring = Arc::new(RingSink::new(8));
        let c = Collector::new(ring.clone());
        c.span("timed", Vec::new()).end();
        let records = ring.drain();
        assert_eq!(records.len(), 2);
        assert!(records[1].elapsed_us.is_some());
    }

    #[test]
    fn dropping_a_span_ends_it_exactly_once() {
        let ring = Arc::new(RingSink::new(8));
        let c = Collector::deterministic(ring.clone());
        let span = c.span("root", Vec::new());
        drop(span);
        let records = ring.drain();
        assert_eq!(records.len(), 2);
        assert_eq!(records[1].kind, RecordKind::SpanEnd);
    }
}
