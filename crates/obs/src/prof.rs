//! Scoped wall-time phase profiling (`dblayout-prof`).
//!
//! A [`PhaseTimer`] attributes wall-clock time to coarse named phases —
//! the advisor pipeline uses `analyze` / `build-graph` / `search` /
//! `cost`, the server adds `serialize` — and aggregates per phase into a
//! profile table: calls and total microseconds, in first-seen order.
//!
//! Like the [`Collector`](crate::Collector), a timer is a cheap cloneable
//! handle around an optional shared core: `PhaseTimer::default()` is
//! disabled and every operation on it is a no-op costing one branch, so
//! it can live inside `AdvisorConfig` without perturbing untimed runs.
//! Phases nest — each scope accounts its own full wall time
//! independently, so a parent's total *includes* its children's (the
//! table is an attribution profile, not a flat decomposition).
//!
//! Phase totals are wall-clock and therefore **not** deterministic: they
//! never appear in deterministic traces or in the counter fingerprint,
//! only in profile sections and bench history entries.

use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::Instant;

/// Locks a mutex, adopting the data even if a panicking holder poisoned
/// it — profile rows are monotonic aggregates, always safe to read.
fn lock_unpoisoned<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// One aggregated phase row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseRow {
    /// Phase name, as passed to [`PhaseTimer::phase`].
    pub name: String,
    /// Number of completed scopes for this phase.
    pub calls: u64,
    /// Total wall time across those scopes, in microseconds.
    pub total_us: u64,
}

#[derive(Debug, Default)]
struct ProfInner {
    /// Aggregated rows in first-seen order (phases are few; linear scan).
    rows: Mutex<Vec<PhaseRow>>,
}

/// A phase-profiling handle. Cloning shares the aggregate; the default
/// value is disabled and free.
#[derive(Debug, Clone, Default)]
pub struct PhaseTimer(Option<Arc<ProfInner>>);

impl PhaseTimer {
    /// An enabled timer with an empty profile.
    pub fn new() -> Self {
        PhaseTimer(Some(Arc::new(ProfInner::default())))
    }

    /// A disabled timer: every operation is a no-op.
    pub fn disabled() -> Self {
        PhaseTimer(None)
    }

    /// Whether this handle records anything.
    pub fn enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Opens a phase scope. Wall time from now until the returned guard
    /// drops (or [`PhaseGuard::finish`] is called) is added to `name`'s
    /// row. On a disabled timer the guard is inert.
    pub fn phase(&self, name: &'static str) -> PhaseGuard {
        PhaseGuard {
            inner: self.0.clone(),
            name,
            started: Instant::now(), // dblayout::allow(R6, reason = "wall time feeds only profiling rows, which are documented as non-deterministic and excluded from every fingerprint; it never influences search results")
            done: self.0.is_none(),
        }
    }

    /// The aggregated profile, in first-seen order.
    pub fn rows(&self) -> Vec<PhaseRow> {
        match &self.0 {
            Some(inner) => lock_unpoisoned(&inner.rows).clone(),
            None => Vec::new(),
        }
    }

    /// Renders the profile as an aligned text table (empty string when
    /// nothing was recorded).
    pub fn render_table(&self) -> String {
        let rows = self.rows();
        if rows.is_empty() {
            return String::new();
        }
        let name_width = rows
            .iter()
            .map(|r| r.name.len())
            .chain(std::iter::once("phase".len()))
            .max()
            .unwrap_or(5);
        let mut out = format!(
            "{:<name_width$}  {:>7}  {:>12}\n",
            "phase", "calls", "total_ms"
        );
        for r in &rows {
            out.push_str(&format!(
                "{:<name_width$}  {:>7}  {:>12.3}\n",
                r.name,
                r.calls,
                r.total_us as f64 / 1000.0
            ));
        }
        out
    }

    fn record(&self, name: &'static str, elapsed_us: u64) {
        if let Some(inner) = &self.0 {
            let mut rows = lock_unpoisoned(&inner.rows);
            match rows.iter_mut().find(|r| r.name == name) {
                Some(row) => {
                    row.calls += 1;
                    row.total_us += elapsed_us;
                }
                None => rows.push(PhaseRow {
                    name: name.to_string(),
                    calls: 1,
                    total_us: elapsed_us,
                }),
            }
        }
    }
}

/// RAII scope for one phase; records on drop.
#[derive(Debug)]
pub struct PhaseGuard {
    inner: Option<Arc<ProfInner>>,
    name: &'static str,
    started: Instant,
    done: bool,
}

impl PhaseGuard {
    /// Ends the scope now instead of at drop.
    pub fn finish(mut self) {
        self.close();
    }

    fn close(&mut self) {
        if self.done {
            return;
        }
        self.done = true;
        let elapsed = self.started.elapsed().as_micros().min(u64::MAX as u128) as u64;
        PhaseTimer(self.inner.take()).record(self.name, elapsed);
    }
}

impl Drop for PhaseGuard {
    fn drop(&mut self) {
        self.close();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_timer_records_nothing() {
        let t = PhaseTimer::default();
        assert!(!t.enabled());
        {
            let _g = t.phase("search");
        }
        assert!(t.rows().is_empty());
        assert_eq!(t.render_table(), "");
    }

    #[test]
    fn aggregates_calls_in_first_seen_order() {
        let t = PhaseTimer::new();
        {
            let _a = t.phase("analyze");
        }
        {
            let _s = t.phase("search");
        }
        {
            let _a = t.phase("analyze");
        }
        let rows = t.rows();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].name, "analyze");
        assert_eq!(rows[0].calls, 2);
        assert_eq!(rows[1].name, "search");
        assert_eq!(rows[1].calls, 1);
        let table = t.render_table();
        assert!(table.starts_with("phase"), "{table}");
        assert!(table.contains("analyze"), "{table}");
    }

    #[test]
    fn nested_phases_account_independently() {
        let t = PhaseTimer::new();
        {
            let _outer = t.phase("search");
            std::thread::sleep(std::time::Duration::from_millis(2));
            {
                let _inner = t.phase("cost");
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
        }
        let rows = t.rows();
        let total = |n: &str| rows.iter().find(|r| r.name == n).map(|r| r.total_us);
        let outer = total("search").unwrap();
        let inner = total("cost").unwrap();
        assert!(outer >= inner, "parent includes child: {outer} < {inner}");
        assert!(inner >= 1_000, "inner phase slept 2ms, got {inner}us");
    }

    #[test]
    fn clones_share_the_aggregate_and_finish_is_idempotent() {
        let t = PhaseTimer::new();
        let other = t.clone();
        let g = other.phase("serialize");
        g.finish();
        assert_eq!(t.rows().len(), 1);
        assert_eq!(t.rows()[0].calls, 1);
    }
}
