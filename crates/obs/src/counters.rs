//! Always-on, lock-free performance accounting: a fixed registry of
//! monotonic `u64` counters for the workspace's hot-path work units
//! (`dblayout-prof`).
//!
//! Unlike the [`Collector`](crate::Collector) — which is opt-in, branchy,
//! and can drop records under pressure — counters are *always on*: plain
//! relaxed atomic adds with no collector branch, no allocation, and no
//! locks on either the write or the snapshot path. That keeps the
//! disabled-tracing search path inside the 2% overhead budget established
//! in EXPERIMENTS.md while still accounting for every unit of work.
//!
//! The registry is deliberately **fixed**: every counter is a variant of
//! [`Counter`] with a static name, backed by one slot of a static atomic
//! array. There is no runtime registration, so snapshots are a loop of
//! relaxed loads — wait-free, allocation-free, callable from signal-ish
//! contexts like the Prometheus `metrics` op.
//!
//! Counters come in two classes (see DESIGN.md §8):
//!
//! * **deterministic** — counts that depend only on the inputs and the
//!   sequential candidate order (candidates enumerated/scored/adopted,
//!   validity re-checks, delta vs. full re-costs, access-graph node/edge
//!   folds, server cache hits/misses). These are byte-identical at any
//!   thread count and form the regression fingerprint `dblayout benchdiff`
//!   hard-fails on.
//! * **scheduling** — counts that describe *how* the work was distributed
//!   (per-worker chunk items, dead-worker dispatch fallbacks). These vary
//!   with thread count and timing and are compared only loosely.
//!
//! Counters are process-global and monotonic. Code that needs a per-run
//! figure takes a [`snapshot`] before and after and subtracts with
//! [`CounterSnapshot::delta`].

use std::sync::atomic::{AtomicU64, Ordering};

/// Every counter in the registry. The discriminant is the slot index of
/// the backing atomic; `ALL` iterates in declaration order, which is also
/// the exposition order everywhere counters are rendered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Counter {
    /// TS-GREEDY candidate moves enumerated (before validity/constraint
    /// filtering) across all iterations.
    TsgreedyCandidatesEnumerated = 0,
    /// Candidates that survived validity + constraint checks and were
    /// cost-scored.
    TsgreedyCandidatesScored = 1,
    /// Candidates adopted (one per improving iteration).
    TsgreedyCandidatesAdopted = 2,
    /// Definition-2 validity re-checks (one per enumerated candidate,
    /// whether incremental or full-scan).
    TsgreedyValidityChecks = 3,
    /// Incremental (delta) re-costs: `DeltaEvaluator::evaluate_move`.
    CostmodelDeltaRecosts = 4,
    /// Full re-costs: `evaluate_full` plus every from-scratch evaluator
    /// build (initial TS-GREEDY costing, what-if costing, baselines).
    CostmodelFullRecosts = 5,
    /// Access-graph node-weight folds accumulated (one per object touched
    /// per plan).
    GraphNodeUpdates = 6,
    /// Access-graph edge-weight folds accumulated (one per co-access pair
    /// per plan).
    GraphEdgeUpdates = 7,
    /// Server what-if cost-cache hits.
    ServerCacheHits = 8,
    /// Server what-if cost-cache misses.
    ServerCacheMisses = 9,
    /// Items handed to pool workers, summed over per-worker chunks
    /// (scheduling class: varies with thread count).
    ParChunkItems = 10,
    /// Dispatches that fell back to inline scoring because a worker lane
    /// was dead (scheduling class).
    ParPoolFallbacks = 11,
    /// Decayed access-graph epoch advances (`dblayout-relayout`): one per
    /// ingestion batch when decay < 1.0, zero on the bit-identical
    /// decay = 1.0 path.
    RelayoutEpochAdvances = 12,
    /// Drift-detector evaluations (`drift` op / `dblayout drift`).
    RelayoutDriftChecks = 13,
    /// Migration-plan steps emitted by the planner.
    MigrationStepsPlanned = 14,
    /// Blocks relocated across all planned migration steps.
    MigrationBlocksPlanned = 15,
    /// Decision records appended to the audit log (`dblayout-audit`).
    AuditRecordsWritten = 16,
    /// Malformed/truncated JSONL lines skipped by the lenient trace
    /// parser (`parse_trace_lenient`).
    TraceParseErrors = 17,
}

/// Number of registered counters (slots in the backing array).
pub const COUNT: usize = 18;

impl Counter {
    /// Every counter, in declaration (= exposition) order.
    pub const ALL: [Counter; COUNT] = [
        Counter::TsgreedyCandidatesEnumerated,
        Counter::TsgreedyCandidatesScored,
        Counter::TsgreedyCandidatesAdopted,
        Counter::TsgreedyValidityChecks,
        Counter::CostmodelDeltaRecosts,
        Counter::CostmodelFullRecosts,
        Counter::GraphNodeUpdates,
        Counter::GraphEdgeUpdates,
        Counter::ServerCacheHits,
        Counter::ServerCacheMisses,
        Counter::ParChunkItems,
        Counter::ParPoolFallbacks,
        Counter::RelayoutEpochAdvances,
        Counter::RelayoutDriftChecks,
        Counter::MigrationStepsPlanned,
        Counter::MigrationBlocksPlanned,
        Counter::AuditRecordsWritten,
        Counter::TraceParseErrors,
    ];

    /// Static snake_case name. Renderers add their own affixes (the
    /// Prometheus exposition emits `dblayout_<name>_total`).
    pub fn name(self) -> &'static str {
        match self {
            Counter::TsgreedyCandidatesEnumerated => "tsgreedy_candidates_enumerated",
            Counter::TsgreedyCandidatesScored => "tsgreedy_candidates_scored",
            Counter::TsgreedyCandidatesAdopted => "tsgreedy_candidates_adopted",
            Counter::TsgreedyValidityChecks => "tsgreedy_validity_checks",
            Counter::CostmodelDeltaRecosts => "costmodel_delta_recosts",
            Counter::CostmodelFullRecosts => "costmodel_full_recosts",
            Counter::GraphNodeUpdates => "graph_node_updates",
            Counter::GraphEdgeUpdates => "graph_edge_updates",
            Counter::ServerCacheHits => "server_cache_hits",
            Counter::ServerCacheMisses => "server_cache_misses",
            Counter::ParChunkItems => "par_chunk_items",
            Counter::ParPoolFallbacks => "par_pool_fallbacks",
            Counter::RelayoutEpochAdvances => "relayout_epoch_advances",
            Counter::RelayoutDriftChecks => "relayout_drift_checks",
            Counter::MigrationStepsPlanned => "migration_steps_planned",
            Counter::MigrationBlocksPlanned => "migration_blocks_planned",
            Counter::AuditRecordsWritten => "audit_records_written",
            Counter::TraceParseErrors => "trace_parse_errors",
        }
    }

    /// Whether the counter is in the deterministic class: its per-run
    /// delta depends only on the inputs, never on thread count or timing.
    pub fn is_deterministic(self) -> bool {
        !matches!(self, Counter::ParChunkItems | Counter::ParPoolFallbacks)
    }
}

/// The backing slots. `AtomicU64` is not `Copy`, so the array is built
/// from a `const` item (each use re-evaluates the initializer).
#[allow(clippy::declare_interior_mutable_const)]
const ZERO: AtomicU64 = AtomicU64::new(0);
static SLOTS: [AtomicU64; COUNT] = [ZERO; COUNT];

fn slot(counter: Counter) -> &'static AtomicU64 {
    // `Counter`'s discriminants are the slot indices by construction;
    // `.get()` keeps the accessor panic-free even so.
    SLOTS.get(counter as usize).unwrap_or(&SLOTS[0])
}

/// Adds `n` to a counter (relaxed; wait-free).
#[inline]
pub fn add(counter: Counter, n: u64) {
    slot(counter).fetch_add(n, Ordering::Relaxed);
}

/// Adds 1 to a counter (relaxed; wait-free).
#[inline]
pub fn incr(counter: Counter) {
    add(counter, 1);
}

/// Current value of one counter (relaxed load).
#[inline]
pub fn get(counter: Counter) -> u64 {
    slot(counter).load(Ordering::Relaxed)
}

/// Snapshots every counter without locks. Each slot is one relaxed load;
/// the snapshot is not a cross-counter atomic cut, which is fine for
/// monotonic counters (each reading is a valid point on that counter's
/// own timeline).
pub fn snapshot() -> CounterSnapshot {
    let mut values = [0u64; COUNT];
    for (v, c) in values.iter_mut().zip(Counter::ALL) {
        *v = get(c);
    }
    CounterSnapshot { values }
}

/// A point-in-time reading of the whole registry. `Copy` so it can ride
/// inside the server's `MetricsSnapshot` unchanged.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CounterSnapshot {
    values: [u64; COUNT],
}

impl CounterSnapshot {
    /// The snapshotted value of one counter.
    pub fn get(&self, counter: Counter) -> u64 {
        self.values.get(counter as usize).copied().unwrap_or(0)
    }

    /// Per-counter difference `self - earlier` (saturating, so a stale
    /// "earlier" from another epoch can't underflow).
    pub fn delta(&self, earlier: &CounterSnapshot) -> CounterSnapshot {
        let mut values = [0u64; COUNT];
        for ((v, now), then) in values.iter_mut().zip(self.values).zip(earlier.values) {
            *v = now.saturating_sub(then);
        }
        CounterSnapshot { values }
    }

    /// `(name, value)` pairs for every counter, in exposition order.
    pub fn pairs(&self) -> Vec<(&'static str, u64)> {
        Counter::ALL
            .iter()
            .map(|&c| (c.name(), self.get(c)))
            .collect()
    }

    /// `(name, value)` pairs for the deterministic class only — the
    /// thread-count-invariant regression fingerprint.
    pub fn deterministic_pairs(&self) -> Vec<(&'static str, u64)> {
        Counter::ALL
            .iter()
            .filter(|c| c.is_deterministic())
            .map(|&c| (c.name(), self.get(c)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;
    use std::sync::Arc;

    #[test]
    fn names_are_unique_and_prometheus_safe() {
        let names: Vec<&str> = Counter::ALL.iter().map(|c| c.name()).collect();
        for (i, a) in names.iter().enumerate() {
            assert!(
                a.chars()
                    .all(|ch| ch.is_ascii_lowercase() || ch.is_ascii_digit() || ch == '_'),
                "{a} is not a safe metric name"
            );
            assert!(!a.starts_with(|c: char| c.is_ascii_digit()));
            for b in &names[i + 1..] {
                assert_ne!(a, b, "duplicate counter name");
            }
        }
    }

    #[test]
    fn discriminants_match_slots() {
        for (i, c) in Counter::ALL.iter().enumerate() {
            assert_eq!(*c as usize, i, "{c:?} out of declaration order");
        }
        assert_eq!(Counter::ALL.len(), COUNT);
    }

    #[test]
    fn delta_subtracts_and_saturates() {
        let before = snapshot();
        add(Counter::GraphEdgeUpdates, 7);
        let after = snapshot();
        assert_eq!(after.delta(&before).get(Counter::GraphEdgeUpdates), 7);
        // Reversed order saturates to zero instead of wrapping.
        assert_eq!(before.delta(&after).get(Counter::GraphEdgeUpdates), 0);
    }

    #[test]
    fn deterministic_pairs_exclude_scheduling_counters() {
        let det = snapshot().deterministic_pairs();
        assert_eq!(det.len(), COUNT - 2);
        assert!(det.iter().all(|(n, _)| !n.starts_with("par_")));
        assert_eq!(snapshot().pairs().len(), COUNT);
    }

    /// Satellite: counter monotonicity under 8-thread hammering. Eight
    /// writers increment one counter while an observer snapshots in a
    /// loop; every observed reading must be non-decreasing and the final
    /// delta must equal the exact number of increments (no lost updates).
    #[test]
    fn monotonic_under_eight_thread_hammering() {
        const WRITERS: usize = 8;
        const PER_WRITER: u64 = 20_000;
        let before = get(Counter::TsgreedyValidityChecks);
        let done = Arc::new(AtomicBool::new(false));
        let observer = {
            let done = done.clone();
            std::thread::spawn(move || {
                let mut last = get(Counter::TsgreedyValidityChecks);
                let mut readings = 0u64;
                while !done.load(Ordering::Acquire) {
                    let now = get(Counter::TsgreedyValidityChecks);
                    assert!(now >= last, "counter went backwards: {last} -> {now}");
                    last = now;
                    readings += 1;
                }
                readings
            })
        };
        let writers: Vec<_> = (0..WRITERS)
            .map(|_| {
                std::thread::spawn(|| {
                    for _ in 0..PER_WRITER {
                        incr(Counter::TsgreedyValidityChecks);
                    }
                })
            })
            .collect();
        for w in writers {
            w.join().unwrap();
        }
        done.store(true, Ordering::Release);
        let readings = observer.join().unwrap();
        assert!(readings > 0);
        // Other tests in this binary may also bump counters, but nothing
        // else touches TsgreedyValidityChecks, so the delta is exact.
        assert_eq!(
            get(Counter::TsgreedyValidityChecks) - before,
            WRITERS as u64 * PER_WRITER
        );
    }
}
