//! HDR-style log-linear histogram with bounded relative error.
//!
//! The power-of-two bucketing the server started with is cheap but coarse:
//! a p99 of "somewhere in 32..64 ms" carries up to 2× relative error
//! exactly where tail latencies live. This module keeps the lock-free,
//! fixed-memory shape but splits every power-of-two octave into
//! `2^SUB_BITS` linear sub-buckets (à la HdrHistogram), so any reported
//! quantile overstates the true value by at most `2^-SUB_BITS` — 12.5%
//! at the default resolution — while the whole structure stays a flat
//! array of [`AtomicU64`] counters.
//!
//! Layout of the bucket array for `SUB_BITS = 3`:
//!
//! * values `0..8` are exact (one bucket each);
//! * each octave `[2^k, 2^(k+1))` for `k = 3..=62` splits into 8 linear
//!   sub-buckets of width `2^(k-3)`;
//! * values at or above `2^63` clamp into the last bucket, whose bound is
//!   [`MAX_BOUND`] (`2^63 - 1`) — a saturated reading still looks like a
//!   duration, never a `u64::MAX` sentinel.
//!
//! Recording is wait-free (one `fetch_add` plus a `fetch_max` for the
//! exact maximum, all `Relaxed` — these are monitors, not synchronization
//! edges). [`Snapshot`]s are plain data: mergeable across histograms
//! (per-worker recorders fold into one), and quantile extraction walks the
//! counts without touching the live atomics again.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Sub-bucket resolution: each power-of-two octave splits into
/// `2^SUB_BITS` linear sub-buckets, bounding the relative error of any
/// reported quantile by `2^-SUB_BITS` (12.5% at 3 bits).
pub const SUB_BITS: u32 = 3;

/// Linear sub-buckets per octave.
const SUB: usize = 1 << SUB_BITS;

/// Octaves covered log-linearly: exponents `SUB_BITS..=62`.
const OCTAVES: usize = 63 - SUB_BITS as usize;

/// Total bucket count: `SUB` exact small-value buckets plus
/// `OCTAVES * SUB` log-linear ones (488 at 3 sub-bits — ~4 KiB of
/// counters per histogram).
pub const NUM_BUCKETS: usize = SUB + OCTAVES * SUB;

/// Upper bound of the last bucket (`2^63 - 1`): the largest value a
/// quantile can report, and the answer when a rank overshoots racing
/// counts (relaxed-atomic skew between a total and a later scan).
pub const MAX_BOUND: u64 = u64::MAX >> 1;

/// The bucket index holding value `v`.
pub fn bucket_index(v: u64) -> usize {
    if v < SUB as u64 {
        return v as usize;
    }
    let k = 63 - v.leading_zeros() as usize;
    if k >= 63 {
        return NUM_BUCKETS - 1;
    }
    let sub_bits = SUB_BITS as usize;
    // The sub-bucket is the SUB_BITS bits directly below the leading bit.
    let sub = ((v >> (k - sub_bits)) as usize) & (SUB - 1);
    SUB + (k - sub_bits) * SUB + sub
}

/// Inclusive upper bound of bucket `i` — the value quantiles report.
pub fn bucket_bound(i: usize) -> u64 {
    if i < SUB {
        return i as u64;
    }
    let i = i.min(NUM_BUCKETS - 1);
    let sub_bits = SUB_BITS as usize;
    let k = sub_bits + (i - SUB) / SUB;
    let sub = ((i - SUB) % SUB) as u64 + 1;
    (1u64 << k) + (sub << (k - sub_bits)) - 1
}

/// Finds the bucket containing the observation of the given 1-based rank
/// and returns its upper bound. When `rank` exceeds everything the scan
/// sees — which relaxed-atomic skew between a recorded total and a later
/// per-bucket read can produce — the answer is [`MAX_BOUND`], the last
/// finite bucket bound, never a `u64::MAX` sentinel.
pub fn rank_value(counts: &[u64], rank: u64) -> u64 {
    let mut seen = 0u64;
    for (i, &c) in counts.iter().enumerate() {
        seen = seen.saturating_add(c);
        if seen >= rank {
            return bucket_bound(i);
        }
    }
    MAX_BOUND
}

/// A lock-free log-linear histogram of `u64` observations (microseconds,
/// by convention, but the structure is unit-agnostic).
pub struct Histogram {
    buckets: [AtomicU64; NUM_BUCKETS],
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.snapshot();
        f.debug_struct("Histogram")
            .field("count", &s.count)
            .field("sum", &s.sum)
            .field("max", &s.max)
            .finish()
    }
}

impl Histogram {
    /// Records one observation. Wait-free; `Relaxed` ordering throughout
    /// (monitoring, not synchronization).
    pub fn record(&self, v: u64) {
        if let Some(b) = self.buckets.get(bucket_index(v)) {
            b.fetch_add(1, Ordering::Relaxed);
        }
        // Saturating sum: a wrapped total must not masquerade as small.
        let prev = self.sum.fetch_add(v, Ordering::Relaxed);
        if prev.checked_add(v).is_none() {
            self.sum.store(u64::MAX, Ordering::Relaxed);
        }
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Records a duration in microseconds (saturating past `u64` µs).
    pub fn record_duration_us(&self, d: Duration) {
        self.record(u64::try_from(d.as_micros()).unwrap_or(u64::MAX));
    }

    /// Reads a consistent-enough point-in-time copy of the counters.
    /// Concurrent writers may land between bucket reads; the quantile
    /// walk tolerates that (see [`rank_value`]).
    pub fn snapshot(&self) -> Snapshot {
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let count = counts.iter().fold(0u64, |a, &c| a.saturating_add(c));
        Snapshot {
            counts,
            count,
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time reading of one [`Histogram`]: plain mergeable data.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Snapshot {
    counts: Vec<u64>,
    /// Observations recorded (sum of bucket counts at snapshot time).
    pub count: u64,
    /// Saturating sum of all observed values.
    pub sum: u64,
    /// Exact maximum observed value (not bucket-rounded).
    pub max: u64,
}

impl Snapshot {
    /// Folds another snapshot into this one (per-worker recorders into a
    /// run total). Associative and commutative on the counts.
    pub fn merge(&mut self, other: &Snapshot) {
        if self.counts.len() < other.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (mine, theirs) in self.counts.iter_mut().zip(other.counts.iter()) {
            *mine = mine.saturating_add(*theirs);
        }
        self.count = self.count.saturating_add(other.count);
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// The q-quantile as the upper bound of the bucket holding the
    /// rank-`ceil(q * count)` observation: at most `2^-SUB_BITS` above
    /// the true value. Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((self.count as f64 * q).ceil() as u64).max(1);
        rank_value(&self.counts, rank)
    }

    /// Arithmetic mean of the observations (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The raw per-bucket counts (index `i` bounded by
    /// [`bucket_bound`]`(i)`).
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A seed-stable splitmix64 for value sweeps: the tests are property
    /// tests over deterministic pseudo-random inputs, not flaky samples.
    struct Sweep(u64);

    impl Sweep {
        fn next(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// A value whose magnitude spans 0..2^60 with log-uniform-ish
        /// spread (small and huge values both exercised).
        fn value(&mut self) -> u64 {
            let shift = self.next() % 61;
            self.next() >> (63 - shift.min(63)).min(63)
        }
    }

    #[test]
    fn bucket_layout_is_contiguous_and_ordered() {
        for i in 0..NUM_BUCKETS - 1 {
            let top = bucket_bound(i);
            assert_eq!(bucket_index(top), i, "bound of bucket {i} maps back");
            assert_eq!(
                bucket_index(top + 1),
                i + 1,
                "first value past bucket {i}'s bound starts bucket {}",
                i + 1
            );
            assert!(top < bucket_bound(i + 1));
        }
        assert_eq!(bucket_bound(NUM_BUCKETS - 1), MAX_BOUND);
        assert_eq!(bucket_index(MAX_BOUND), NUM_BUCKETS - 1);
        assert_eq!(bucket_index(u64::MAX), NUM_BUCKETS - 1);
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_bound(0), 0);
    }

    /// The headline property: for every representable value below the
    /// clamp, the reported bound overstates it by at most `2^-SUB_BITS`.
    #[test]
    fn relative_error_is_bounded_by_sub_bucket_resolution() {
        let tolerance = 1.0 / (1u64 << SUB_BITS) as f64;
        let mut sweep = Sweep(0xD1CE);
        let mut checked = 0u32;
        for _ in 0..200_000 {
            let v = sweep.value();
            if v == 0 || v > MAX_BOUND {
                continue;
            }
            let bound = bucket_bound(bucket_index(v));
            assert!(bound >= v, "bound {bound} below value {v}");
            let err = (bound - v) as f64 / v as f64;
            assert!(err <= tolerance, "value {v}: bound {bound}, err {err}");
            checked += 1;
        }
        assert!(checked > 100_000, "sweep degenerated: {checked} values");
        // Exact boundaries: powers of two sit at the bottom of an octave.
        for k in SUB_BITS..63 {
            let v = 1u64 << k;
            let bound = bucket_bound(bucket_index(v));
            assert_eq!(bound, v + (1u64 << (k - SUB_BITS)) - 1);
            assert_eq!(bucket_bound(bucket_index(v - 1)), v - 1, "octave top");
        }
    }

    /// Quantiles against exact order statistics on a seeded sweep: the
    /// estimate must sit at or above the true value, within resolution.
    #[test]
    fn quantile_error_is_bounded_against_exact_order_statistics() {
        let tolerance = 1.0 / (1u64 << SUB_BITS) as f64;
        for seed in [1u64, 42, 0xFEED] {
            let mut sweep = Sweep(seed);
            let h = Histogram::default();
            let mut values: Vec<u64> = Vec::new();
            for _ in 0..20_000 {
                let v = (sweep.value() % MAX_BOUND).max(1);
                h.record(v);
                values.push(v);
            }
            values.sort_unstable();
            let s = h.snapshot();
            assert_eq!(s.count, values.len() as u64);
            for q in [0.01, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0] {
                let rank = ((values.len() as f64 * q).ceil() as usize).max(1);
                let exact = values[rank - 1];
                let est = s.quantile(q);
                assert!(est >= exact, "seed {seed} q{q}: est {est} < exact {exact}");
                let err = (est - exact) as f64 / exact as f64;
                assert!(
                    err <= tolerance,
                    "seed {seed} q{q}: est {est}, exact {exact}, err {err}"
                );
            }
            assert_eq!(s.max, *values.last().unwrap_or(&0));
        }
    }

    #[test]
    fn quantiles_are_monotone_in_q() {
        let mut sweep = Sweep(7);
        let h = Histogram::default();
        for _ in 0..5_000 {
            h.record(sweep.value());
        }
        let s = h.snapshot();
        let qs = [0.0, 0.1, 0.5, 0.9, 0.99, 0.999, 1.0];
        for pair in qs.windows(2) {
            assert!(
                s.quantile(pair[0]) <= s.quantile(pair[1]),
                "quantile not monotone at {pair:?}"
            );
        }
    }

    #[test]
    fn merge_is_associative_and_matches_concatenation() {
        let mut sweep = Sweep(99);
        let parts: Vec<Histogram> = (0..3).map(|_| Histogram::default()).collect();
        let whole = Histogram::default();
        for (i, part) in parts.iter().enumerate() {
            for _ in 0..(1000 * (i + 1)) {
                let v = sweep.value();
                part.record(v);
                whole.record(v);
            }
        }
        let [a, b, c]: [Snapshot; 3] = [
            parts[0].snapshot(),
            parts[1].snapshot(),
            parts[2].snapshot(),
        ];
        // (a ⊕ b) ⊕ c
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        // a ⊕ (b ⊕ c)
        let mut right_tail = b.clone();
        right_tail.merge(&c);
        let mut right = a.clone();
        right.merge(&right_tail);
        assert_eq!(left, right, "merge must be associative");
        // ⊕ over parts == one histogram fed the concatenated stream.
        assert_eq!(left, whole.snapshot());
        for q in [0.5, 0.99, 0.999] {
            assert_eq!(left.quantile(q), whole.snapshot().quantile(q));
        }
    }

    #[test]
    fn merge_is_commutative() {
        let a0 = {
            let h = Histogram::default();
            h.record(3);
            h.record(900);
            h.snapshot()
        };
        let b0 = {
            let h = Histogram::default();
            h.record(1_000_000);
            h.snapshot()
        };
        let mut ab = a0.clone();
        ab.merge(&b0);
        let mut ba = b0.clone();
        ba.merge(&a0);
        assert_eq!(ab, ba);
        assert_eq!(ab.count, 3);
        assert_eq!(ab.max, 1_000_000);
    }

    /// Concurrent writers: snapshots taken mid-storm stay internally
    /// consistent (count never decreases, quantiles never cross), and the
    /// final reading is exact.
    #[test]
    fn concurrent_writers_keep_snapshots_monotonic() {
        use std::sync::Arc;
        const WRITERS: u64 = 4;
        const PER_WRITER: u64 = 25_000;
        let h = Arc::new(Histogram::default());
        let workers: Vec<_> = (0..WRITERS)
            .map(|w| {
                let h = Arc::clone(&h);
                std::thread::spawn(move || {
                    let mut sweep = Sweep(w + 1);
                    for _ in 0..PER_WRITER {
                        h.record((sweep.value() % 1_000_000).max(1));
                    }
                })
            })
            .collect();
        let mut last_count = 0u64;
        loop {
            let s = h.snapshot();
            assert!(s.count >= last_count, "count went backwards");
            last_count = s.count;
            assert!(s.quantile(0.5) <= s.quantile(0.99));
            assert!(s.quantile(0.99) <= s.quantile(0.999));
            if s.count >= WRITERS * PER_WRITER {
                break;
            }
            std::thread::yield_now();
        }
        for w in workers {
            w.join().expect("writer thread");
        }
        let s = h.snapshot();
        assert_eq!(s.count, WRITERS * PER_WRITER);
        assert!(s.max >= s.quantile(1.0) / 2, "max is a real observation");
    }

    #[test]
    fn rank_overshoot_returns_last_finite_bound() {
        let counts = [3u64, 2, 0, 1]; // total 6
        assert_eq!(rank_value(&counts, 7), MAX_BOUND);
        assert_ne!(rank_value(&counts, 7), u64::MAX);
        assert_eq!(rank_value(&counts, 1), bucket_bound(0));
        assert_eq!(rank_value(&counts, 4), bucket_bound(1));
        assert_eq!(rank_value(&counts, 6), bucket_bound(3));
        assert_eq!(rank_value(&[], 1), MAX_BOUND);
    }

    #[test]
    fn saturation_and_empty_edges() {
        let h = Histogram::default();
        assert_eq!(h.snapshot().quantile(0.5), 0, "empty reads as zero");
        h.record(u64::MAX);
        let s = h.snapshot();
        assert_eq!(s.quantile(0.5), MAX_BOUND, "clamped, not a sentinel");
        assert_eq!(s.max, u64::MAX, "max keeps the exact value");
        h.record_duration_us(Duration::MAX);
        assert_eq!(h.snapshot().count, 2);
        // Sum saturates rather than wrapping.
        assert_eq!(h.snapshot().sum, u64::MAX);
    }

    #[test]
    fn mean_is_exact_from_the_saturating_sum() {
        let h = Histogram::default();
        for v in [10u64, 20, 30] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.sum, 60);
        assert!((s.mean() - 20.0).abs() < 1e-12);
    }
}
