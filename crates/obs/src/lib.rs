//! # dblayout-obs — structured tracing for the layout advisor
//!
//! A std-only tracing subsystem: hierarchical [`Span`]s with monotonic
//! ids, typed key/value events ([`FieldValue`]), and thread-safe sinks —
//! a JSONL writer ([`JsonlSink`]), a bounded in-memory ring
//! ([`RingSink`]), and null (a disabled [`Collector`]).
//!
//! Design constraints, in priority order:
//!
//! 1. **Zero-cost when disabled.** A `Collector` is `Option`-cheap: the
//!    hot path pays one `is_some()` branch, and callers guard field
//!    construction behind [`Collector::enabled`]. Benchmarks hold the
//!    disabled advisor path within 2% of the uninstrumented baseline.
//! 2. **Total emit paths.** Nothing in this crate panics or propagates
//!    I/O errors into traced code; lint rule R1 covers `crates/obs/src`.
//! 3. **Reproducible artifacts.** [`Collector::deterministic`] omits
//!    wall-clock durations, so a single-threaded trace of deterministic
//!    work (TS-GREEDY is deterministic) is byte-identical across runs —
//!    the property `dblayout explain` artifacts rely on.
//!
//! ## Record model
//!
//! A trace is a sequence of [`Record`]s, one JSON object per line:
//!
//! ```text
//! {"seq":0,"kind":"span_start","span":1,"name":"tsgreedy.search","fields":{"groups":9}}
//! {"seq":1,"kind":"event","span":1,"name":"tsgreedy.adopt","fields":{"iter":1,"cost":81.25}}
//! {"seq":2,"kind":"span_end","span":1,"name":"tsgreedy.search","fields":{}}
//! ```
//!
//! `seq` is unique per collector and increases in each thread's program
//! order; sort by it to recover a single logical timeline. `span` ties
//! events to their innermost enclosing span; `parent` (on `span_start`)
//! encodes nesting. [`parse_trace`] inverts the serialization exactly.
//!
//! ## Performance accounting (`dblayout-prof`)
//!
//! Two always-available companions to the opt-in collector:
//!
//! * [`counters`] — a fixed, lock-free registry of monotonic work
//!   counters (relaxed atomics, no collector branch), cheap enough for
//!   the disabled-tracing search path's 2% overhead budget. The
//!   deterministic subset is thread-count-invariant and serves as the
//!   regression fingerprint for `dblayout benchdiff`.
//! * [`prof`] — scoped wall-clock phase attribution
//!   ([`prof::PhaseTimer`]): analyze / build-graph / search / cost /
//!   serialize totals for explain output, the server `profile` op, and
//!   bench history entries.
//! * [`hist`] — an HDR-style log-linear latency histogram (lock-free
//!   atomic counts, ≤12.5% relative error per bucket, mergeable
//!   snapshots) backing both the server's stage/latency metrics and the
//!   `dblayout-loadgen` client-side recorders.
//!
//! All of them live under lint rule R1's no-panic zone like the rest of
//! this crate.

pub mod counters;
pub mod hist;
pub mod prof;

mod collector;
mod record;
mod sink;

pub use collector::{Collector, Span};
pub use record::{
    f, parse_trace, parse_trace_lenient, FieldValue, LenientTrace, Record, RecordKind,
    TraceParseError,
};
pub use sink::{JsonlSink, RingSink, Sink};

#[cfg(test)]
mod concurrency_tests {
    use super::*;
    use std::collections::{HashMap, HashSet};
    use std::sync::Arc;

    /// Under concurrent emitters the collector must preserve: unique
    /// sequence numbers, unique span ids, and — per span — start before
    /// every event before end (spans here are used by single threads, as
    /// in the server's per-request spans).
    #[test]
    fn span_invariants_hold_under_concurrent_emitters() {
        const THREADS: usize = 8;
        const SPANS_PER_THREAD: usize = 25;
        let ring = Arc::new(RingSink::new(usize::MAX));
        let collector = Collector::new(ring.clone());
        let mut handles = Vec::new();
        for t in 0..THREADS {
            let c = collector.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..SPANS_PER_THREAD {
                    let span = c.span("work", vec![f("thread", t), f("i", i)]);
                    span.event("step", vec![f("phase", 0u64)]);
                    let child = span.child("inner", Vec::new());
                    child.event("deep", Vec::new());
                    child.end();
                    span.event("step", vec![f("phase", 1u64)]);
                    span.end();
                }
            }));
        }
        for h in handles {
            h.join().expect("emitter thread panicked");
        }

        let mut records = ring.drain();
        // Per iteration: root start/end + child start/end + 3 events = 7.
        let expected = THREADS * SPANS_PER_THREAD * 7;
        assert_eq!(records.len(), expected);

        // seq is a permutation of 0..n.
        let seqs: HashSet<u64> = records.iter().map(|r| r.seq).collect();
        assert_eq!(seqs.len(), records.len());
        assert_eq!(*seqs.iter().max().unwrap(), records.len() as u64 - 1);

        // Sorting by seq yields, for every span: exactly one start, then
        // its events, then exactly one end; children start after their
        // parent starts.
        records.sort_by_key(|r| r.seq);
        let mut open: HashMap<u64, u64> = HashMap::new(); // span -> start seq
        let mut closed: HashSet<u64> = HashSet::new();
        let mut parent_of: HashMap<u64, u64> = HashMap::new();
        for r in &records {
            match r.kind {
                RecordKind::SpanStart => {
                    assert!(!open.contains_key(&r.span) && !closed.contains(&r.span));
                    open.insert(r.span, r.seq);
                    if let Some(p) = r.parent {
                        assert!(open.contains_key(&p), "child started before parent");
                        parent_of.insert(r.span, p);
                    }
                }
                RecordKind::Event => {
                    assert!(open.contains_key(&r.span), "event outside open span");
                }
                RecordKind::SpanEnd => {
                    assert!(open.remove(&r.span).is_some(), "end without start");
                    assert!(closed.insert(r.span));
                }
            }
        }
        assert!(open.is_empty(), "unclosed spans: {open:?}");
        assert_eq!(closed.len(), THREADS * SPANS_PER_THREAD * 2);
        // Every child's parent was a distinct span.
        for (child, parent) in parent_of {
            assert_ne!(child, parent);
        }
    }

    /// Full pipeline: concurrent emit into a JSONL sink, parse it back,
    /// and check the parse sees every record.
    #[test]
    fn concurrent_jsonl_round_trip() {
        let sink = Arc::new(JsonlSink::new(Vec::new()));
        let collector = Collector::new(sink.clone());
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let c = collector.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..50u64 {
                    c.event("tick", vec![f("thread", t), f("i", i)]);
                }
            }));
        }
        for h in handles {
            h.join().expect("emitter thread panicked");
        }
        drop(collector);
        let sink = Arc::try_unwrap(sink).ok().expect("sink still shared");
        let text = String::from_utf8(sink.into_inner()).unwrap();
        let records = parse_trace(&text).unwrap();
        assert_eq!(records.len(), 200);
        let seqs: HashSet<u64> = records.iter().map(|r| r.seq).collect();
        assert_eq!(seqs.len(), 200);
    }
}
