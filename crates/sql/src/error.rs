//! Parse errors with source positions.

use std::fmt;

/// Convenience alias used throughout the SQL front-end.
pub type Result<T> = std::result::Result<T, ParseError>;

/// An error produced while lexing or parsing a SQL statement.
///
/// Positions are 1-based line/column pairs pointing at the offending token so
/// workload files (which may contain hundreds of statements) produce
/// actionable diagnostics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description of what went wrong.
    pub message: String,
    /// 1-based line in the input.
    pub line: u32,
    /// 1-based column in the input.
    pub column: u32,
}

impl ParseError {
    /// Creates an error at the given position.
    pub fn new(message: impl Into<String>, line: u32, column: u32) -> Self {
        Self {
            message: message.into(),
            line,
            column,
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "parse error at line {}, column {}: {}",
            self.line, self.column, self.message
        )
    }
}

impl std::error::Error for ParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_position_and_message() {
        let e = ParseError::new("unexpected token", 3, 14);
        let s = e.to_string();
        assert!(s.contains("line 3"));
        assert!(s.contains("column 14"));
        assert!(s.contains("unexpected token"));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&ParseError::new("x", 1, 1));
    }
}
