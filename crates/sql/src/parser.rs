//! Recursive-descent parser for the DML subset.
//!
//! Grammar (informal):
//!
//! ```text
//! statement   := select | insert | update | delete
//! select      := SELECT [DISTINCT] [TOP int] items FROM from_list
//!                [WHERE expr] [GROUP BY exprs] [HAVING expr]
//!                [ORDER BY order_items]
//! from_list   := from_item ("," from_item)*
//! from_item   := table_ref (join_clause)*
//! join_clause := [INNER|LEFT [OUTER]|RIGHT [OUTER]] JOIN table_ref ON expr
//! expr        := or_expr
//! or_expr     := and_expr (OR and_expr)*
//! and_expr    := not_expr (AND not_expr)*
//! not_expr    := NOT not_expr | predicate
//! predicate   := additive [comparison | BETWEEN | IN | LIKE | IS [NOT] NULL]
//! additive    := multiplicative (("+"|"-") multiplicative)*
//! multiplicative := primary (("*"|"/") primary)*
//! ```

use crate::ast::*;
use crate::error::{ParseError, Result};
use crate::lexer::{tokenize, Token, TokenKind};

/// Parses exactly one statement (a trailing `;` is allowed).
pub fn parse_statement(src: &str) -> Result<Statement> {
    let mut p = Parser::new(src)?;
    let stmt = p.statement()?;
    p.eat_kind(&TokenKind::Semicolon);
    p.expect_eof()?;
    Ok(stmt)
}

/// Parses a `;`-separated script of statements.
pub fn parse_statements(src: &str) -> Result<Vec<Statement>> {
    let mut p = Parser::new(src)?;
    let mut out = Vec::new();
    loop {
        while p.eat_kind(&TokenKind::Semicolon) {}
        if p.at_eof() {
            return Ok(out);
        }
        out.push(p.statement()?);
    }
}

/// Token-stream parser. Usually driven through [`parse_statement`] /
/// [`parse_statements`]; exposed for incremental uses (e.g. workload files).
pub struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    /// Lexes `src` and positions the parser at the first token.
    pub fn new(src: &str) -> Result<Self> {
        Ok(Self {
            tokens: tokenize(src)?,
            pos: 0,
        })
    }

    fn peek(&self) -> &Token {
        &self.tokens[self.pos.min(self.tokens.len() - 1)]
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos.min(self.tokens.len() - 1)].clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn at_eof(&self) -> bool {
        self.peek().kind == TokenKind::Eof
    }

    fn err_here(&self, msg: impl Into<String>) -> ParseError {
        let t = self.peek();
        ParseError::new(msg, t.line, t.column)
    }

    fn expect_eof(&self) -> Result<()> {
        if self.at_eof() {
            Ok(())
        } else {
            Err(self.err_here(format!("unexpected trailing input: {:?}", self.peek().kind)))
        }
    }

    /// Consumes the next token if it equals `kind`.
    fn eat_kind(&mut self, kind: &TokenKind) -> bool {
        if &self.peek().kind == kind {
            self.bump();
            true
        } else {
            false
        }
    }

    fn at_keyword(&self, kw: &str) -> bool {
        matches!(&self.peek().kind, TokenKind::Keyword(k) if k == kw)
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.at_keyword(kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<()> {
        if self.eat_keyword(kw) {
            Ok(())
        } else {
            Err(self.err_here(format!("expected `{kw}`, found {:?}", self.peek().kind)))
        }
    }

    fn expect_kind(&mut self, kind: &TokenKind, what: &str) -> Result<()> {
        if self.eat_kind(kind) {
            Ok(())
        } else {
            Err(self.err_here(format!("expected {what}, found {:?}", self.peek().kind)))
        }
    }

    fn expect_ident(&mut self) -> Result<String> {
        match &self.peek().kind {
            TokenKind::Ident(s) => {
                let s = s.clone();
                self.bump();
                Ok(s)
            }
            // Allow a few keywords in identifier position (e.g. a column
            // named `year`); real systems quote these, we just accept them.
            TokenKind::Keyword(k) if matches!(k.as_str(), "YEAR" | "DATE" | "ALL") => {
                let s = k.clone();
                self.bump();
                Ok(s)
            }
            other => Err(self.err_here(format!("expected identifier, found {other:?}"))),
        }
    }

    /// Parses one statement.
    pub fn statement(&mut self) -> Result<Statement> {
        if self.at_keyword("SELECT") {
            Ok(Statement::Select(self.query()?))
        } else if self.eat_keyword("INSERT") {
            self.insert_rest()
        } else if self.eat_keyword("UPDATE") {
            self.update_rest()
        } else if self.eat_keyword("DELETE") {
            self.delete_rest()
        } else {
            Err(self.err_here(format!(
                "expected SELECT, INSERT, UPDATE or DELETE, found {:?}",
                self.peek().kind
            )))
        }
    }

    /// Parses a SELECT query block (the leading `SELECT` not yet consumed).
    pub fn query(&mut self) -> Result<Query> {
        self.expect_keyword("SELECT")?;
        let distinct = self.eat_keyword("DISTINCT");
        let top = if self.eat_keyword("TOP") {
            match self.bump().kind {
                TokenKind::Int(n) if n >= 0 => Some(n as u64),
                other => {
                    return Err(
                        self.err_here(format!("expected row count after TOP, found {other:?}"))
                    )
                }
            }
        } else {
            None
        };
        let select = self.select_items()?;
        let mut from = Vec::new();
        if self.eat_keyword("FROM") {
            loop {
                from.push(self.parse_from_item()?);
                if !self.eat_kind(&TokenKind::Comma) {
                    break;
                }
            }
        }
        let where_clause = if self.eat_keyword("WHERE") {
            Some(self.expr()?)
        } else {
            None
        };
        let mut group_by = Vec::new();
        if self.eat_keyword("GROUP") {
            self.expect_keyword("BY")?;
            loop {
                group_by.push(self.expr()?);
                if !self.eat_kind(&TokenKind::Comma) {
                    break;
                }
            }
        }
        let having = if self.eat_keyword("HAVING") {
            Some(self.expr()?)
        } else {
            None
        };
        let mut order_by = Vec::new();
        if self.eat_keyword("ORDER") {
            self.expect_keyword("BY")?;
            loop {
                let expr = self.expr()?;
                let ascending = if self.eat_keyword("DESC") {
                    false
                } else {
                    self.eat_keyword("ASC");
                    true
                };
                order_by.push(OrderItem { expr, ascending });
                if !self.eat_kind(&TokenKind::Comma) {
                    break;
                }
            }
        }
        Ok(Query {
            distinct,
            top,
            select,
            from,
            where_clause,
            group_by,
            having,
            order_by,
        })
    }

    fn select_items(&mut self) -> Result<Vec<SelectItem>> {
        let mut items = Vec::new();
        loop {
            if matches!(self.peek().kind, TokenKind::Arith('*')) {
                self.bump();
                items.push(SelectItem::Wildcard);
            } else {
                let expr = self.expr()?;
                let alias = if self.eat_keyword("AS") {
                    Some(self.expect_ident()?)
                } else if let TokenKind::Ident(s) = &self.peek().kind {
                    // Implicit alias: `SELECT a b` — allowed, like SQL Server.
                    let s = s.clone();
                    self.bump();
                    Some(s)
                } else {
                    None
                };
                items.push(SelectItem::Expr { expr, alias });
            }
            if !self.eat_kind(&TokenKind::Comma) {
                return Ok(items);
            }
        }
    }

    fn table_ref(&mut self) -> Result<FromItem> {
        let name = self.expect_ident()?;
        let alias = if self.eat_keyword("AS") {
            Some(self.expect_ident()?)
        } else if let TokenKind::Ident(s) = &self.peek().kind {
            let s = s.clone();
            self.bump();
            Some(s)
        } else {
            None
        };
        Ok(FromItem::Table { name, alias })
    }

    fn parse_from_item(&mut self) -> Result<FromItem> {
        let mut item = self.table_ref()?;
        loop {
            let kind = if self.eat_keyword("INNER") {
                JoinKind::Inner
            } else if self.eat_keyword("LEFT") {
                self.eat_keyword("OUTER");
                JoinKind::Left
            } else if self.eat_keyword("RIGHT") {
                self.eat_keyword("OUTER");
                JoinKind::Right
            } else if self.at_keyword("JOIN") {
                JoinKind::Inner
            } else {
                return Ok(item);
            };
            self.expect_keyword("JOIN")?;
            let right = self.table_ref()?;
            self.expect_keyword("ON")?;
            let on = self.expr()?;
            item = FromItem::Join {
                kind,
                left: Box::new(item),
                right: Box::new(right),
                on,
            };
        }
    }

    fn insert_rest(&mut self) -> Result<Statement> {
        self.expect_keyword("INTO")?;
        let table = self.expect_ident()?;
        let mut columns = Vec::new();
        if self.eat_kind(&TokenKind::LParen) {
            loop {
                columns.push(self.expect_ident()?);
                if !self.eat_kind(&TokenKind::Comma) {
                    break;
                }
            }
            self.expect_kind(&TokenKind::RParen, "`)`")?;
        }
        let source = if self.eat_keyword("VALUES") {
            let mut rows = Vec::new();
            loop {
                self.expect_kind(&TokenKind::LParen, "`(`")?;
                let mut row = Vec::new();
                loop {
                    row.push(self.expr()?);
                    if !self.eat_kind(&TokenKind::Comma) {
                        break;
                    }
                }
                self.expect_kind(&TokenKind::RParen, "`)`")?;
                rows.push(row);
                if !self.eat_kind(&TokenKind::Comma) {
                    break;
                }
            }
            InsertSource::Values(rows)
        } else if self.at_keyword("SELECT") {
            InsertSource::Query(Box::new(self.query()?))
        } else {
            return Err(self.err_here("expected VALUES or SELECT after INSERT target"));
        };
        Ok(Statement::Insert {
            table,
            columns,
            source,
        })
    }

    fn update_rest(&mut self) -> Result<Statement> {
        let table = self.expect_ident()?;
        self.expect_keyword("SET")?;
        let mut assignments = Vec::new();
        loop {
            let col = self.expect_ident()?;
            match self.bump().kind {
                TokenKind::Op(op) if op == "=" => {}
                other => return Err(self.err_here(format!("expected `=`, found {other:?}"))),
            }
            assignments.push((col, self.expr()?));
            if !self.eat_kind(&TokenKind::Comma) {
                break;
            }
        }
        let where_clause = if self.eat_keyword("WHERE") {
            Some(self.expr()?)
        } else {
            None
        };
        Ok(Statement::Update {
            table,
            assignments,
            where_clause,
        })
    }

    fn delete_rest(&mut self) -> Result<Statement> {
        self.expect_keyword("FROM")?;
        let table = self.expect_ident()?;
        let where_clause = if self.eat_keyword("WHERE") {
            Some(self.expr()?)
        } else {
            None
        };
        Ok(Statement::Delete {
            table,
            where_clause,
        })
    }

    /// Parses a full (boolean) expression.
    pub fn expr(&mut self) -> Result<Expr> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr> {
        let mut left = self.and_expr()?;
        while self.eat_keyword("OR") {
            let right = self.and_expr()?;
            left = Expr::Binary {
                op: BinaryOp::Or,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> Result<Expr> {
        let mut left = self.not_expr()?;
        while self.eat_keyword("AND") {
            let right = self.not_expr()?;
            left = Expr::Binary {
                op: BinaryOp::And,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn not_expr(&mut self) -> Result<Expr> {
        if self.eat_keyword("NOT") {
            // Fold `NOT EXISTS` so the planner sees a negated semi-join
            // rather than an opaque negation.
            if self.eat_keyword("EXISTS") {
                self.expect_kind(&TokenKind::LParen, "`(`")?;
                let subquery = Box::new(self.query()?);
                self.expect_kind(&TokenKind::RParen, "`)`")?;
                return Ok(Expr::Exists {
                    subquery,
                    negated: true,
                });
            }
            let inner = self.not_expr()?;
            return Ok(Expr::Unary {
                op: UnaryOp::Not,
                expr: Box::new(inner),
            });
        }
        self.predicate()
    }

    fn predicate(&mut self) -> Result<Expr> {
        // EXISTS is prefix-form.
        if self.eat_keyword("EXISTS") {
            self.expect_kind(&TokenKind::LParen, "`(`")?;
            let subquery = Box::new(self.query()?);
            self.expect_kind(&TokenKind::RParen, "`)`")?;
            return Ok(Expr::Exists {
                subquery,
                negated: false,
            });
        }
        let left = self.additive()?;
        // Comparison?
        if let TokenKind::Op(op) = &self.peek().kind {
            let op = match op.as_str() {
                "=" => BinaryOp::Eq,
                "<>" => BinaryOp::Neq,
                "<" => BinaryOp::Lt,
                "<=" => BinaryOp::Le,
                ">" => BinaryOp::Gt,
                ">=" => BinaryOp::Ge,
                other => return Err(self.err_here(format!("unknown operator `{other}`"))),
            };
            self.bump();
            // `ANY`/`ALL` quantified subqueries degrade to plain comparison
            // against the scalar subquery (cardinality effect only).
            if self.eat_keyword("ANY") || self.eat_keyword("ALL") {
                self.expect_kind(&TokenKind::LParen, "`(`")?;
                let q = Box::new(self.query()?);
                self.expect_kind(&TokenKind::RParen, "`)`")?;
                return Ok(Expr::Binary {
                    op,
                    left: Box::new(left),
                    right: Box::new(Expr::ScalarSubquery(q)),
                });
            }
            let right = self.additive()?;
            return Ok(Expr::Binary {
                op,
                left: Box::new(left),
                right: Box::new(right),
            });
        }
        let negated = self.eat_keyword("NOT");
        if self.eat_keyword("BETWEEN") {
            let low = self.additive()?;
            self.expect_keyword("AND")?;
            let high = self.additive()?;
            return Ok(Expr::Between {
                expr: Box::new(left),
                low: Box::new(low),
                high: Box::new(high),
                negated,
            });
        }
        if self.eat_keyword("IN") {
            self.expect_kind(&TokenKind::LParen, "`(`")?;
            if self.at_keyword("SELECT") {
                let q = Box::new(self.query()?);
                self.expect_kind(&TokenKind::RParen, "`)`")?;
                return Ok(Expr::InSubquery {
                    expr: Box::new(left),
                    subquery: q,
                    negated,
                });
            }
            let mut list = Vec::new();
            loop {
                list.push(self.additive()?);
                if !self.eat_kind(&TokenKind::Comma) {
                    break;
                }
            }
            self.expect_kind(&TokenKind::RParen, "`)`")?;
            return Ok(Expr::InList {
                expr: Box::new(left),
                list,
                negated,
            });
        }
        if self.eat_keyword("LIKE") {
            let pattern = match self.bump().kind {
                TokenKind::Str(s) => s,
                other => {
                    return Err(self.err_here(format!("expected pattern string, found {other:?}")))
                }
            };
            return Ok(Expr::Like {
                expr: Box::new(left),
                pattern,
                negated,
            });
        }
        if negated {
            return Err(self.err_here("expected BETWEEN, IN or LIKE after NOT"));
        }
        if self.eat_keyword("IS") {
            let negated = self.eat_keyword("NOT");
            self.expect_keyword("NULL")?;
            return Ok(Expr::IsNull {
                expr: Box::new(left),
                negated,
            });
        }
        Ok(left)
    }

    fn additive(&mut self) -> Result<Expr> {
        let mut left = self.multiplicative()?;
        loop {
            let op = match self.peek().kind {
                TokenKind::Arith('+') => BinaryOp::Add,
                TokenKind::Arith('-') => BinaryOp::Sub,
                _ => return Ok(left),
            };
            self.bump();
            let right = self.multiplicative()?;
            left = Expr::Binary {
                op,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
    }

    fn multiplicative(&mut self) -> Result<Expr> {
        let mut left = self.primary()?;
        loop {
            let op = match self.peek().kind {
                TokenKind::Arith('*') => BinaryOp::Mul,
                TokenKind::Arith('/') => BinaryOp::Div,
                _ => return Ok(left),
            };
            self.bump();
            let right = self.primary()?;
            left = Expr::Binary {
                op,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
    }

    fn aggregate_call(&mut self, func: Aggregate) -> Result<Expr> {
        self.expect_kind(&TokenKind::LParen, "`(`")?;
        if func == Aggregate::Count && matches!(self.peek().kind, TokenKind::Arith('*')) {
            self.bump();
            self.expect_kind(&TokenKind::RParen, "`)`")?;
            return Ok(Expr::AggregateCall {
                func,
                arg: None,
                distinct: false,
            });
        }
        let distinct = self.eat_keyword("DISTINCT");
        let arg = self.expr()?;
        self.expect_kind(&TokenKind::RParen, "`)`")?;
        Ok(Expr::AggregateCall {
            func,
            arg: Some(Box::new(arg)),
            distinct,
        })
    }

    fn primary(&mut self) -> Result<Expr> {
        let tok = self.peek().clone();
        match tok.kind {
            TokenKind::Int(i) => {
                self.bump();
                Ok(Expr::Literal(Literal::Int(i)))
            }
            TokenKind::Float(f) => {
                self.bump();
                Ok(Expr::Literal(Literal::Float(f)))
            }
            TokenKind::Str(s) => {
                self.bump();
                Ok(Expr::Literal(Literal::Str(s)))
            }
            TokenKind::Arith('-') => {
                self.bump();
                let inner = self.primary()?;
                Ok(Expr::Unary {
                    op: UnaryOp::Neg,
                    expr: Box::new(inner),
                })
            }
            TokenKind::Keyword(k) => match k.as_str() {
                "NULL" => {
                    self.bump();
                    Ok(Expr::Literal(Literal::Null))
                }
                "COUNT" => {
                    self.bump();
                    self.aggregate_call(Aggregate::Count)
                }
                "SUM" => {
                    self.bump();
                    self.aggregate_call(Aggregate::Sum)
                }
                "AVG" => {
                    self.bump();
                    self.aggregate_call(Aggregate::Avg)
                }
                "MIN" => {
                    self.bump();
                    self.aggregate_call(Aggregate::Min)
                }
                "MAX" => {
                    self.bump();
                    self.aggregate_call(Aggregate::Max)
                }
                "DATE" => {
                    // `DATE '1995-01-01'` — TPC-H style date literal.
                    self.bump();
                    match self.bump().kind {
                        TokenKind::Str(s) => Ok(Expr::Literal(Literal::Str(s))),
                        other => {
                            Err(self.err_here(format!("expected date string, found {other:?}")))
                        }
                    }
                }
                "INTERVAL" => {
                    // `INTERVAL '90' DAY` etc. — approximated as a numeric
                    // literal of days for selectivity purposes.
                    self.bump();
                    let days = match self.bump().kind {
                        TokenKind::Str(s) => s.parse::<i64>().unwrap_or(0),
                        TokenKind::Int(i) => i,
                        other => {
                            return Err(
                                self.err_here(format!("expected interval value, found {other:?}"))
                            )
                        }
                    };
                    // Consume a trailing unit identifier if present.
                    if matches!(self.peek().kind, TokenKind::Ident(_)) || self.at_keyword("YEAR") {
                        self.bump();
                    }
                    Ok(Expr::Literal(Literal::Int(days)))
                }
                "EXTRACT" => {
                    // `EXTRACT(YEAR FROM expr)` — passes the inner column
                    // through so the planner sees the reference.
                    self.bump();
                    self.expect_kind(&TokenKind::LParen, "`(`")?;
                    self.expect_keyword("YEAR")?;
                    self.expect_keyword("FROM")?;
                    let inner = self.expr()?;
                    self.expect_kind(&TokenKind::RParen, "`)`")?;
                    Ok(inner)
                }
                "SUBSTRING" => {
                    // `SUBSTRING(expr FROM i [FOR j])` or `SUBSTRING(e, i, j)`.
                    // Passes the inner expression through: only the column
                    // reference matters for planning.
                    self.bump();
                    self.expect_kind(&TokenKind::LParen, "`(`")?;
                    let inner = self.expr()?;
                    if self.eat_keyword("FROM") {
                        self.expr()?;
                        // `FOR` is not reserved; it lexes as an identifier.
                        if matches!(&self.peek().kind, TokenKind::Ident(s) if s.eq_ignore_ascii_case("for"))
                        {
                            self.bump();
                            self.expr()?;
                        }
                    }
                    while self.eat_kind(&TokenKind::Comma) {
                        self.expr()?;
                    }
                    self.expect_kind(&TokenKind::RParen, "`)`")?;
                    Ok(inner)
                }
                "CASE" => {
                    self.bump();
                    let mut arms = Vec::new();
                    while self.eat_keyword("WHEN") {
                        let c = self.expr()?;
                        self.expect_keyword("THEN")?;
                        let v = self.expr()?;
                        arms.push((c, v));
                    }
                    let else_value = if self.eat_keyword("ELSE") {
                        Some(Box::new(self.expr()?))
                    } else {
                        None
                    };
                    self.expect_keyword("END")?;
                    Ok(Expr::Case { arms, else_value })
                }
                "YEAR" | "ALL" => {
                    // identifier-position keywords
                    self.column_or_ident()
                }
                other => Err(self.err_here(format!("unexpected keyword `{other}`"))),
            },
            TokenKind::Ident(_) => self.column_or_ident(),
            TokenKind::LParen => {
                self.bump();
                if self.at_keyword("SELECT") {
                    let q = Box::new(self.query()?);
                    self.expect_kind(&TokenKind::RParen, "`)`")?;
                    return Ok(Expr::ScalarSubquery(q));
                }
                let inner = self.expr()?;
                self.expect_kind(&TokenKind::RParen, "`)`")?;
                Ok(inner)
            }
            other => Err(self.err_here(format!("unexpected token {other:?}"))),
        }
    }

    fn column_or_ident(&mut self) -> Result<Expr> {
        let first = self.expect_ident()?;
        if self.eat_kind(&TokenKind::Dot) {
            let second = self.expect_ident()?;
            Ok(Expr::Column {
                qualifier: Some(first),
                name: second,
            })
        } else {
            Ok(Expr::Column {
                qualifier: None,
                name: first,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(src: &str) -> Query {
        match parse_statement(src).unwrap() {
            Statement::Select(q) => q,
            other => panic!("expected select, got {other:?}"),
        }
    }

    #[test]
    fn simple_select_star() {
        let query = q("SELECT * FROM lineitem");
        assert_eq!(query.select, vec![SelectItem::Wildcard]);
        assert_eq!(query.bindings(), vec![("lineitem", "lineitem")]);
    }

    #[test]
    fn comma_join_with_where() {
        let query = q("SELECT * FROM a, b WHERE a.x = b.y");
        assert_eq!(query.from.len(), 2);
        assert!(query.where_clause.is_some());
    }

    #[test]
    fn ansi_join_chain() {
        let query = q("SELECT * FROM a JOIN b ON a.x = b.x LEFT JOIN c ON b.y = c.y");
        assert_eq!(query.from.len(), 1);
        let bindings = query.bindings();
        assert_eq!(bindings.len(), 3);
    }

    #[test]
    fn aliases_both_forms() {
        let query = q("SELECT l.l_qty FROM lineitem AS l, orders o");
        assert_eq!(query.bindings(), vec![("lineitem", "l"), ("orders", "o")]);
    }

    #[test]
    fn group_by_having_order_by() {
        let query = q("SELECT o_custkey, COUNT(*) AS c FROM orders \
             GROUP BY o_custkey HAVING COUNT(*) > 5 ORDER BY c DESC");
        assert_eq!(query.group_by.len(), 1);
        assert!(query.having.is_some());
        assert_eq!(query.order_by.len(), 1);
        assert!(!query.order_by[0].ascending);
        assert!(query.is_aggregating());
    }

    #[test]
    fn top_and_distinct() {
        let query = q("SELECT DISTINCT TOP 10 a FROM t");
        assert!(query.distinct);
        assert_eq!(query.top, Some(10));
    }

    #[test]
    fn between_and_in_list() {
        let query = q("SELECT * FROM t WHERE a BETWEEN 1 AND 5 AND b IN (1, 2, 3)");
        let conj: Vec<_> = query.where_clause.as_ref().unwrap().conjuncts();
        assert_eq!(conj.len(), 2);
        assert!(matches!(conj[0], Expr::Between { .. }));
        assert!(matches!(conj[1], Expr::InList { list, .. } if list.len() == 3));
    }

    #[test]
    fn not_between() {
        let query = q("SELECT * FROM t WHERE a NOT BETWEEN 1 AND 5");
        assert!(matches!(
            query.where_clause.unwrap(),
            Expr::Between { negated: true, .. }
        ));
    }

    #[test]
    fn exists_subquery() {
        let query = q("SELECT * FROM o WHERE EXISTS (SELECT * FROM l WHERE l.k = o.k)");
        let subs = query.where_clause.as_ref().unwrap().subqueries();
        assert_eq!(subs.len(), 1);
        assert_eq!(subs[0].bindings(), vec![("l", "l")]);
    }

    #[test]
    fn not_exists_folds_to_negated_exists() {
        let query = q("SELECT * FROM o WHERE NOT EXISTS (SELECT * FROM l)");
        assert!(matches!(
            query.where_clause.unwrap(),
            Expr::Exists { negated: true, .. }
        ));
    }

    #[test]
    fn substring_from_for_passes_column_through() {
        let query = q("SELECT * FROM c WHERE SUBSTRING(c_phone FROM 1 FOR 2) IN ('13', '31')");
        match query.where_clause.unwrap() {
            Expr::InList { expr, list, .. } => {
                assert!(matches!(*expr, Expr::Column { ref name, .. } if name == "c_phone"));
                assert_eq!(list.len(), 2);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn in_subquery() {
        let query = q("SELECT * FROM o WHERE o.k IN (SELECT k FROM l)");
        assert!(matches!(
            query.where_clause.unwrap(),
            Expr::InSubquery { negated: false, .. }
        ));
    }

    #[test]
    fn scalar_subquery_comparison() {
        let query = q("SELECT * FROM p WHERE p.cost = (SELECT MIN(cost) FROM ps)");
        match query.where_clause.unwrap() {
            Expr::Binary { op, right, .. } => {
                assert_eq!(op, BinaryOp::Eq);
                assert!(matches!(*right, Expr::ScalarSubquery(_)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn like_and_not_like() {
        let query = q("SELECT * FROM p WHERE p_type LIKE '%BRASS' AND p_name NOT LIKE 'x%'");
        let w = query.where_clause.unwrap();
        let conj = w.conjuncts();
        assert!(matches!(conj[0], Expr::Like { negated: false, .. }));
        assert!(matches!(conj[1], Expr::Like { negated: true, .. }));
    }

    #[test]
    fn arithmetic_precedence() {
        let query = q("SELECT a + b * c FROM t");
        match &query.select[0] {
            SelectItem::Expr { expr, .. } => match expr {
                Expr::Binary { op, right, .. } => {
                    assert_eq!(*op, BinaryOp::Add);
                    assert!(matches!(
                        **right,
                        Expr::Binary {
                            op: BinaryOp::Mul,
                            ..
                        }
                    ));
                }
                other => panic!("unexpected {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn and_binds_tighter_than_or() {
        let query = q("SELECT * FROM t WHERE a = 1 OR b = 2 AND c = 3");
        match query.where_clause.unwrap() {
            Expr::Binary { op, .. } => assert_eq!(op, BinaryOp::Or),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn tpch_style_date_arithmetic() {
        // Q1-style: l_shipdate <= DATE '1998-12-01' - INTERVAL '90' DAY
        let query = q(
            "SELECT COUNT(*) FROM lineitem WHERE l_shipdate <= DATE '1998-12-01' - INTERVAL '90' DAY",
        );
        assert!(query.where_clause.is_some());
    }

    #[test]
    fn case_expression() {
        let query =
            q("SELECT SUM(CASE WHEN o_orderpriority = '1-URGENT' THEN 1 ELSE 0 END) FROM orders");
        assert!(query.is_aggregating());
    }

    #[test]
    fn insert_values() {
        let s = parse_statement("INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')").unwrap();
        match s {
            Statement::Insert {
                table,
                columns,
                source: InsertSource::Values(rows),
            } => {
                assert_eq!(table, "t");
                assert_eq!(columns, vec!["a", "b"]);
                assert_eq!(rows.len(), 2);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn insert_select() {
        let s = parse_statement("INSERT INTO t SELECT * FROM u").unwrap();
        assert!(matches!(
            s,
            Statement::Insert {
                source: InsertSource::Query(_),
                ..
            }
        ));
    }

    #[test]
    fn update_with_where() {
        let s = parse_statement(
            "UPDATE orders SET o_status = 'F', o_total = o_total * 1.1 WHERE o_orderkey = 5",
        )
        .unwrap();
        match s {
            Statement::Update {
                table,
                assignments,
                where_clause,
            } => {
                assert_eq!(table, "orders");
                assert_eq!(assignments.len(), 2);
                assert!(where_clause.is_some());
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn delete_statement() {
        let s = parse_statement("DELETE FROM lineitem WHERE l_orderkey < 100").unwrap();
        assert!(matches!(s, Statement::Delete { .. }));
    }

    #[test]
    fn multiple_statements() {
        let stmts = parse_statements("SELECT * FROM a; SELECT * FROM b;").unwrap();
        assert_eq!(stmts.len(), 2);
    }

    #[test]
    fn trailing_garbage_rejected() {
        assert!(parse_statement("SELECT * FROM a garbage garbage").is_err());
        assert!(parse_statement("SELECT * FROM a ) ").is_err());
    }

    #[test]
    fn error_positions_reported() {
        let err = parse_statement("SELECT *\nFROM").unwrap_err();
        assert_eq!(err.line, 2);
    }

    #[test]
    fn is_null_predicates() {
        let query = q("SELECT * FROM t WHERE a IS NULL AND b IS NOT NULL");
        let w = query.where_clause.unwrap();
        let conj = w.conjuncts();
        assert!(matches!(conj[0], Expr::IsNull { negated: false, .. }));
        assert!(matches!(conj[1], Expr::IsNull { negated: true, .. }));
    }

    #[test]
    fn quantified_any_degrades_to_scalar() {
        let query = q("SELECT * FROM t WHERE a > ANY (SELECT b FROM u)");
        match query.where_clause.unwrap() {
            Expr::Binary { right, .. } => assert!(matches!(*right, Expr::ScalarSubquery(_))),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn empty_statement_is_error() {
        assert!(parse_statement("").is_err());
        assert!(parse_statement(";;;").is_err());
    }

    #[test]
    fn parse_statements_skips_empty() {
        assert_eq!(parse_statements(";; SELECT 1 ;;").unwrap().len(), 1);
    }
}
