//! Abstract syntax tree for the supported SQL DML subset.
//!
//! The tree is deliberately simple: the planner needs table references, join
//! predicates, filter selectivities, aggregation/ordering (which introduce
//! blocking operators in the physical plan), and write targets. Expression
//! *evaluation* is never required — the advisor never executes statements.

use std::fmt;

/// A literal constant value.
#[derive(Debug, Clone, PartialEq)]
pub enum Literal {
    /// 64-bit integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// String (also used for dates, e.g. `'1995-03-15'`).
    Str(String),
    /// SQL NULL.
    Null,
}

impl Literal {
    /// A rough numeric interpretation used by selectivity estimation: ints
    /// and floats map to their value, dates of the form `YYYY-MM-DD` map to a
    /// day ordinal, other strings hash into `[0, 1)` scaled by 1e6.
    pub fn numeric_value(&self) -> Option<f64> {
        match self {
            Literal::Int(i) => Some(*i as f64),
            Literal::Float(f) => Some(*f),
            Literal::Str(s) => parse_date_ordinal(s),
            Literal::Null => None,
        }
    }
}

/// Parses `YYYY-MM-DD` into a comparable day ordinal (days since 1900-01-01,
/// using 31-day months — exactness is irrelevant, only ordering matters).
pub fn parse_date_ordinal(s: &str) -> Option<f64> {
    let mut parts = s.splitn(3, '-');
    let y: i64 = parts.next()?.parse().ok()?;
    let m: i64 = parts.next()?.parse().ok()?;
    let d: i64 = parts.next()?.parse().ok()?;
    if !(1..=12).contains(&m) || !(1..=31).contains(&d) {
        return None;
    }
    Some(((y - 1900) * 372 + (m - 1) * 31 + (d - 1)) as f64)
}

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Literal::Int(i) => write!(f, "{i}"),
            Literal::Float(x) => write!(f, "{x}"),
            Literal::Str(s) => write!(f, "'{}'", s.replace('\'', "''")),
            Literal::Null => write!(f, "NULL"),
        }
    }
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinaryOp {
    /// `=`
    Eq,
    /// `<>`
    Neq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `AND`
    And,
    /// `OR`
    Or,
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
}

impl BinaryOp {
    /// True for `=`, `<>`, `<`, `<=`, `>`, `>=`.
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinaryOp::Eq
                | BinaryOp::Neq
                | BinaryOp::Lt
                | BinaryOp::Le
                | BinaryOp::Gt
                | BinaryOp::Ge
        )
    }
}

impl fmt::Display for BinaryOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinaryOp::Eq => "=",
            BinaryOp::Neq => "<>",
            BinaryOp::Lt => "<",
            BinaryOp::Le => "<=",
            BinaryOp::Gt => ">",
            BinaryOp::Ge => ">=",
            BinaryOp::And => "AND",
            BinaryOp::Or => "OR",
            BinaryOp::Add => "+",
            BinaryOp::Sub => "-",
            BinaryOp::Mul => "*",
            BinaryOp::Div => "/",
        };
        f.write_str(s)
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnaryOp {
    /// `NOT`
    Not,
    /// unary `-`
    Neg,
}

/// Aggregate function names.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Aggregate {
    /// `COUNT(*)` or `COUNT(expr)`
    Count,
    /// `SUM(expr)`
    Sum,
    /// `AVG(expr)`
    Avg,
    /// `MIN(expr)`
    Min,
    /// `MAX(expr)`
    Max,
}

impl fmt::Display for Aggregate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Aggregate::Count => "COUNT",
            Aggregate::Sum => "SUM",
            Aggregate::Avg => "AVG",
            Aggregate::Min => "MIN",
            Aggregate::Max => "MAX",
        };
        f.write_str(s)
    }
}

/// A scalar or boolean expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Column reference, optionally qualified: `l_orderkey`, `lineitem.l_orderkey`.
    Column {
        /// Table name or alias qualifier, if written.
        qualifier: Option<String>,
        /// Column name.
        name: String,
    },
    /// Literal constant.
    Literal(Literal),
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinaryOp,
        /// Left operand.
        left: Box<Expr>,
        /// Right operand.
        right: Box<Expr>,
    },
    /// Unary operation.
    Unary {
        /// Operator.
        op: UnaryOp,
        /// Operand.
        expr: Box<Expr>,
    },
    /// `expr BETWEEN low AND high` (or `NOT BETWEEN` when `negated`).
    Between {
        /// Tested expression.
        expr: Box<Expr>,
        /// Lower bound (inclusive).
        low: Box<Expr>,
        /// Upper bound (inclusive).
        high: Box<Expr>,
        /// True for `NOT BETWEEN`.
        negated: bool,
    },
    /// `expr IN (lit, ...)` (or `NOT IN`).
    InList {
        /// Tested expression.
        expr: Box<Expr>,
        /// List members.
        list: Vec<Expr>,
        /// True for `NOT IN`.
        negated: bool,
    },
    /// `expr IN (SELECT ...)` (or `NOT IN`).
    InSubquery {
        /// Tested expression.
        expr: Box<Expr>,
        /// The subquery.
        subquery: Box<Query>,
        /// True for `NOT IN`.
        negated: bool,
    },
    /// `EXISTS (SELECT ...)` (or `NOT EXISTS`).
    Exists {
        /// The subquery.
        subquery: Box<Query>,
        /// True for `NOT EXISTS`.
        negated: bool,
    },
    /// A scalar subquery used as a value: `x = (SELECT ...)`.
    ScalarSubquery(Box<Query>),
    /// `expr LIKE 'pattern'` (or `NOT LIKE`).
    Like {
        /// Tested expression.
        expr: Box<Expr>,
        /// The pattern literal.
        pattern: String,
        /// True for `NOT LIKE`.
        negated: bool,
    },
    /// `expr IS NULL` (or `IS NOT NULL`).
    IsNull {
        /// Tested expression.
        expr: Box<Expr>,
        /// True for `IS NOT NULL`.
        negated: bool,
    },
    /// Aggregate call. `arg` is `None` for `COUNT(*)`.
    AggregateCall {
        /// Which aggregate.
        func: Aggregate,
        /// Argument, or `None` for `COUNT(*)`.
        arg: Option<Box<Expr>>,
        /// True for `COUNT(DISTINCT expr)` etc.
        distinct: bool,
    },
    /// `CASE WHEN c THEN v [WHEN ...] [ELSE e] END`.
    Case {
        /// `(condition, value)` arms.
        arms: Vec<(Expr, Expr)>,
        /// `ELSE` value if present.
        else_value: Option<Box<Expr>>,
    },
}

impl Expr {
    /// Convenience constructor for a bare column.
    pub fn col(name: &str) -> Expr {
        Expr::Column {
            qualifier: None,
            name: name.to_string(),
        }
    }

    /// Convenience constructor for a qualified column.
    pub fn qcol(qualifier: &str, name: &str) -> Expr {
        Expr::Column {
            qualifier: Some(qualifier.to_string()),
            name: name.to_string(),
        }
    }

    /// Splits a conjunctive expression into its `AND`-connected conjuncts.
    pub fn conjuncts(&self) -> Vec<&Expr> {
        let mut out = Vec::new();
        fn walk<'a>(e: &'a Expr, out: &mut Vec<&'a Expr>) {
            if let Expr::Binary {
                op: BinaryOp::And,
                left,
                right,
            } = e
            {
                walk(left, out);
                walk(right, out);
            } else {
                out.push(e);
            }
        }
        walk(self, &mut out);
        out
    }

    /// Collects every column referenced anywhere in this expression,
    /// excluding columns referenced only inside subqueries (those belong to
    /// the subquery's own scope unless correlated — correlation is resolved
    /// by the planner).
    pub fn referenced_columns(&self) -> Vec<(&Option<String>, &str)> {
        let mut out = Vec::new();
        self.walk_columns(&mut |q, n| out.push((q, n)));
        out
    }

    fn walk_columns<'a>(&'a self, f: &mut impl FnMut(&'a Option<String>, &'a str)) {
        match self {
            Expr::Column { qualifier, name } => f(qualifier, name),
            Expr::Literal(_) => {}
            Expr::Binary { left, right, .. } => {
                left.walk_columns(f);
                right.walk_columns(f);
            }
            Expr::Unary { expr, .. } => expr.walk_columns(f),
            Expr::Between {
                expr, low, high, ..
            } => {
                expr.walk_columns(f);
                low.walk_columns(f);
                high.walk_columns(f);
            }
            Expr::InList { expr, list, .. } => {
                expr.walk_columns(f);
                for e in list {
                    e.walk_columns(f);
                }
            }
            Expr::InSubquery { expr, .. } => expr.walk_columns(f),
            Expr::Exists { .. } | Expr::ScalarSubquery(_) => {}
            Expr::Like { expr, .. } => expr.walk_columns(f),
            Expr::IsNull { expr, .. } => expr.walk_columns(f),
            Expr::AggregateCall { arg, .. } => {
                if let Some(a) = arg {
                    a.walk_columns(f);
                }
            }
            Expr::Case { arms, else_value } => {
                for (c, v) in arms {
                    c.walk_columns(f);
                    v.walk_columns(f);
                }
                if let Some(e) = else_value {
                    e.walk_columns(f);
                }
            }
        }
    }

    /// Collects the subqueries directly nested in this expression.
    pub fn subqueries(&self) -> Vec<&Query> {
        let mut out = Vec::new();
        self.walk_subqueries(&mut |q| out.push(q));
        out
    }

    fn walk_subqueries<'a>(&'a self, f: &mut impl FnMut(&'a Query)) {
        match self {
            Expr::Binary { left, right, .. } => {
                left.walk_subqueries(f);
                right.walk_subqueries(f);
            }
            Expr::Unary { expr, .. } => expr.walk_subqueries(f),
            Expr::Between {
                expr, low, high, ..
            } => {
                expr.walk_subqueries(f);
                low.walk_subqueries(f);
                high.walk_subqueries(f);
            }
            Expr::InList { expr, list, .. } => {
                expr.walk_subqueries(f);
                for e in list {
                    e.walk_subqueries(f);
                }
            }
            Expr::InSubquery { expr, subquery, .. } => {
                expr.walk_subqueries(f);
                f(subquery);
            }
            Expr::Exists { subquery, .. } => f(subquery),
            Expr::ScalarSubquery(q) => f(q),
            Expr::Like { expr, .. } => expr.walk_subqueries(f),
            Expr::IsNull { expr, .. } => expr.walk_subqueries(f),
            Expr::AggregateCall { arg, .. } => {
                if let Some(a) = arg {
                    a.walk_subqueries(f);
                }
            }
            Expr::Case { arms, else_value } => {
                for (c, v) in arms {
                    c.walk_subqueries(f);
                    v.walk_subqueries(f);
                }
                if let Some(e) = else_value {
                    e.walk_subqueries(f);
                }
            }
            Expr::Column { .. } | Expr::Literal(_) => {}
        }
    }

    /// True if any aggregate call appears (outside subqueries).
    pub fn contains_aggregate(&self) -> bool {
        match self {
            Expr::AggregateCall { .. } => true,
            Expr::Binary { left, right, .. } => {
                left.contains_aggregate() || right.contains_aggregate()
            }
            Expr::Unary { expr, .. } => expr.contains_aggregate(),
            Expr::Between {
                expr, low, high, ..
            } => expr.contains_aggregate() || low.contains_aggregate() || high.contains_aggregate(),
            Expr::Case { arms, else_value } => {
                arms.iter()
                    .any(|(c, v)| c.contains_aggregate() || v.contains_aggregate())
                    || else_value.as_ref().is_some_and(|e| e.contains_aggregate())
            }
            _ => false,
        }
    }
}

/// One item in a `SELECT` list.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*`
    Wildcard,
    /// `expr [AS alias]`
    Expr {
        /// The projected expression.
        expr: Expr,
        /// Optional output alias.
        alias: Option<String>,
    },
}

/// Join syntax kind (all treated as inner by the planner; outer joins affect
/// cardinality, not co-access structure, so the simplification is safe for
/// layout tuning).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinKind {
    /// `JOIN` / `INNER JOIN`
    Inner,
    /// `LEFT [OUTER] JOIN`
    Left,
    /// `RIGHT [OUTER] JOIN`
    Right,
}

/// One element of a `FROM` clause.
#[derive(Debug, Clone, PartialEq)]
pub enum FromItem {
    /// A base table with an optional alias.
    Table {
        /// Table name as written.
        name: String,
        /// Alias, if any.
        alias: Option<String>,
    },
    /// An ANSI join between two from-items with an `ON` condition.
    Join {
        /// Join kind.
        kind: JoinKind,
        /// Left input.
        left: Box<FromItem>,
        /// Right input.
        right: Box<FromItem>,
        /// The `ON` predicate.
        on: Expr,
    },
}

impl FromItem {
    /// All `(table_name, binding_name)` pairs under this item, where the
    /// binding name is the alias if given, else the table name.
    pub fn bindings(&self) -> Vec<(&str, &str)> {
        let mut out = Vec::new();
        self.collect_bindings(&mut out);
        out
    }

    fn collect_bindings<'a>(&'a self, out: &mut Vec<(&'a str, &'a str)>) {
        match self {
            FromItem::Table { name, alias } => {
                out.push((name.as_str(), alias.as_deref().unwrap_or(name.as_str())));
            }
            FromItem::Join { left, right, .. } => {
                left.collect_bindings(out);
                right.collect_bindings(out);
            }
        }
    }
}

/// `ORDER BY` item.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderItem {
    /// Ordered expression (usually a column or select alias).
    pub expr: Expr,
    /// False for `DESC`.
    pub ascending: bool,
}

/// A `SELECT` query block.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// `SELECT DISTINCT`?
    pub distinct: bool,
    /// `TOP n` row limit, if any.
    pub top: Option<u64>,
    /// Projected items.
    pub select: Vec<SelectItem>,
    /// `FROM` items (comma-separated roots; each may be a join tree).
    pub from: Vec<FromItem>,
    /// `WHERE` predicate.
    pub where_clause: Option<Expr>,
    /// `GROUP BY` expressions.
    pub group_by: Vec<Expr>,
    /// `HAVING` predicate.
    pub having: Option<Expr>,
    /// `ORDER BY` items.
    pub order_by: Vec<OrderItem>,
}

impl Query {
    /// All `(table, binding)` pairs in this query block (not subqueries).
    pub fn bindings(&self) -> Vec<(&str, &str)> {
        let mut out = Vec::new();
        for f in &self.from {
            f.collect_bindings(&mut out);
        }
        out
    }

    /// True when the query aggregates (explicit GROUP BY or aggregate in the
    /// select list / HAVING).
    pub fn is_aggregating(&self) -> bool {
        !self.group_by.is_empty()
            || self.select.iter().any(|s| match s {
                SelectItem::Expr { expr, .. } => expr.contains_aggregate(),
                SelectItem::Wildcard => false,
            })
            || self.having.as_ref().is_some_and(|h| h.contains_aggregate())
    }
}

/// A SQL DML statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// `SELECT ...`
    Select(Query),
    /// `INSERT INTO t [(cols)] VALUES (...), ...` or `INSERT INTO t SELECT ...`
    Insert {
        /// Target table.
        table: String,
        /// Explicit column list, if any.
        columns: Vec<String>,
        /// Source: literal rows or a query.
        source: InsertSource,
    },
    /// `UPDATE t SET c = e, ... [WHERE p]`
    Update {
        /// Target table.
        table: String,
        /// `SET` assignments.
        assignments: Vec<(String, Expr)>,
        /// Optional filter.
        where_clause: Option<Expr>,
    },
    /// `DELETE FROM t [WHERE p]`
    Delete {
        /// Target table.
        table: String,
        /// Optional filter.
        where_clause: Option<Expr>,
    },
}

/// The source of an `INSERT`.
#[derive(Debug, Clone, PartialEq)]
pub enum InsertSource {
    /// `VALUES (...), (...)` rows.
    Values(Vec<Vec<Expr>>),
    /// `INSERT ... SELECT`.
    Query(Box<Query>),
}

impl Statement {
    /// True for `SELECT`.
    pub fn is_query(&self) -> bool {
        matches!(self, Statement::Select(_))
    }

    /// The table written by this statement, if it is a write.
    pub fn write_target(&self) -> Option<&str> {
        match self {
            Statement::Insert { table, .. }
            | Statement::Update { table, .. }
            | Statement::Delete { table, .. } => Some(table),
            Statement::Select(_) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conjuncts_flatten_nested_ands() {
        let e = Expr::Binary {
            op: BinaryOp::And,
            left: Box::new(Expr::Binary {
                op: BinaryOp::And,
                left: Box::new(Expr::col("a")),
                right: Box::new(Expr::col("b")),
            }),
            right: Box::new(Expr::col("c")),
        };
        assert_eq!(e.conjuncts().len(), 3);
    }

    #[test]
    fn or_is_single_conjunct() {
        let e = Expr::Binary {
            op: BinaryOp::Or,
            left: Box::new(Expr::col("a")),
            right: Box::new(Expr::col("b")),
        };
        assert_eq!(e.conjuncts().len(), 1);
    }

    #[test]
    fn referenced_columns_walks_everything() {
        let e = Expr::Between {
            expr: Box::new(Expr::qcol("l", "l_qty")),
            low: Box::new(Expr::Literal(Literal::Int(1))),
            high: Box::new(Expr::col("x")),
            negated: false,
        };
        let cols = e.referenced_columns();
        assert_eq!(cols.len(), 2);
        assert_eq!(cols[0].1, "l_qty");
    }

    #[test]
    fn date_ordinal_orders_correctly() {
        let a = parse_date_ordinal("1995-03-15").unwrap();
        let b = parse_date_ordinal("1995-03-16").unwrap();
        let c = parse_date_ordinal("1996-01-01").unwrap();
        assert!(a < b && b < c);
    }

    #[test]
    fn date_ordinal_rejects_garbage() {
        assert!(parse_date_ordinal("BUILDING").is_none());
        assert!(parse_date_ordinal("1995-13-01").is_none());
    }

    #[test]
    fn bindings_prefer_alias() {
        let f = FromItem::Table {
            name: "lineitem".into(),
            alias: Some("l1".into()),
        };
        assert_eq!(f.bindings(), vec![("lineitem", "l1")]);
    }

    #[test]
    fn aggregate_detection() {
        let q = Query {
            distinct: false,
            top: None,
            select: vec![SelectItem::Expr {
                expr: Expr::AggregateCall {
                    func: Aggregate::Count,
                    arg: None,
                    distinct: false,
                },
                alias: None,
            }],
            from: vec![],
            where_clause: None,
            group_by: vec![],
            having: None,
            order_by: vec![],
        };
        assert!(q.is_aggregating());
    }

    #[test]
    fn subqueries_collected_from_exists_and_in() {
        let inner = Query {
            distinct: false,
            top: None,
            select: vec![SelectItem::Wildcard],
            from: vec![FromItem::Table {
                name: "t".into(),
                alias: None,
            }],
            where_clause: None,
            group_by: vec![],
            having: None,
            order_by: vec![],
        };
        let e = Expr::Binary {
            op: BinaryOp::And,
            left: Box::new(Expr::Exists {
                subquery: Box::new(inner.clone()),
                negated: false,
            }),
            right: Box::new(Expr::InSubquery {
                expr: Box::new(Expr::col("a")),
                subquery: Box::new(inner),
                negated: true,
            }),
        };
        assert_eq!(e.subqueries().len(), 2);
    }

    #[test]
    fn literal_display_escapes_quotes() {
        assert_eq!(Literal::Str("o'b".into()).to_string(), "'o''b'");
    }

    #[test]
    fn write_target() {
        let s = Statement::Delete {
            table: "orders".into(),
            where_clause: None,
        };
        assert_eq!(s.write_target(), Some("orders"));
    }
}
