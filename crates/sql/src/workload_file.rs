//! Workload-file format (paper §3, input (2)).
//!
//! The advisor takes "a workload file consisting of a set of SQL DML
//! statements", each with an optional weight. Our textual format is
//! `;`-separated statements, each optionally preceded by a weight directive:
//!
//! ```text
//! -- weight: 3.5
//! SELECT ... ;
//! SELECT ... ;          -- weight defaults to 1.0
//! ```
//!
//! The directive must be on its own comment line immediately before the
//! statement it applies to, mirroring how profiler-captured workloads carry
//! multiplicity counts.

use crate::ast::Statement;
use crate::error::{ParseError, Result};
use crate::parser::parse_statement;

/// A parsed workload entry: statement plus weight.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadEntry {
    /// The parsed statement.
    pub statement: Statement,
    /// Statement weight `w_Q` (importance / multiplicity); defaults to 1.0.
    pub weight: f64,
    /// Original statement text (useful for reporting).
    pub text: String,
}

/// Parses a workload file into weighted statements.
pub fn parse_workload_file(src: &str) -> Result<Vec<WorkloadEntry>> {
    let mut entries = Vec::new();
    let mut pending_weight: Option<f64> = None;
    let mut buf = String::new();
    let mut buf_start_line = 1u32;

    let mut line_no = 0u32;
    for line in src.lines() {
        line_no += 1;
        let trimmed = line.trim();
        if let Some(rest) = trimmed.strip_prefix("--") {
            let rest = rest.trim();
            if let Some(w) = rest.strip_prefix("weight:") {
                let w: f64 = w.trim().parse().map_err(|_| {
                    ParseError::new(format!("bad weight `{}`", w.trim()), line_no, 1)
                })?;
                if w < 0.0 || !w.is_finite() {
                    return Err(ParseError::new(
                        "weight must be finite and non-negative",
                        line_no,
                        1,
                    ));
                }
                pending_weight = Some(w);
            }
            continue; // all comments are skipped from the statement text
        }
        if buf.trim().is_empty() {
            buf_start_line = line_no;
        }
        buf.push_str(line);
        buf.push('\n');
        // A statement ends at a line whose last non-space char is `;`.
        if trimmed.ends_with(';') {
            flush(&mut buf, &mut pending_weight, buf_start_line, &mut entries)?;
        }
    }
    if !buf.trim().is_empty() {
        flush(&mut buf, &mut pending_weight, buf_start_line, &mut entries)?;
    }
    Ok(entries)
}

fn flush(
    buf: &mut String,
    pending_weight: &mut Option<f64>,
    start_line: u32,
    entries: &mut Vec<WorkloadEntry>,
) -> Result<()> {
    let text = buf.trim().trim_end_matches(';').trim().to_string();
    buf.clear();
    if text.is_empty() {
        return Ok(());
    }
    let statement = parse_statement(&text).map_err(|e| {
        ParseError::new(
            format!("in statement starting at line {start_line}: {}", e.message),
            start_line + e.line - 1,
            e.column,
        )
    })?;
    entries.push(WorkloadEntry {
        statement,
        weight: pending_weight.take().unwrap_or(1.0),
        text,
    });
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_weight_is_one() {
        let ws = parse_workload_file("SELECT * FROM a;").unwrap();
        assert_eq!(ws.len(), 1);
        assert_eq!(ws[0].weight, 1.0);
    }

    #[test]
    fn weight_directive_applies_to_next_statement_only() {
        let ws = parse_workload_file("-- weight: 2.5\nSELECT * FROM a;\nSELECT * FROM b;").unwrap();
        assert_eq!(ws[0].weight, 2.5);
        assert_eq!(ws[1].weight, 1.0);
    }

    #[test]
    fn multiline_statement() {
        let ws = parse_workload_file("SELECT *\nFROM a,\n  b\nWHERE a.x = b.y;").unwrap();
        assert_eq!(ws.len(), 1);
        assert!(ws[0].text.contains("WHERE"));
    }

    #[test]
    fn last_statement_without_semicolon() {
        let ws = parse_workload_file("SELECT * FROM a").unwrap();
        assert_eq!(ws.len(), 1);
    }

    #[test]
    fn bad_weight_rejected() {
        assert!(parse_workload_file("-- weight: banana\nSELECT 1;").is_err());
        assert!(parse_workload_file("-- weight: -1\nSELECT 1;").is_err());
    }

    #[test]
    fn parse_error_includes_file_line() {
        let err = parse_workload_file("SELECT * FROM a;\n\nSELEC * FROM b;").unwrap_err();
        assert!(err.line >= 3, "line was {}", err.line);
    }

    #[test]
    fn plain_comments_skipped() {
        let ws = parse_workload_file("-- a comment\nSELECT * FROM a;").unwrap();
        assert_eq!(ws.len(), 1);
    }

    #[test]
    fn empty_file_is_empty_workload() {
        assert!(parse_workload_file("").unwrap().is_empty());
        assert!(parse_workload_file("-- only a comment\n")
            .unwrap()
            .is_empty());
    }
}
