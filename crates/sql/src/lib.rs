#![warn(missing_docs)]

//! SQL DML front-end for the `dblayout` workspace.
//!
//! This crate implements the SQL surface the ICDE 2003 layout advisor needs:
//! the advisor consumes a *workload file* of SQL DML statements
//! (`SELECT` / `INSERT` / `UPDATE` / `DELETE`), optionally weighted, and hands
//! each statement to the query optimizer to obtain an execution plan
//! (paper §2.2, §4.2). We therefore implement a lexer, an abstract syntax
//! tree, and a recursive-descent parser for a DML subset rich enough to
//! express the TPC-H-style decision-support queries of the paper's
//! evaluation: multi-way joins (comma and ANSI `JOIN ... ON` syntax),
//! comparison / `BETWEEN` / `IN` / `LIKE` / `IS NULL` predicates, `EXISTS`,
//! `IN (SELECT ...)` and scalar subqueries, aggregation with `GROUP BY` /
//! `HAVING`, `ORDER BY`, and `TOP n`.
//!
//! The parser is deliberately independent of any catalog: name resolution and
//! semantic checks happen in `dblayout-planner`, mirroring how the paper's
//! tool submits statement text to the server in "no-execute" (Showplan) mode.
//!
//! # Example
//!
//! ```
//! use dblayout_sql::parse_statement;
//!
//! let stmt = parse_statement(
//!     "SELECT o_orderdate, SUM(l_extendedprice) \
//!      FROM orders, lineitem \
//!      WHERE o_orderkey = l_orderkey AND o_orderdate < '1995-03-15' \
//!      GROUP BY o_orderdate ORDER BY o_orderdate",
//! )
//! .unwrap();
//! assert!(stmt.is_query());
//! ```

pub mod ast;
pub mod error;
pub mod lexer;
pub mod parser;
pub mod workload_file;

pub use ast::{
    Aggregate, BinaryOp, Expr, FromItem, JoinKind, Literal, OrderItem, Query, SelectItem,
    Statement, UnaryOp,
};
pub use error::{ParseError, Result};
pub use lexer::{tokenize, Token, TokenKind};
pub use parser::{parse_statement, parse_statements, Parser};
pub use workload_file::{parse_workload_file, WorkloadEntry};
