//! Hand-written SQL lexer.
//!
//! Produces a flat token stream with source positions. Keywords are
//! recognized case-insensitively (the token carries the uppercased keyword);
//! identifiers preserve their original case but compare case-insensitively in
//! the planner's catalog lookups.

use crate::error::{ParseError, Result};

/// The kind of a lexed token.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// A reserved word such as `SELECT`, stored uppercased.
    Keyword(String),
    /// An unquoted identifier (table, column, alias).
    Ident(String),
    /// An integer literal.
    Int(i64),
    /// A floating point literal.
    Float(f64),
    /// A single-quoted string literal (quotes stripped, `''` unescaped).
    Str(String),
    /// `=`, `<`, `>`, `<=`, `>=`, `<>` / `!=`.
    Op(String),
    /// `+`, `-`, `*`, `/`.
    Arith(char),
    /// `(`.
    LParen,
    /// `)`.
    RParen,
    /// `,`.
    Comma,
    /// `.`.
    Dot,
    /// `;`.
    Semicolon,
    /// End of input sentinel.
    Eof,
}

/// A token together with its 1-based source position.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// What was lexed.
    pub kind: TokenKind,
    /// 1-based source line.
    pub line: u32,
    /// 1-based source column.
    pub column: u32,
}

/// All words treated as keywords by the parser.
///
/// Anything else alphabetic lexes as an identifier. The set matches the DML
/// subset in the crate docs; it intentionally excludes DDL.
const KEYWORDS: &[&str] = &[
    "SELECT",
    "FROM",
    "WHERE",
    "GROUP",
    "BY",
    "ORDER",
    "HAVING",
    "AS",
    "AND",
    "OR",
    "NOT",
    "IN",
    "BETWEEN",
    "LIKE",
    "IS",
    "NULL",
    "EXISTS",
    "DISTINCT",
    "TOP",
    "ASC",
    "DESC",
    "JOIN",
    "INNER",
    "LEFT",
    "RIGHT",
    "OUTER",
    "ON",
    "INSERT",
    "INTO",
    "VALUES",
    "UPDATE",
    "SET",
    "DELETE",
    "COUNT",
    "SUM",
    "AVG",
    "MIN",
    "MAX",
    "CASE",
    "WHEN",
    "THEN",
    "ELSE",
    "END",
    "SUBSTRING",
    "EXTRACT",
    "YEAR",
    "UNION",
    "ALL",
    "ANY",
    "INTERVAL",
    "DATE",
];

fn is_ident_start(c: char) -> bool {
    c.is_ascii_alphabetic() || c == '_'
}

fn is_ident_cont(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    column: u32,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Self {
            src: src.as_bytes(),
            pos: 0,
            line: 1,
            column: 1,
        }
    }

    fn peek(&self) -> Option<char> {
        self.src.get(self.pos).map(|&b| b as char)
    }

    fn peek2(&self) -> Option<char> {
        self.src.get(self.pos + 1).map(|&b| b as char)
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
            self.column = 1;
        } else {
            self.column += 1;
        }
        Some(c)
    }

    fn err(&self, msg: impl Into<String>) -> ParseError {
        ParseError::new(msg, self.line, self.column)
    }

    fn skip_ws_and_comments(&mut self) -> Result<()> {
        loop {
            match self.peek() {
                Some(c) if c.is_ascii_whitespace() => {
                    self.bump();
                }
                Some('-') if self.peek2() == Some('-') => {
                    while let Some(c) = self.bump() {
                        if c == '\n' {
                            break;
                        }
                    }
                }
                Some('/') if self.peek2() == Some('*') => {
                    let (line, column) = (self.line, self.column);
                    self.bump();
                    self.bump();
                    loop {
                        match self.bump() {
                            Some('*') if self.peek() == Some('/') => {
                                self.bump();
                                break;
                            }
                            Some(_) => {}
                            None => {
                                return Err(ParseError::new(
                                    "unterminated block comment",
                                    line,
                                    column,
                                ))
                            }
                        }
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    fn lex_number(&mut self) -> Result<TokenKind> {
        let start = self.pos;
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.bump();
        }
        let mut is_float = false;
        if self.peek() == Some('.') && matches!(self.peek2(), Some(c) if c.is_ascii_digit()) {
            is_float = true;
            self.bump();
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.bump();
            }
        }
        if matches!(self.peek(), Some('e') | Some('E')) {
            // Exponent: only consume when followed by a valid exponent body,
            // otherwise `1e` would eat the identifier start of e.g. `1elephant`.
            let mut look = self.pos + 1;
            if matches!(self.src.get(look), Some(b'+') | Some(b'-')) {
                look += 1;
            }
            if matches!(self.src.get(look), Some(b) if b.is_ascii_digit()) {
                is_float = true;
                self.bump();
                if matches!(self.peek(), Some('+') | Some('-')) {
                    self.bump();
                }
                while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                    self.bump();
                }
            }
        }
        let text = std::str::from_utf8(&self.src[start..self.pos]).expect("ascii");
        if is_float {
            text.parse::<f64>()
                .map(TokenKind::Float)
                .map_err(|e| self.err(format!("bad float literal `{text}`: {e}")))
        } else {
            text.parse::<i64>()
                .map(TokenKind::Int)
                .map_err(|e| self.err(format!("bad integer literal `{text}`: {e}")))
        }
    }

    fn lex_string(&mut self) -> Result<TokenKind> {
        let (line, column) = (self.line, self.column);
        self.bump(); // opening quote
        let mut out = String::new();
        loop {
            match self.bump() {
                Some('\'') => {
                    if self.peek() == Some('\'') {
                        self.bump();
                        out.push('\'');
                    } else {
                        return Ok(TokenKind::Str(out));
                    }
                }
                Some(c) => out.push(c),
                None => return Err(ParseError::new("unterminated string literal", line, column)),
            }
        }
    }

    fn lex_word(&mut self) -> TokenKind {
        let start = self.pos;
        while matches!(self.peek(), Some(c) if is_ident_cont(c)) {
            self.bump();
        }
        let text = std::str::from_utf8(&self.src[start..self.pos]).expect("ascii");
        let upper = text.to_ascii_uppercase();
        if KEYWORDS.contains(&upper.as_str()) {
            TokenKind::Keyword(upper)
        } else {
            TokenKind::Ident(text.to_string())
        }
    }

    fn next_token(&mut self) -> Result<Token> {
        self.skip_ws_and_comments()?;
        let (line, column) = (self.line, self.column);
        let kind = match self.peek() {
            None => TokenKind::Eof,
            Some(c) if c.is_ascii_digit() => self.lex_number()?,
            Some('\'') => self.lex_string()?,
            Some(c) if is_ident_start(c) => self.lex_word(),
            Some('(') => {
                self.bump();
                TokenKind::LParen
            }
            Some(')') => {
                self.bump();
                TokenKind::RParen
            }
            Some(',') => {
                self.bump();
                TokenKind::Comma
            }
            Some('.') => {
                self.bump();
                TokenKind::Dot
            }
            Some(';') => {
                self.bump();
                TokenKind::Semicolon
            }
            Some(c @ ('+' | '-' | '*' | '/')) => {
                self.bump();
                TokenKind::Arith(c)
            }
            Some('=') => {
                self.bump();
                TokenKind::Op("=".into())
            }
            Some('<') => {
                self.bump();
                match self.peek() {
                    Some('=') => {
                        self.bump();
                        TokenKind::Op("<=".into())
                    }
                    Some('>') => {
                        self.bump();
                        TokenKind::Op("<>".into())
                    }
                    _ => TokenKind::Op("<".into()),
                }
            }
            Some('>') => {
                self.bump();
                if self.peek() == Some('=') {
                    self.bump();
                    TokenKind::Op(">=".into())
                } else {
                    TokenKind::Op(">".into())
                }
            }
            Some('!') => {
                self.bump();
                if self.peek() == Some('=') {
                    self.bump();
                    TokenKind::Op("<>".into())
                } else {
                    return Err(ParseError::new("expected `=` after `!`", line, column));
                }
            }
            Some(c) => {
                return Err(ParseError::new(
                    format!("unexpected character `{c}`"),
                    line,
                    column,
                ))
            }
        };
        Ok(Token { kind, line, column })
    }
}

/// Tokenizes `src` into a vector ending with a single [`TokenKind::Eof`].
pub fn tokenize(src: &str) -> Result<Vec<Token>> {
    let mut lexer = Lexer::new(src);
    let mut tokens = Vec::new();
    loop {
        let tok = lexer.next_token()?;
        let done = tok.kind == TokenKind::Eof;
        tokens.push(tok);
        if done {
            return Ok(tokens);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        tokenize(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn keywords_are_case_insensitive() {
        assert_eq!(
            kinds("select SeLeCt SELECT"),
            vec![
                TokenKind::Keyword("SELECT".into()),
                TokenKind::Keyword("SELECT".into()),
                TokenKind::Keyword("SELECT".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn identifiers_keep_case() {
        assert_eq!(
            kinds("LineItem"),
            vec![TokenKind::Ident("LineItem".into()), TokenKind::Eof]
        );
    }

    #[test]
    fn numbers_int_and_float() {
        assert_eq!(
            kinds("42 2.75 1e3 2.5E-2"),
            vec![
                TokenKind::Int(42),
                TokenKind::Float(2.75),
                TokenKind::Float(1000.0),
                TokenKind::Float(0.025),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn exponent_not_consumed_without_digits() {
        // `1e` followed by a letter is an int then an identifier.
        assert_eq!(
            kinds("1elephant"),
            vec![
                TokenKind::Int(1),
                TokenKind::Ident("elephant".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn string_with_escaped_quote() {
        assert_eq!(
            kinds("'o''brien'"),
            vec![TokenKind::Str("o'brien".into()), TokenKind::Eof]
        );
    }

    #[test]
    fn unterminated_string_errors() {
        let err = tokenize("SELECT 'abc").unwrap_err();
        assert!(err.message.contains("unterminated string"));
        assert_eq!(err.line, 1);
        assert_eq!(err.column, 8);
    }

    #[test]
    fn operators_and_punctuation() {
        assert_eq!(
            kinds("a <= b <> c != d >= e < f > g = h"),
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Op("<=".into()),
                TokenKind::Ident("b".into()),
                TokenKind::Op("<>".into()),
                TokenKind::Ident("c".into()),
                TokenKind::Op("<>".into()),
                TokenKind::Ident("d".into()),
                TokenKind::Op(">=".into()),
                TokenKind::Ident("e".into()),
                TokenKind::Op("<".into()),
                TokenKind::Ident("f".into()),
                TokenKind::Op(">".into()),
                TokenKind::Ident("g".into()),
                TokenKind::Op("=".into()),
                TokenKind::Ident("h".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn line_comments_skipped() {
        assert_eq!(
            kinds("SELECT -- comment\n 1"),
            vec![
                TokenKind::Keyword("SELECT".into()),
                TokenKind::Int(1),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn block_comments_skipped() {
        assert_eq!(
            kinds("SELECT /* a\nb */ 1"),
            vec![
                TokenKind::Keyword("SELECT".into()),
                TokenKind::Int(1),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn unterminated_block_comment_errors() {
        assert!(tokenize("/* never ends").is_err());
    }

    #[test]
    fn positions_track_lines() {
        let toks = tokenize("SELECT\n  a").unwrap();
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[1].line, 2);
        assert_eq!(toks[1].column, 3);
    }

    #[test]
    fn bang_without_equals_errors() {
        assert!(tokenize("a ! b").is_err());
    }

    #[test]
    fn qualified_name_lexes_with_dot() {
        assert_eq!(
            kinds("lineitem.l_orderkey"),
            vec![
                TokenKind::Ident("lineitem".into()),
                TokenKind::Dot,
                TokenKind::Ident("l_orderkey".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn empty_input_is_just_eof() {
        assert_eq!(kinds("   \n\t "), vec![TokenKind::Eof]);
    }
}
