//! Cache correctness: a warm run must reuse every unchanged file's
//! summary and still produce bit-identical findings; editing one file
//! re-scans exactly that file; diff scoping never loses a finding (the
//! union of in-scope and out-of-scope diagnostics equals the cold run).

use dblayout_lint::{analyze, analyze_with, AnalyzeOptions, Diagnostic, InputFile, LintReport};

fn file(path: &str, text: &str) -> InputFile {
    InputFile {
        path: path.into(),
        text: text.into(),
    }
}

fn corpus() -> Vec<InputFile> {
    vec![
        file(
            "crates/server/src/a.rs",
            "pub fn f(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\n",
        ),
        file(
            "crates/server/src/b.rs",
            "pub fn g(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\n",
        ),
        file(
            "crates/core/src/clean.rs",
            "pub fn add(a: u64, b: u64) -> u64 { a + b }\n",
        ),
    ]
}

fn keys(diags: &[Diagnostic]) -> Vec<(&'static str, String, u32, String)> {
    diags
        .iter()
        .map(|d| (d.rule, d.file.clone(), d.line, d.message.clone()))
        .collect()
}

fn sorted_union(r: &LintReport) -> Vec<(&'static str, String, u32, String)> {
    let mut all = keys(&r.diagnostics);
    all.extend(keys(&r.out_of_scope));
    all.sort();
    all
}

#[test]
fn warm_run_is_bit_identical_and_fully_cached() {
    let files = corpus();
    let (cold, cache) = analyze_with(&files, None, &AnalyzeOptions::default());
    assert!(cold.file_timings.iter().all(|t| !t.cached));
    assert_eq!(cold.warnings(), 2);

    let opts = AnalyzeOptions {
        cache: Some(&cache),
        ..AnalyzeOptions::default()
    };
    let (warm, _) = analyze_with(&files, None, &opts);
    assert!(
        warm.file_timings.iter().all(|t| t.cached),
        "every unchanged file comes from the cache"
    );
    assert_eq!(keys(&cold.diagnostics), keys(&warm.diagnostics));
    assert_eq!(keys(&cold.suppressed), keys(&warm.suppressed));
}

#[test]
fn editing_one_file_rescans_exactly_that_file() {
    let files = corpus();
    let (_, cache) = analyze_with(&files, None, &AnalyzeOptions::default());

    let mut edited = corpus();
    edited[0].text = "pub fn f(x: Option<u32>) -> u32 {\n    x.unwrap_or(0)\n}\n".into();
    let opts = AnalyzeOptions {
        cache: Some(&cache),
        ..AnalyzeOptions::default()
    };
    let (warm, next_cache) = analyze_with(&edited, None, &opts);
    let rescanned: Vec<&str> = warm
        .file_timings
        .iter()
        .filter(|t| !t.cached)
        .map(|t| t.path.as_str())
        .collect();
    assert_eq!(rescanned, ["crates/server/src/a.rs"]);
    // The fix in a.rs lands; b.rs's cached finding survives.
    assert_eq!(warm.warnings(), 1);
    assert_eq!(warm.diagnostics[0].file, "crates/server/src/b.rs");

    // The refreshed cache makes the next run fully warm.
    let opts = AnalyzeOptions {
        cache: Some(&next_cache),
        ..AnalyzeOptions::default()
    };
    let (warm2, _) = analyze_with(&edited, None, &opts);
    assert!(warm2.file_timings.iter().all(|t| t.cached));
}

#[test]
fn diff_scope_partitions_without_losing_findings() {
    let files = corpus();
    let cold = analyze(&files, None);

    let changed = vec!["crates/server/src/a.rs".to_string()];
    let opts = AnalyzeOptions {
        changed: Some(&changed),
        diff_base: Some("main".into()),
        ..AnalyzeOptions::default()
    };
    let (scoped, _) = analyze_with(&files, None, &opts);
    assert_eq!(scoped.warnings(), 1, "{}", scoped.render());
    assert_eq!(scoped.diagnostics[0].file, "crates/server/src/a.rs");
    assert_eq!(scoped.out_of_scope.len(), 1);
    assert_eq!(scoped.out_of_scope[0].file, "crates/server/src/b.rs");

    let mut cold_keys = keys(&cold.diagnostics);
    cold_keys.sort();
    assert_eq!(
        sorted_union(&scoped),
        cold_keys,
        "diff scoping only partitions; it never drops"
    );
}

#[test]
fn cold_warm_and_diff_report_the_same_union() {
    let files = corpus();
    let cold = analyze(&files, None);
    let mut cold_keys = keys(&cold.diagnostics);
    cold_keys.sort();

    let (_, cache) = analyze_with(&files, None, &AnalyzeOptions::default());
    let changed = vec!["crates/core/src/clean.rs".to_string()];
    let opts = AnalyzeOptions {
        cache: Some(&cache),
        changed: Some(&changed),
        diff_base: Some("main".into()),
    };
    let (warm_diff, _) = analyze_with(&files, None, &opts);
    assert!(warm_diff.file_timings.iter().all(|t| t.cached));
    assert_eq!(sorted_union(&warm_diff), cold_keys);
}

#[test]
fn cross_file_rules_stay_in_scope_when_a_dependency_changes() {
    // The R5 protocol join: engine.rs is untouched, but the finding stays
    // in scope because protocol.rs (a declared dependency of R5) changed.
    let files = [
        file(
            "crates/server/src/protocol.rs",
            "pub enum Request {\n    OpenSession,\n    Shutdown,\n}\n",
        ),
        file(
            "crates/server/src/engine.rs",
            "use super::protocol::Request;\npub fn dispatch(r: &Request) -> &'static str {\n    match r {\n        Request::OpenSession => \"open\",\n        _ => \"dropped\",\n    }\n}\n",
        ),
    ];
    let changed = vec!["crates/server/src/protocol.rs".to_string()];
    let opts = AnalyzeOptions {
        changed: Some(&changed),
        diff_base: Some("main".into()),
        ..AnalyzeOptions::default()
    };
    let (scoped, _) = analyze_with(&files, None, &opts);
    assert!(
        scoped.diagnostics.iter().any(|d| d.rule == "R5"),
        "undispatched Shutdown must not hide behind diff scoping: {}",
        scoped.render()
    );
}
