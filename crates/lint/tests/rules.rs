//! Per-rule fixture tests: every seeded violation trips its rule (so a
//! `--deny-warnings` run would exit non-zero), every clean twin passes,
//! and suppression directives behave.

use dblayout_lint::{analyze, InputFile, LintReport, Severity};

fn file(path: &str, text: &str) -> InputFile {
    InputFile {
        path: path.into(),
        text: text.into(),
    }
}

/// Rule ids of the active (unsuppressed) diagnostics.
fn rules_hit(report: &LintReport) -> Vec<&'static str> {
    report.diagnostics.iter().map(|d| d.rule).collect()
}

#[test]
fn r1_panic_shortcuts_in_hot_path() {
    let report = analyze(
        &[file(
            "crates/server/src/fixture.rs",
            include_str!("fixtures/r1_hot_unwrap.rs"),
        )],
        None,
    );
    // One per seeded shape: the index, the unwrap, the unreachable! —
    // and nothing from the #[cfg(test)] module.
    assert_eq!(
        rules_hit(&report),
        ["R1", "R1", "R1"],
        "{}",
        report.render()
    );
    assert!(!report.is_clean(true));

    let clean = analyze(
        &[file(
            "crates/server/src/fixture.rs",
            include_str!("fixtures/r1_clean.rs"),
        )],
        None,
    );
    assert!(clean.is_clean(true), "{}", clean.render());
}

#[test]
fn r1_is_scoped_to_hot_paths() {
    // The same panicking source outside the hot-path crates is not R1's
    // business (the catalog builder may unwrap all it wants).
    let report = analyze(
        &[file(
            "crates/catalog/src/fixture.rs",
            include_str!("fixtures/r1_hot_unwrap.rs"),
        )],
        None,
    );
    assert!(report.is_clean(true), "{}", report.render());
}

#[test]
fn r2_bare_lock_unwrap() {
    let report = analyze(
        &[file(
            "crates/server/src/fixture.rs",
            include_str!("fixtures/r2_bare_lock.rs"),
        )],
        None,
    );
    assert!(rules_hit(&report).contains(&"R2"), "{}", report.render());
    assert!(!report.is_clean(true));

    let clean = analyze(
        &[file(
            "crates/server/src/fixture.rs",
            include_str!("fixtures/r2_clean.rs"),
        )],
        None,
    );
    assert!(clean.is_clean(true), "{}", clean.render());
}

#[test]
fn r3_nan_unsafe_comparisons() {
    let report = analyze(
        &[file(
            "crates/core/src/fixture.rs",
            include_str!("fixtures/r3_float.rs"),
        )],
        None,
    );
    assert_eq!(rules_hit(&report), ["R3", "R3"], "{}", report.render());
    assert!(!report.is_clean(true));

    let clean = analyze(
        &[file(
            "crates/core/src/fixture.rs",
            include_str!("fixtures/r3_clean.rs"),
        )],
        None,
    );
    assert!(clean.is_clean(true), "{}", clean.render());
}

#[test]
fn r4_two_mutex_cycle() {
    let report = analyze(
        &[file(
            "crates/server/src/fixture.rs",
            include_str!("fixtures/r4_cycle.rs"),
        )],
        None,
    );
    assert!(rules_hit(&report).contains(&"R4"), "{}", report.render());
    assert!(!report.is_clean(true));
    let cycle = report
        .diagnostics
        .iter()
        .find(|d| d.rule == "R4")
        .map(|d| d.message.as_str())
        .unwrap_or_default();
    assert!(
        cycle.contains("queue") && cycle.contains("registry"),
        "cycle names both mutexes: {cycle}"
    );

    let clean = analyze(
        &[file(
            "crates/server/src/fixture.rs",
            include_str!("fixtures/r4_clean.rs"),
        )],
        None,
    );
    assert!(clean.is_clean(true), "{}", clean.render());
}

#[test]
fn r4_cycle_across_files() {
    // The graph merges acquisitions by mutex name across the crate: the
    // opposite orders live in different files here.
    let cycle = include_str!("fixtures/r4_cycle.rs");
    let (drain, report_fn) = cycle.split_once("pub fn report").expect("both fns");
    let report = analyze(
        &[
            file("crates/server/src/a.rs", drain),
            file(
                "crates/server/src/b.rs",
                &format!("use std::sync::{{Mutex, PoisonError}};\npub struct Shared {{ pub queue: Mutex<Vec<u64>>, pub registry: Mutex<Vec<u64>> }}\npub fn report{report_fn}"),
            ),
        ],
        None,
    );
    assert!(rules_hit(&report).contains(&"R4"), "{}", report.render());
}

#[test]
fn r5_undispatched_and_undocumented_variant() {
    let files = [
        file(
            "crates/server/src/protocol.rs",
            include_str!("fixtures/r5_protocol.rs"),
        ),
        file(
            "crates/server/src/engine.rs",
            include_str!("fixtures/r5_engine.rs"),
        ),
    ];
    // `Shutdown` is neither dispatched nor documented: two findings.
    let report = analyze(&files, Some("| open_session | stats |"));
    assert_eq!(rules_hit(&report), ["R5", "R5"], "{}", report.render());
    assert!(!report.is_clean(true));

    // Documenting it leaves exactly the missing dispatch arm.
    let report = analyze(&files, Some("| open_session | stats | shutdown |"));
    assert_eq!(rules_hit(&report), ["R5"], "{}", report.render());
    assert!(report.diagnostics[0].message.contains("Shutdown"));

    // Wiring the dispatch too makes the protocol exhaustive.
    let full_engine = include_str!("fixtures/r5_engine.rs")
        .replace("_ => \"dropped\"", "Request::Shutdown => \"shutdown\"");
    let report = analyze(
        &[
            file(
                "crates/server/src/protocol.rs",
                include_str!("fixtures/r5_protocol.rs"),
            ),
            file("crates/server/src/engine.rs", &full_engine),
        ],
        Some("| open_session | stats | shutdown |"),
    );
    assert!(report.is_clean(true), "{}", report.render());
}

#[test]
fn suppression_with_reason_silences_and_is_reported() {
    let report = analyze(
        &[file(
            "crates/server/src/fixture.rs",
            include_str!("fixtures/r1_suppressed.rs"),
        )],
        None,
    );
    assert!(report.is_clean(true), "{}", report.render());
    assert_eq!(report.suppressed.len(), 1);
    assert!(
        report.suppressed[0]
            .message
            .contains("caller guarantees non-empty"),
        "reason travels into the report: {}",
        report.suppressed[0].message
    );
}

#[test]
fn suppression_without_reason_is_fatal() {
    let report = analyze(
        &[file(
            "crates/server/src/fixture.rs",
            include_str!("fixtures/r1_suppressed_bad.rs"),
        )],
        None,
    );
    // The malformed directive is an error (fatal even without
    // --deny-warnings) and the finding it aimed at stays active.
    assert_eq!(report.errors(), 1, "{}", report.render());
    assert!(rules_hit(&report).contains(&"R1"));
    assert!(!report.is_clean(false));
    assert!(report
        .diagnostics
        .iter()
        .any(|d| d.severity == Severity::Error && d.message.contains("reason")));
}

#[test]
fn r6_hash_iteration_and_reachable_wall_clock() {
    let files = [
        file(
            "crates/core/src/tsgreedy.rs",
            include_str!("fixtures/r6_det_zone.rs"),
        ),
        file(
            "crates/core/src/costmodel.rs",
            include_str!("fixtures/r6_time_helper.rs"),
        ),
    ];
    let report = analyze(&files, None);
    // One HashMap iteration in the seed file, one Instant::now in the
    // helper it calls — and nothing from the #[cfg(test)] module.
    assert_eq!(rules_hit(&report), ["R6", "R6"], "{}", report.render());
    let clock = report
        .diagnostics
        .iter()
        .find(|d| d.file.ends_with("costmodel.rs"))
        .expect("wall-clock finding");
    assert!(
        clock.message.contains("ts_greedy -> score_candidates"),
        "finding explains the zone membership: {}",
        clock.message
    );

    let clean = analyze(
        &[file(
            "crates/core/src/tsgreedy.rs",
            include_str!("fixtures/r6_clean.rs"),
        )],
        None,
    );
    assert!(clean.is_clean(true), "{}", clean.render());
}

#[test]
fn r6_is_scoped_to_the_deterministic_zone() {
    // The same hash iteration outside the zone (no seed file defines or
    // reaches it) is not R6's business.
    let report = analyze(
        &[file(
            "crates/catalog/src/fixture.rs",
            include_str!("fixtures/r6_det_zone.rs"),
        )],
        None,
    );
    assert!(report.is_clean(true), "{}", report.render());
}

#[test]
fn r7_atomics_forbidden_outside_sanctioned_zones() {
    let report = analyze(
        &[file(
            "crates/catalog/src/fixture.rs",
            include_str!("fixtures/r7_forbidden.rs"),
        )],
        None,
    );
    // The AtomicU64 field and the fetch_add's Ordering, one per line.
    assert_eq!(rules_hit(&report), ["R7", "R7"], "{}", report.render());
}

#[test]
fn r7_ordering_policy_per_zone() {
    let report = analyze(
        &[file(
            "crates/obs/src/fixture.rs",
            include_str!("fixtures/r7_bad_ordering.rs"),
        )],
        None,
    );
    // Atomics are sanctioned in obs, but only Relaxed is in the policy.
    assert_eq!(rules_hit(&report), ["R7"], "{}", report.render());
    assert!(report.diagnostics[0].message.contains("AcqRel"));

    let clean = analyze(
        &[file(
            "crates/obs/src/fixture.rs",
            include_str!("fixtures/r7_clean.rs"),
        )],
        None,
    );
    assert!(clean.is_clean(true), "{}", clean.render());
}

#[test]
fn r8_lossy_casts_in_numeric_kernels() {
    let report = analyze(
        &[file(
            "crates/disksim/src/fixture.rs",
            include_str!("fixtures/r8_lossy.rs"),
        )],
        None,
    );
    // The f64→f32 narrowing and the .ceil() as u64 truncation; the
    // int→float widenings are exact and exempt.
    assert_eq!(rules_hit(&report), ["R8", "R8"], "{}", report.render());

    let clean = analyze(
        &[file(
            "crates/disksim/src/fixture.rs",
            include_str!("fixtures/r8_clean.rs"),
        )],
        None,
    );
    assert!(clean.is_clean(true), "{}", clean.render());
    assert_eq!(clean.suppressed.len(), 1, "the reasoned truncation");
}

#[test]
fn r8_is_scoped_to_kernels() {
    // The same casts in the catalog builder are not R8's business.
    let report = analyze(
        &[file(
            "crates/catalog/src/fixture.rs",
            include_str!("fixtures/r8_lossy.rs"),
        )],
        None,
    );
    assert!(report.is_clean(true), "{}", report.render());
}

#[test]
fn r9_swallowed_errors_on_migration_paths() {
    let report = analyze(
        &[file(
            "crates/relayout/src/fixture.rs",
            include_str!("fixtures/r9_swallowed.rs"),
        )],
        None,
    );
    // `let _ =` and the statement-level `.ok()`; the test module copy of
    // both is exempt.
    assert_eq!(rules_hit(&report), ["R9", "R9"], "{}", report.render());

    let clean = analyze(
        &[file(
            "crates/relayout/src/fixture.rs",
            include_str!("fixtures/r9_clean.rs"),
        )],
        None,
    );
    assert!(clean.is_clean(true), "{}", clean.render());
}

#[test]
fn r10_registry_drift_is_caught() {
    let files = [
        file(
            "crates/obs/src/counters.rs",
            include_str!("fixtures/r10_registry_drift.rs"),
        ),
        file(
            "crates/server/src/metrics.rs",
            include_str!("fixtures/r10_server_render.rs"),
        ),
        file(
            "crates/cli/src/explain.rs",
            include_str!("fixtures/r10_cli_render.rs"),
        ),
    ];
    // COUNT lags, ALL is missing ParChunkItems, the scheduling class
    // names a ghost variant, and DESIGN.md lacks par_chunk_items.
    let report = analyze(&files, Some("graph_node_updates graph_edge_updates"));
    assert_eq!(
        rules_hit(&report),
        ["R10", "R10", "R10", "R10"],
        "{}",
        report.render()
    );
    let all = report.render();
    assert!(all.contains("COUNT"), "{all}");
    assert!(all.contains("ParChunkItems"), "{all}");
    assert!(all.contains("ParPoolFallbacks"), "{all}");
    assert!(all.contains("par_chunk_items"), "{all}");
}

#[test]
fn r10_coherent_registry_is_clean_and_rule_is_inert_without_it() {
    let files = [
        file(
            "crates/obs/src/counters.rs",
            include_str!("fixtures/r10_registry_clean.rs"),
        ),
        file(
            "crates/server/src/metrics.rs",
            include_str!("fixtures/r10_server_render.rs"),
        ),
        file(
            "crates/cli/src/explain.rs",
            include_str!("fixtures/r10_cli_render.rs"),
        ),
    ];
    let report = analyze(
        &files,
        Some("graph_node_updates graph_edge_updates par_chunk_items"),
    );
    assert!(report.is_clean(true), "{}", report.render());

    // Dropping the render surfaces turns them into findings.
    let report = analyze(
        &files[..1],
        Some("graph_node_updates graph_edge_updates par_chunk_items"),
    );
    assert_eq!(rules_hit(&report), ["R10", "R10"], "{}", report.render());

    // Fixture runs without counters.rs see nothing from R10.
    let report = analyze(&files[1..], None);
    assert!(report.is_clean(true), "{}", report.render());
}

#[test]
fn unused_suppression_is_a_finding() {
    let report = analyze(
        &[file(
            "crates/server/src/fixture.rs",
            include_str!("fixtures/unused_suppression.rs"),
        )],
        None,
    );
    assert_eq!(
        rules_hit(&report),
        ["unused-suppression"],
        "{}",
        report.render()
    );
    assert!(report.diagnostics[0].message.contains("R1"));
    assert!(!report.is_clean(true), "stale directives fail CI");
}
