//! Per-rule fixture tests: every seeded violation trips its rule (so a
//! `--deny-warnings` run would exit non-zero), every clean twin passes,
//! and suppression directives behave.

use dblayout_lint::{analyze, InputFile, LintReport, Severity};

fn file(path: &str, text: &str) -> InputFile {
    InputFile {
        path: path.into(),
        text: text.into(),
    }
}

/// Rule ids of the active (unsuppressed) diagnostics.
fn rules_hit(report: &LintReport) -> Vec<&'static str> {
    report.diagnostics.iter().map(|d| d.rule).collect()
}

#[test]
fn r1_panic_shortcuts_in_hot_path() {
    let report = analyze(
        &[file(
            "crates/server/src/fixture.rs",
            include_str!("fixtures/r1_hot_unwrap.rs"),
        )],
        None,
    );
    // One per seeded shape: the index, the unwrap, the unreachable! —
    // and nothing from the #[cfg(test)] module.
    assert_eq!(
        rules_hit(&report),
        ["R1", "R1", "R1"],
        "{}",
        report.render()
    );
    assert!(!report.is_clean(true));

    let clean = analyze(
        &[file(
            "crates/server/src/fixture.rs",
            include_str!("fixtures/r1_clean.rs"),
        )],
        None,
    );
    assert!(clean.is_clean(true), "{}", clean.render());
}

#[test]
fn r1_is_scoped_to_hot_paths() {
    // The same panicking source outside the hot-path crates is not R1's
    // business (the catalog builder may unwrap all it wants).
    let report = analyze(
        &[file(
            "crates/catalog/src/fixture.rs",
            include_str!("fixtures/r1_hot_unwrap.rs"),
        )],
        None,
    );
    assert!(report.is_clean(true), "{}", report.render());
}

#[test]
fn r2_bare_lock_unwrap() {
    let report = analyze(
        &[file(
            "crates/server/src/fixture.rs",
            include_str!("fixtures/r2_bare_lock.rs"),
        )],
        None,
    );
    assert!(rules_hit(&report).contains(&"R2"), "{}", report.render());
    assert!(!report.is_clean(true));

    let clean = analyze(
        &[file(
            "crates/server/src/fixture.rs",
            include_str!("fixtures/r2_clean.rs"),
        )],
        None,
    );
    assert!(clean.is_clean(true), "{}", clean.render());
}

#[test]
fn r3_nan_unsafe_comparisons() {
    let report = analyze(
        &[file(
            "crates/core/src/fixture.rs",
            include_str!("fixtures/r3_float.rs"),
        )],
        None,
    );
    assert_eq!(rules_hit(&report), ["R3", "R3"], "{}", report.render());
    assert!(!report.is_clean(true));

    let clean = analyze(
        &[file(
            "crates/core/src/fixture.rs",
            include_str!("fixtures/r3_clean.rs"),
        )],
        None,
    );
    assert!(clean.is_clean(true), "{}", clean.render());
}

#[test]
fn r4_two_mutex_cycle() {
    let report = analyze(
        &[file(
            "crates/server/src/fixture.rs",
            include_str!("fixtures/r4_cycle.rs"),
        )],
        None,
    );
    assert!(rules_hit(&report).contains(&"R4"), "{}", report.render());
    assert!(!report.is_clean(true));
    let cycle = report
        .diagnostics
        .iter()
        .find(|d| d.rule == "R4")
        .map(|d| d.message.as_str())
        .unwrap_or_default();
    assert!(
        cycle.contains("queue") && cycle.contains("registry"),
        "cycle names both mutexes: {cycle}"
    );

    let clean = analyze(
        &[file(
            "crates/server/src/fixture.rs",
            include_str!("fixtures/r4_clean.rs"),
        )],
        None,
    );
    assert!(clean.is_clean(true), "{}", clean.render());
}

#[test]
fn r4_cycle_across_files() {
    // The graph merges acquisitions by mutex name across the crate: the
    // opposite orders live in different files here.
    let cycle = include_str!("fixtures/r4_cycle.rs");
    let (drain, report_fn) = cycle.split_once("pub fn report").expect("both fns");
    let report = analyze(
        &[
            file("crates/server/src/a.rs", drain),
            file(
                "crates/server/src/b.rs",
                &format!("use std::sync::{{Mutex, PoisonError}};\npub struct Shared {{ pub queue: Mutex<Vec<u64>>, pub registry: Mutex<Vec<u64>> }}\npub fn report{report_fn}"),
            ),
        ],
        None,
    );
    assert!(rules_hit(&report).contains(&"R4"), "{}", report.render());
}

#[test]
fn r5_undispatched_and_undocumented_variant() {
    let files = [
        file(
            "crates/server/src/protocol.rs",
            include_str!("fixtures/r5_protocol.rs"),
        ),
        file(
            "crates/server/src/engine.rs",
            include_str!("fixtures/r5_engine.rs"),
        ),
    ];
    // `Shutdown` is neither dispatched nor documented: two findings.
    let report = analyze(&files, Some("| open_session | stats |"));
    assert_eq!(rules_hit(&report), ["R5", "R5"], "{}", report.render());
    assert!(!report.is_clean(true));

    // Documenting it leaves exactly the missing dispatch arm.
    let report = analyze(&files, Some("| open_session | stats | shutdown |"));
    assert_eq!(rules_hit(&report), ["R5"], "{}", report.render());
    assert!(report.diagnostics[0].message.contains("Shutdown"));

    // Wiring the dispatch too makes the protocol exhaustive.
    let full_engine = include_str!("fixtures/r5_engine.rs")
        .replace("_ => \"dropped\"", "Request::Shutdown => \"shutdown\"");
    let report = analyze(
        &[
            file(
                "crates/server/src/protocol.rs",
                include_str!("fixtures/r5_protocol.rs"),
            ),
            file("crates/server/src/engine.rs", &full_engine),
        ],
        Some("| open_session | stats | shutdown |"),
    );
    assert!(report.is_clean(true), "{}", report.render());
}

#[test]
fn suppression_with_reason_silences_and_is_reported() {
    let report = analyze(
        &[file(
            "crates/server/src/fixture.rs",
            include_str!("fixtures/r1_suppressed.rs"),
        )],
        None,
    );
    assert!(report.is_clean(true), "{}", report.render());
    assert_eq!(report.suppressed.len(), 1);
    assert!(
        report.suppressed[0]
            .message
            .contains("caller guarantees non-empty"),
        "reason travels into the report: {}",
        report.suppressed[0].message
    );
}

#[test]
fn suppression_without_reason_is_fatal() {
    let report = analyze(
        &[file(
            "crates/server/src/fixture.rs",
            include_str!("fixtures/r1_suppressed_bad.rs"),
        )],
        None,
    );
    // The malformed directive is an error (fatal even without
    // --deny-warnings) and the finding it aimed at stays active.
    assert_eq!(report.errors(), 1, "{}", report.render());
    assert!(rules_hit(&report).contains(&"R1"));
    assert!(!report.is_clean(false));
    assert!(report
        .diagnostics
        .iter()
        .any(|d| d.severity == Severity::Error && d.message.contains("reason")));
}
