// R3 fixture: NaN-unsafe float comparisons.

pub fn cheaper(a: f64, b: f64) -> bool {
    a.partial_cmp(&b) == Some(std::cmp::Ordering::Less)
}

pub fn is_free(cost: f64) -> bool {
    cost == 0.0
}
