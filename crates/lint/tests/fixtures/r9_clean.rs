//! Clean twin of `r9_swallowed.rs`: the error is propagated, and the
//! named `_guard`-style binding is a lifetime extension, not a discard.
//! Analyzed at `crates/relayout/src/fixture.rs`.
use std::fs::File;

pub fn persist(path: &str) -> std::io::Result<()> {
    let _removed = std::fs::remove_file(path);
    File::create(path)?;
    Ok(())
}
