//! A well-formed suppression whose finding no longer exists: the
//! directive itself becomes the finding (`unused-suppression`), so stale
//! audit trail cannot accumulate. Analyzed at
//! `crates/server/src/fixture.rs`.
// dblayout::allow(R1, reason = "stale: the unwrap below was removed in a refactor")
pub fn fine() -> u32 {
    0
}
