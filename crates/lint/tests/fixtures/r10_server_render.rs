//! Minimal Prometheus exposition stand-in: calls `.pairs()` outside
//! tests. Analyzed at `crates/server/src/metrics.rs`.
use dblayout_obs::counters::CounterSnapshot;

pub fn render(snapshot: &CounterSnapshot) -> String {
    let mut out = String::new();
    for (name, value) in snapshot.pairs() {
        out.push_str(name);
        out.push(' ');
        out.push_str(&value.to_string());
        out.push('\n');
    }
    out
}
