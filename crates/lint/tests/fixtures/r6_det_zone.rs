//! Seeded R6 violations: hash-order iteration inside the deterministic
//! zone, plus a wall-clock read reachable from it through another file
//! (see `r6_time_helper.rs`). Analyzed at `crates/core/src/tsgreedy.rs`.
use std::collections::HashMap;

pub fn ts_greedy(weights: &HashMap<u64, f64>) -> f64 {
    let mut total = 0.0;
    for (_, w) in weights.iter() {
        total += w;
    }
    total + crate::costmodel::score_candidates(3) as f64
}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;

    #[test]
    fn hash_iteration_in_tests_is_exempt() {
        let m: HashMap<u64, u64> = HashMap::new();
        for _ in m.iter() {}
    }
}
