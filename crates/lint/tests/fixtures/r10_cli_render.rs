//! Minimal explain-rendering stand-in: calls `.deterministic_pairs()`
//! outside tests. Analyzed at `crates/cli/src/explain.rs`.
use dblayout_obs::counters::CounterSnapshot;

pub fn render(snapshot: &CounterSnapshot) -> String {
    let mut out = String::new();
    for (name, value) in snapshot.deterministic_pairs() {
        out.push_str(name);
        out.push(' ');
        out.push_str(&value.to_string());
        out.push('\n');
    }
    out
}
