// R4 fixture: two functions take the same two mutexes in opposite orders —
// a thread in each can deadlock. Every acquisition recovers poisoning so
// only R4 fires.

use std::sync::{Mutex, PoisonError};

pub struct Shared {
    pub queue: Mutex<Vec<u64>>,
    pub registry: Mutex<Vec<u64>>,
}

pub fn drain(s: &Shared) -> usize {
    let q = s.queue.lock().unwrap_or_else(PoisonError::into_inner);
    let r = s.registry.lock().unwrap_or_else(PoisonError::into_inner);
    q.len() + r.len()
}

pub fn report(s: &Shared) -> usize {
    let r = s.registry.lock().unwrap_or_else(PoisonError::into_inner);
    let q = s.queue.lock().unwrap_or_else(PoisonError::into_inner);
    r.len() + q.len()
}
