// R5 fixture engine: dispatches every variant except `Shutdown`.

pub fn dispatch(req: Request) -> &'static str {
    match req {
        Request::OpenSession { .. } => "open_session",
        Request::Stats => "stats",
        _ => "dropped",
    }
}
