//! Helper outside the seed files; the wall-clock read here is a finding
//! only because `ts_greedy` (a zone seed) calls into it. Analyzed at
//! `crates/core/src/costmodel.rs`.
pub fn score_candidates(k: u64) -> u64 {
    let t = std::time::Instant::now();
    k.max(t.elapsed().as_micros() as u64)
}
