//! Seeded R7 violations: raw atomics outside the sanctioned zones.
//! Analyzed at `crates/catalog/src/fixture.rs`, where the policy is
//! Forbidden — shared state belongs behind the obs registry or a lock.
use std::sync::atomic::{AtomicU64, Ordering};

pub struct Stats {
    hits: AtomicU64,
}

impl Stats {
    pub fn bump(&self) {
        self.hits.fetch_add(1, Ordering::SeqCst);
    }
}
