//! Seeded R9 violations: a wildcard discard and a statement-level `.ok()`
//! on the migration path. Analyzed at `crates/relayout/src/fixture.rs`.
use std::fs::File;

pub fn persist(path: &str) {
    let _ = std::fs::remove_file(path);
    File::create(path).ok();
}

#[cfg(test)]
mod tests {
    #[test]
    fn discards_in_tests_are_exempt() {
        let _ = std::fs::remove_file("scratch");
        std::fs::File::create("scratch").ok();
    }
}
