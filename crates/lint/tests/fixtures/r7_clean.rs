//! Clean twin of `r7_bad_ordering.rs`: `Relaxed` is the declared policy
//! for the obs zone. Analyzed at `crates/obs/src/fixture.rs`.
use std::sync::atomic::{AtomicU64, Ordering};

pub static HITS: AtomicU64 = AtomicU64::new(0);

pub fn bump() {
    HITS.fetch_add(1, Ordering::Relaxed);
}
