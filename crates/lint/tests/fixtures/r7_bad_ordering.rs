//! Seeded R7 violation: an ordering outside the declared policy for the
//! zone. Analyzed at `crates/obs/src/fixture.rs`, where atomics are
//! sanctioned but the policy table allows only `Relaxed` (monotonic
//! counters; snapshots tolerate tearing by design).
use std::sync::atomic::{AtomicU64, Ordering};

pub static HITS: AtomicU64 = AtomicU64::new(0);

pub fn bump() {
    HITS.fetch_add(1, Ordering::AcqRel);
}
