// Suppression-syntax fixture: a directive without the mandatory reason is
// itself an error, and the finding it tried to silence stays active.

pub fn first(xs: &[u64]) -> u64 {
    // dblayout::allow(R1)
    *xs.first().unwrap()
}
