// R2 fixture: a bare Mutex::lock().unwrap() re-raises poisoning.

use std::sync::Mutex;

pub fn depth(queue: &Mutex<Vec<u64>>) -> usize {
    queue.lock().unwrap().len()
}
