//! Seeded R10 violations, analyzed at `crates/obs/src/counters.rs`:
//! `COUNT` lags the variant list, `ALL` is missing a variant (so every
//! generic renderer silently skips it), and the scheduling class excludes
//! a variant that no longer exists.
#[derive(Clone, Copy)]
pub enum Counter {
    GraphNodeUpdates = 0,
    GraphEdgeUpdates = 1,
    ParChunkItems = 2,
}

impl Counter {
    pub const COUNT: usize = 2;
    pub const ALL: [Counter; 2] = [Counter::GraphNodeUpdates, Counter::GraphEdgeUpdates];

    pub fn is_deterministic(self) -> bool {
        !matches!(self, Counter::ParChunkItems | Counter::ParPoolFallbacks)
    }
}
