// R1 fixture: panic shortcuts in hot-path code (scanned as a server file).

pub fn pick(xs: &[u64], i: usize) -> u64 {
    xs[i]
}

pub fn first(xs: &[u64]) -> u64 {
    *xs.first().unwrap()
}

pub fn must(kind: u8) -> &'static str {
    match kind {
        0 => "scan",
        1 => "seek",
        _ => unreachable!("validated upstream"),
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_exempt() {
        assert_eq!(super::pick(&[7], 0).checked_add(0).unwrap(), 7);
    }
}
