// R2 clean twin: the poison-recovering idiom the helper wraps.

use std::sync::Mutex;

pub fn depth(queue: &Mutex<Vec<u64>>) -> usize {
    queue
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .len()
}
