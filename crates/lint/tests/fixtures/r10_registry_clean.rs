//! Clean twin of `r10_registry_drift.rs`: COUNT, ALL, and the scheduling
//! class all agree with the variant list. Analyzed at
//! `crates/obs/src/counters.rs`.
#[derive(Clone, Copy)]
pub enum Counter {
    GraphNodeUpdates = 0,
    GraphEdgeUpdates = 1,
    ParChunkItems = 2,
}

impl Counter {
    pub const COUNT: usize = 3;
    pub const ALL: [Counter; 3] = [
        Counter::GraphNodeUpdates,
        Counter::GraphEdgeUpdates,
        Counter::ParChunkItems,
    ];

    pub fn is_deterministic(self) -> bool {
        !matches!(self, Counter::ParChunkItems)
    }
}
