// R3 clean twin: total order and a tolerance instead of exact equality.

pub fn cheaper(a: f64, b: f64) -> bool {
    a.total_cmp(&b) == std::cmp::Ordering::Less
}

pub fn is_free(cost: f64) -> bool {
    cost.abs() < 1e-9
}
