// R4 clean twin: both call paths agree on queue-before-registry.

use std::sync::{Mutex, PoisonError};

pub struct Shared {
    pub queue: Mutex<Vec<u64>>,
    pub registry: Mutex<Vec<u64>>,
}

pub fn drain(s: &Shared) -> usize {
    let q = s.queue.lock().unwrap_or_else(PoisonError::into_inner);
    let r = s.registry.lock().unwrap_or_else(PoisonError::into_inner);
    q.len() + r.len()
}

pub fn report(s: &Shared) -> usize {
    let q = s.queue.lock().unwrap_or_else(PoisonError::into_inner);
    let r = s.registry.lock().unwrap_or_else(PoisonError::into_inner);
    r.len() + q.len()
}
