// R5 fixture protocol: three variants; `Shutdown` is the one the paired
// engine fixture and design text forget.

pub enum Request {
    OpenSession { database: String },
    Stats,
    Shutdown,
}
