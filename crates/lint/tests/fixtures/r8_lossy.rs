//! Seeded R8 violations: a float→int truncation and an f64→f32 narrowing
//! in a numeric kernel. Analyzed at `crates/disksim/src/fixture.rs`.
pub fn blocks(frac: f64, total: u64) -> u64 {
    let narrow = frac as f32;
    (total as f64 * narrow as f64 * frac).ceil() as u64
}
