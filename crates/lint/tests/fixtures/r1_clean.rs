// R1 clean twin: the same shapes with non-panicking fallbacks.

pub fn pick(xs: &[u64], i: usize) -> u64 {
    xs.get(i).copied().unwrap_or(0)
}

pub fn first(xs: &[u64]) -> u64 {
    xs.first().copied().unwrap_or_default()
}

pub fn must(kind: u8) -> &'static str {
    match kind {
        0 => "scan",
        1 => "seek",
        _ => "unknown",
    }
}
