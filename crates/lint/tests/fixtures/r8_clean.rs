//! Clean twin of `r8_lossy.rs`: int→float widening casts are exact for
//! block counts, and the one intentional truncation carries a reasoned
//! suppression. Analyzed at `crates/disksim/src/fixture.rs`.
pub fn blocks(frac: f64, total: u64) -> u64 {
    let exact = total as f64 * frac;
    exact.ceil() as u64 // dblayout::allow(R8, reason = "frac is in [0,1], so exact is at most total; ceil keeps partial blocks")
}
