// R1 suppression fixture: the violation is silenced with a documented reason.

pub fn first(xs: &[u64]) -> u64 {
    // dblayout::allow(R1, reason = "fixture: caller guarantees non-empty input")
    *xs.first().unwrap()
}
