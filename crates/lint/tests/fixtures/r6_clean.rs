//! Clean twin of `r6_det_zone.rs`: the fold runs over a `BTreeMap`, whose
//! iteration order is the key order — stable across processes and thread
//! counts. Analyzed at `crates/core/src/tsgreedy.rs`.
use std::collections::BTreeMap;

pub fn ts_greedy(weights: &BTreeMap<u64, f64>) -> f64 {
    let mut total = 0.0;
    for (_, w) in weights.iter() {
        total += w;
    }
    total
}
