//! The lint pass dogfoods: the workspace that ships the linter must be
//! lint-clean under `--deny-warnings`, with every in-tree suppression
//! carrying its documented reason.

use std::path::Path;

#[test]
fn workspace_is_lint_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report = dblayout_lint::lint_workspace(&root).expect("workspace sources load");
    assert!(report.files_scanned > 50, "walker found the workspace");
    assert!(
        report.is_clean(true),
        "workspace must be lint-clean under --deny-warnings:\n{}",
        report.render()
    );
    for d in &report.suppressed {
        assert!(
            d.message.contains("[allowed: "),
            "suppression lost its reason: {}",
            d.message
        );
    }
}
