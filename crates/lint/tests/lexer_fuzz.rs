//! Lexer hardening: a seeded-LCG property test composing the atoms that
//! historically mis-lex (raw strings with `#` fences, nested block
//! comments, lifetimes vs char literals, floats vs `..` ranges, trailing
//! -dot floats) plus mutation with broken fragments.
//!
//! Invariants:
//! * `lex` never panics — every input returns `Ok` or a positioned `Err`;
//! * lexing is deterministic — the same input twice gives identical output;
//! * compositions of *valid* atoms always lex `Ok`, with token lines
//!   nondecreasing and within the line count of the input;
//! * string/char/comment contents never leak tokens: an atom body
//!   containing `zzmarker` must not surface it as an identifier.

use dblayout_lint::lexer::{lex, TokKind};

/// Deterministic LCG (Numerical Recipes constants) — no external crates.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        self.0 >> 33
    }

    fn pick<'a>(&mut self, items: &[&'a str]) -> &'a str {
        items[(self.next() as usize) % items.len()]
    }
}

/// Atoms that must always lex. Several contain `zzmarker` inside literal
/// or comment bodies, where it must stay invisible to the token stream.
const VALID_ATOMS: &[&str] = &[
    "fn f() {}",
    "let x = 1.;",
    "let y = 1.5e-3;",
    "let z = 0xfe_u32;",
    "for i in 0..10 {}",
    "for i in 0..=n {}",
    "let r = 1..2;",
    "let f = 1.0..2.0;",
    "'a",
    "&'static str",
    "let c = 'x';",
    "let nl = '\\n';",
    "let q = '\\'';",
    "let s = \"zzmarker\";",
    "let e = \"esc \\\" quote\";",
    "let r0 = r\"zzmarker\";",
    "let r1 = r#\"has \" inside zzmarker\"#;",
    "let r2 = r##\"fence \"# inside\"##;",
    "// line comment zzmarker",
    "/* block zzmarker */",
    "/* outer /* nested zzmarker */ still comment */",
    "let b = b\"bytes\";",
    "let bc = b'x';",
    "x == y;",
    "x != y;",
    "a::b::c();",
    "m.iter().map(|v| v + 1);",
    "#[cfg(test)]",
    "impl<'a, T> Tr<'a> for T {}",
    "let t = (1, 'b', \"c\");",
];

/// Fragments that may or may not terminate — the lexer must return a
/// clean `Err`, never panic, when they don't.
const ROUGH_ATOMS: &[&str] = &[
    "\"unterminated",
    "r#\"unterminated",
    "/* unterminated",
    "/* outer /* deeper",
    "'",
    "b\"",
    "r####",
    "\\",
    "1.2.3",
    "0b",
    "\u{0}",
    "é∂ß",
];

fn compose(rng: &mut Lcg, atoms: &[&str], n: usize) -> String {
    let mut out = String::new();
    for _ in 0..n {
        out.push_str(rng.pick(atoms));
        out.push(if rng.next().is_multiple_of(3) {
            ' '
        } else {
            '\n'
        });
    }
    out
}

#[test]
fn valid_compositions_always_lex_and_stay_in_bounds() {
    let mut rng = Lcg(0xdb1a_404d);
    for round in 0..200 {
        let src = compose(&mut rng, VALID_ATOMS, 1 + (round % 24));
        let out = lex(&src).unwrap_or_else(|e| panic!("round {round}: {e:?}\n---\n{src}"));
        let line_count = src.lines().count() as u32 + 1;
        let mut last = 0u32;
        for t in &out.toks {
            assert!(t.line >= last, "token lines nondecreasing\n{src}");
            assert!(t.line <= line_count, "token line within input\n{src}");
            last = t.line;
        }
        // Literal and comment bodies never leak identifiers.
        assert!(
            !out.toks
                .iter()
                .any(|t| matches!(&t.kind, TokKind::Ident(s) if s.contains("zzmarker"))),
            "marker escaped a literal/comment body\n---\n{src}"
        );
    }
}

#[test]
fn mutated_compositions_never_panic_and_are_deterministic() {
    let mut rng = Lcg(0x5eed_cafe);
    let all: Vec<&str> = VALID_ATOMS.iter().chain(ROUGH_ATOMS).copied().collect();
    for round in 0..400 {
        let src = compose(&mut rng, &all, 1 + (round % 16));
        let a = lex(&src);
        let b = lex(&src);
        match (&a, &b) {
            (Ok(x), Ok(y)) => {
                assert_eq!(x.toks, y.toks, "deterministic tokens\n{src}");
                assert_eq!(x.comments, y.comments, "deterministic comments\n{src}");
            }
            (Err(x), Err(y)) => assert_eq!(x, y, "deterministic errors\n{src}"),
            _ => panic!("nondeterministic Ok/Err for\n{src}"),
        }
    }
}

#[test]
fn tricky_singletons() {
    // Trailing-dot float: one Float token, not Int + Punct (the range
    // lexer must not steal the dot).
    let out = lex("let x = 1.;").unwrap();
    assert!(
        out.toks
            .iter()
            .any(|t| matches!(&t.kind, TokKind::Float(f) if f == "1.")),
        "{:?}",
        out.toks
    );
    // `1..2` is Int, Punct(..), Int — the dot-dot must win over the float.
    let out = lex("1..2").unwrap();
    let kinds: Vec<String> = out.toks.iter().map(|t| format!("{:?}", t.kind)).collect();
    assert!(
        kinds
            .iter()
            .any(|k| k.contains("Punct") && k.contains("\"..\"")),
        "{kinds:?}"
    );
    // Lifetime vs char: `'a,` is a lifetime; `'a'` is a char literal.
    let out = lex("f::<'a>(x); let c = 'a';").unwrap();
    assert!(out
        .toks
        .iter()
        .any(|t| matches!(&t.kind, TokKind::Lifetime(l) if l == "a")));
    assert!(out.toks.iter().any(|t| matches!(&t.kind, TokKind::Char)));
    // Nested block comments close at the matching fence.
    let out = lex("/* a /* b */ c */ fn f() {}").unwrap();
    assert!(out
        .toks
        .iter()
        .any(|t| matches!(&t.kind, TokKind::Ident(s) if s == "fn")));
}
