//! Diagnostics and the two reporters: human-readable text and the
//! machine-readable JSON written to `results/lint_report.json`.

use serde_json::Value;

/// How bad a diagnostic is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Rule finding — fails the run only under `--deny-warnings`.
    Warning,
    /// Lint-infrastructure problem (unlexable file, malformed suppression)
    /// — always fails the run.
    Error,
}

impl Severity {
    fn as_str(self) -> &'static str {
        match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

/// One reported problem.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Rule id (`R1`..`R5`) or `lint` for infrastructure errors.
    pub rule: &'static str,
    /// Severity class.
    pub severity: Severity,
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// What and why, with the suggested fix.
    pub message: String,
}

/// Per-file analysis timing — the evidence that a warm incremental run
/// re-analyzed only what changed.
#[derive(Debug, Clone)]
pub struct FileTiming {
    /// Workspace-relative path.
    pub path: String,
    /// Scan wall time in microseconds (0 for cache hits).
    pub micros: u64,
    /// Whether the summary came from `results/lint_cache.json`.
    pub cached: bool,
}

/// Per-rule analysis timing across both phases.
#[derive(Debug, Clone)]
pub struct RuleTiming {
    /// Rule id.
    pub rule: &'static str,
    /// Total scan-phase time across all (non-cached) files, microseconds.
    pub scan_micros: u64,
    /// Finish-phase time, microseconds.
    pub finish_micros: u64,
}

/// The outcome of a lint run.
#[derive(Debug, Clone, Default)]
pub struct LintReport {
    /// Active diagnostics, ordered by (file, line).
    pub diagnostics: Vec<Diagnostic>,
    /// Findings silenced by a well-formed `dblayout::allow`, with the
    /// justification appended — kept for the JSON report so suppressions
    /// stay auditable.
    pub suppressed: Vec<Diagnostic>,
    /// Diagnostics outside the `--diff` scope: real findings in files the
    /// diff did not touch (and whose rules have no changed dependency).
    /// Kept so a diff-scoped run still records the whole picture — the
    /// union of `diagnostics` and `out_of_scope` is bit-identical to a
    /// full run's `diagnostics`.
    pub out_of_scope: Vec<Diagnostic>,
    /// Number of Rust files analyzed.
    pub files_scanned: usize,
    /// Per-file scan timing (cache hits included, marked).
    pub file_timings: Vec<FileTiming>,
    /// Per-rule timing across scan and finish phases.
    pub rule_timings: Vec<RuleTiming>,
    /// Total analysis wall time in microseconds.
    pub wall_micros: u64,
    /// The `--diff` base ref, when diff scoping was active.
    pub diff_base: Option<String>,
}

impl LintReport {
    /// Number of warning-severity diagnostics.
    pub fn warnings(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Warning)
            .count()
    }

    /// Number of error-severity diagnostics.
    pub fn errors(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count()
    }

    /// Whether the run passes: errors always fail; warnings fail only when
    /// denied.
    pub fn is_clean(&self, deny_warnings: bool) -> bool {
        self.errors() == 0 && (!deny_warnings || self.warnings() == 0)
    }

    /// Number of files whose summary came from the cache.
    pub fn cached_files(&self) -> usize {
        self.file_timings.iter().filter(|t| t.cached).count()
    }

    /// Human-readable report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&format!(
                "{}: [{}] {}:{}: {}\n",
                d.severity.as_str(),
                d.rule,
                d.file,
                d.line,
                d.message
            ));
        }
        out.push_str(&format!(
            "dblayout-lint: {} file(s) scanned ({} cached), {} warning(s), {} error(s), {} suppressed",
            self.files_scanned,
            self.cached_files(),
            self.warnings(),
            self.errors(),
            self.suppressed.len()
        ));
        if let Some(base) = &self.diff_base {
            out.push_str(&format!(
                ", {} out-of-scope vs {base}",
                self.out_of_scope.len()
            ));
        }
        out.push('\n');
        out
    }

    /// Machine-readable report (deterministic key order).
    pub fn to_json(&self) -> Value {
        let diag = |d: &Diagnostic| {
            Value::Map(vec![
                ("rule".into(), Value::Str(d.rule.to_string())),
                ("severity".into(), Value::Str(d.severity.as_str().into())),
                ("file".into(), Value::Str(d.file.clone())),
                ("line".into(), Value::U64(d.line as u64)),
                ("message".into(), Value::Str(d.message.clone())),
            ])
        };
        Value::Map(vec![
            (
                "files_scanned".into(),
                Value::U64(self.files_scanned as u64),
            ),
            (
                "cached_files".into(),
                Value::U64(self.cached_files() as u64),
            ),
            ("warnings".into(), Value::U64(self.warnings() as u64)),
            ("errors".into(), Value::U64(self.errors() as u64)),
            ("wall_micros".into(), Value::U64(self.wall_micros)),
            (
                "diff_base".into(),
                match &self.diff_base {
                    Some(b) => Value::Str(b.clone()),
                    None => Value::Null,
                },
            ),
            (
                "diagnostics".into(),
                Value::Seq(self.diagnostics.iter().map(diag).collect()),
            ),
            (
                "suppressed".into(),
                Value::Seq(self.suppressed.iter().map(diag).collect()),
            ),
            (
                "out_of_scope".into(),
                Value::Seq(self.out_of_scope.iter().map(diag).collect()),
            ),
            (
                "timings".into(),
                Value::Map(vec![
                    (
                        "files".into(),
                        Value::Seq(
                            self.file_timings
                                .iter()
                                .map(|t| {
                                    Value::Map(vec![
                                        ("path".into(), Value::Str(t.path.clone())),
                                        ("micros".into(), Value::U64(t.micros)),
                                        ("cached".into(), Value::Bool(t.cached)),
                                    ])
                                })
                                .collect(),
                        ),
                    ),
                    (
                        "rules".into(),
                        Value::Seq(
                            self.rule_timings
                                .iter()
                                .map(|t| {
                                    Value::Map(vec![
                                        ("rule".into(), Value::Str(t.rule.to_string())),
                                        ("scan_micros".into(), Value::U64(t.scan_micros)),
                                        ("finish_micros".into(), Value::U64(t.finish_micros)),
                                    ])
                                })
                                .collect(),
                        ),
                    ),
                ]),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::ValueExt;

    fn sample() -> LintReport {
        LintReport {
            diagnostics: vec![
                Diagnostic {
                    rule: "R1",
                    severity: Severity::Warning,
                    file: "crates/server/src/x.rs".into(),
                    line: 3,
                    message: "bare unwrap".into(),
                },
                Diagnostic {
                    rule: "lint",
                    severity: Severity::Error,
                    file: "crates/server/src/y.rs".into(),
                    line: 1,
                    message: "bad suppression".into(),
                },
            ],
            suppressed: vec![],
            files_scanned: 2,
            ..LintReport::default()
        }
    }

    #[test]
    fn clean_logic() {
        let r = LintReport::default();
        assert!(r.is_clean(true));
        let s = sample();
        assert_eq!(s.warnings(), 1);
        assert_eq!(s.errors(), 1);
        assert!(!s.is_clean(false), "errors always fail");
        let warn_only = LintReport {
            diagnostics: vec![Diagnostic {
                rule: "R1",
                severity: Severity::Warning,
                file: "f".into(),
                line: 1,
                message: "m".into(),
            }],
            ..Default::default()
        };
        assert!(warn_only.is_clean(false));
        assert!(!warn_only.is_clean(true));
    }

    #[test]
    fn json_shape() {
        let v = sample().to_json();
        assert_eq!(v.get("warnings").and_then(|x| x.as_u64()), Some(1));
        assert_eq!(v.get("errors").and_then(|x| x.as_u64()), Some(1));
        let diags = v.get("diagnostics").and_then(|x| x.as_array()).unwrap();
        assert_eq!(diags.len(), 2);
        assert_eq!(diags[0].get("rule").and_then(|x| x.as_str()), Some("R1"));
    }

    #[test]
    fn render_mentions_every_diagnostic() {
        let text = sample().render();
        assert!(text.contains("warning: [R1]"));
        assert!(text.contains("error: [lint]"));
        assert!(text.contains("2 file(s) scanned"));
    }
}
