//! Diagnostics and the two reporters: human-readable text and the
//! machine-readable JSON written to `results/lint_report.json`.

use serde_json::Value;

/// How bad a diagnostic is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Rule finding — fails the run only under `--deny-warnings`.
    Warning,
    /// Lint-infrastructure problem (unlexable file, malformed suppression)
    /// — always fails the run.
    Error,
}

impl Severity {
    fn as_str(self) -> &'static str {
        match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

/// One reported problem.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Rule id (`R1`..`R5`) or `lint` for infrastructure errors.
    pub rule: &'static str,
    /// Severity class.
    pub severity: Severity,
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// What and why, with the suggested fix.
    pub message: String,
}

/// The outcome of a lint run.
#[derive(Debug, Clone, Default)]
pub struct LintReport {
    /// Active diagnostics, ordered by (file, line).
    pub diagnostics: Vec<Diagnostic>,
    /// Findings silenced by a well-formed `dblayout::allow`, with the
    /// justification appended — kept for the JSON report so suppressions
    /// stay auditable.
    pub suppressed: Vec<Diagnostic>,
    /// Number of Rust files analyzed.
    pub files_scanned: usize,
}

impl LintReport {
    /// Number of warning-severity diagnostics.
    pub fn warnings(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Warning)
            .count()
    }

    /// Number of error-severity diagnostics.
    pub fn errors(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count()
    }

    /// Whether the run passes: errors always fail; warnings fail only when
    /// denied.
    pub fn is_clean(&self, deny_warnings: bool) -> bool {
        self.errors() == 0 && (!deny_warnings || self.warnings() == 0)
    }

    /// Human-readable report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&format!(
                "{}: [{}] {}:{}: {}\n",
                d.severity.as_str(),
                d.rule,
                d.file,
                d.line,
                d.message
            ));
        }
        out.push_str(&format!(
            "dblayout-lint: {} file(s) scanned, {} warning(s), {} error(s), {} suppressed\n",
            self.files_scanned,
            self.warnings(),
            self.errors(),
            self.suppressed.len()
        ));
        out
    }

    /// Machine-readable report (deterministic key order).
    pub fn to_json(&self) -> Value {
        let diag = |d: &Diagnostic| {
            Value::Map(vec![
                ("rule".into(), Value::Str(d.rule.to_string())),
                ("severity".into(), Value::Str(d.severity.as_str().into())),
                ("file".into(), Value::Str(d.file.clone())),
                ("line".into(), Value::U64(d.line as u64)),
                ("message".into(), Value::Str(d.message.clone())),
            ])
        };
        Value::Map(vec![
            (
                "files_scanned".into(),
                Value::U64(self.files_scanned as u64),
            ),
            ("warnings".into(), Value::U64(self.warnings() as u64)),
            ("errors".into(), Value::U64(self.errors() as u64)),
            (
                "diagnostics".into(),
                Value::Seq(self.diagnostics.iter().map(diag).collect()),
            ),
            (
                "suppressed".into(),
                Value::Seq(self.suppressed.iter().map(diag).collect()),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::ValueExt;

    fn sample() -> LintReport {
        LintReport {
            diagnostics: vec![
                Diagnostic {
                    rule: "R1",
                    severity: Severity::Warning,
                    file: "crates/server/src/x.rs".into(),
                    line: 3,
                    message: "bare unwrap".into(),
                },
                Diagnostic {
                    rule: "lint",
                    severity: Severity::Error,
                    file: "crates/server/src/y.rs".into(),
                    line: 1,
                    message: "bad suppression".into(),
                },
            ],
            suppressed: vec![],
            files_scanned: 2,
        }
    }

    #[test]
    fn clean_logic() {
        let r = LintReport::default();
        assert!(r.is_clean(true));
        let s = sample();
        assert_eq!(s.warnings(), 1);
        assert_eq!(s.errors(), 1);
        assert!(!s.is_clean(false), "errors always fail");
        let warn_only = LintReport {
            diagnostics: vec![Diagnostic {
                rule: "R1",
                severity: Severity::Warning,
                file: "f".into(),
                line: 1,
                message: "m".into(),
            }],
            ..Default::default()
        };
        assert!(warn_only.is_clean(false));
        assert!(!warn_only.is_clean(true));
    }

    #[test]
    fn json_shape() {
        let v = sample().to_json();
        assert_eq!(v.get("warnings").and_then(|x| x.as_u64()), Some(1));
        assert_eq!(v.get("errors").and_then(|x| x.as_u64()), Some(1));
        let diags = v.get("diagnostics").and_then(|x| x.as_array()).unwrap();
        assert_eq!(diags.len(), 2);
        assert_eq!(diags[0].get("rule").and_then(|x| x.as_str()), Some("R1"));
    }

    #[test]
    fn render_mentions_every_diagnostic() {
        let text = sample().render();
        assert!(text.contains("warning: [R1]"));
        assert!(text.contains("error: [lint]"));
        assert!(text.contains("2 file(s) scanned"));
    }
}
