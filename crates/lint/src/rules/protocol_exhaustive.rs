//! R5 — protocol exhaustiveness.
//!
//! The wire protocol has three places that must agree: the `Request` enum
//! in `crates/server/src/protocol.rs` (the source of truth), the dispatch
//! `match` in `crates/server/src/engine.rs`, and the wire-protocol table
//! in `DESIGN.md`. Adding a variant and forgetting one of the other two
//! compiles fine today (the dispatch match could grow a `_ =>` arm, the
//! doc silently goes stale), so this rule joins the three: every variant
//! must appear as `Request::<Variant>` somewhere in `engine.rs` and as its
//! snake_case op name somewhere in `DESIGN.md`. When `protocol.rs` is not
//! among the scanned files (fixture runs) the rule is inert.

use super::{camel_to_snake, ident_text, is_ident, is_punct, Finding, FinishCtx, Rule, ScanCtx};
use crate::summary::{Facts, FileSummary};
use crate::workspace::FileCtx;

/// See module docs.
pub struct ProtocolExhaustiveness;

impl Rule for ProtocolExhaustiveness {
    fn id(&self) -> &'static str {
        "R5"
    }

    fn description(&self) -> &'static str {
        "every Request variant has a dispatch arm in engine.rs and a DESIGN.md table entry"
    }

    fn scan(&self, ctx: &ScanCtx<'_>, facts: &mut Facts, _findings: &mut Vec<Finding>) {
        if ctx.file.path.ends_with("server/src/protocol.rs") {
            facts.request_variants = request_variants(ctx.file);
        }
        if ctx.file.path.ends_with("server/src/engine.rs") {
            facts.dispatched = dispatched_variants(ctx.file);
        }
    }

    fn finish(&self, ctx: &FinishCtx<'_>) -> Vec<Finding> {
        let Some(protocol) = find_file(ctx, "server/src/protocol.rs") else {
            return Vec::new();
        };
        let engine = find_file(ctx, "server/src/engine.rs");
        let mut findings = Vec::new();
        for (variant, line) in &protocol.facts.request_variants {
            if let Some(engine) = engine {
                if !engine.facts.dispatched.iter().any(|d| d == variant) {
                    findings.push(Finding {
                        file: engine.path.clone(),
                        line: 1,
                        message: format!(
                            "`Request::{variant}` (protocol.rs:{line}) has no dispatch arm \
                             here; wire it up or remove the variant"
                        ),
                    });
                }
            }
            if let Some(design) = ctx.design_md {
                let op = camel_to_snake(variant);
                if !design.contains(&op) {
                    findings.push(Finding {
                        file: protocol.path.clone(),
                        line: *line,
                        message: format!(
                            "`Request::{variant}` is missing from DESIGN.md's wire-protocol \
                             table (expected op name `{op}`)"
                        ),
                    });
                }
            }
        }
        findings
    }

    fn global_deps(&self) -> &'static [&'static str] {
        &[
            "crates/server/src/protocol.rs",
            "crates/server/src/engine.rs",
            "DESIGN.md",
        ]
    }
}

fn find_file<'a>(ctx: &FinishCtx<'a>, suffix: &str) -> Option<&'a FileSummary> {
    ctx.files.iter().find(|f| f.path.ends_with(suffix))
}

/// Collects `(variant, line)` pairs from `enum Request { ... }`.
fn request_variants(file: &FileCtx) -> Vec<(String, u32)> {
    let toks = &file.toks;
    let mut variants = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if is_ident(&toks[i], "enum")
            && toks.get(i + 1).is_some_and(|t| is_ident(t, "Request"))
            && toks.get(i + 2).is_some_and(|t| is_punct(t, "{"))
        {
            let mut depth = 1usize;
            let mut j = i + 3;
            // A variant name is an identifier at enum-body depth that opens
            // a payload (`{`/`(`) or ends the entry (`,`/`}`). Attribute
            // contents (`#[...]`) are skipped so derive idents don't match.
            while j < toks.len() && depth > 0 {
                let t = &toks[j];
                if is_punct(t, "{") || is_punct(t, "(") || is_punct(t, "[") {
                    depth += 1;
                } else if is_punct(t, "}") || is_punct(t, ")") || is_punct(t, "]") {
                    depth -= 1;
                } else if depth == 1 {
                    if is_punct(t, "#") {
                        // Skip the whole `#[...]` span.
                        if toks.get(j + 1).is_some_and(|n| is_punct(n, "[")) {
                            let mut brackets = 1usize;
                            j += 2;
                            while j < toks.len() && brackets > 0 {
                                if is_punct(&toks[j], "[") {
                                    brackets += 1;
                                } else if is_punct(&toks[j], "]") {
                                    brackets -= 1;
                                }
                                j += 1;
                            }
                            continue;
                        }
                    } else if let Some(name) = ident_text(t) {
                        let opens_entry = toks.get(j + 1).is_some_and(|n| {
                            is_punct(n, "{")
                                || is_punct(n, "(")
                                || is_punct(n, ",")
                                || is_punct(n, "}")
                        });
                        if opens_entry {
                            variants.push((name.to_string(), t.line));
                        }
                    }
                }
                j += 1;
            }
            break;
        }
        i += 1;
    }
    variants
}

/// Every `Request::<Variant>` path mentioned outside tests (the dispatch
/// arms, as facts for the finish join).
fn dispatched_variants(engine: &FileCtx) -> Vec<String> {
    let toks = &engine.toks;
    let mut out: Vec<String> = Vec::new();
    for i in 0..toks.len() {
        if is_ident(&toks[i], "Request")
            && !engine.in_tests(toks[i].line)
            && toks.get(i + 1).is_some_and(|t| is_punct(t, "::"))
        {
            if let Some(v) = toks.get(i + 2).and_then(ident_text) {
                if !out.iter().any(|o| o == v) {
                    out.push(v.to_string());
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::super::camel_to_snake;

    #[test]
    fn snake_casing() {
        assert_eq!(camel_to_snake("OpenSession"), "open_session");
        assert_eq!(camel_to_snake("WhatifCost"), "whatif_cost");
        assert_eq!(camel_to_snake("Stats"), "stats");
    }
}
