//! R8 — lossy-cast hygiene in the numeric kernels.
//!
//! The Figure-7 cost model, the disk simulator, and the index/partition
//! planners all move between float math (costs, selectivities, seek
//! fractions) and integer units (blocks, rows, bytes). A bare `as` on
//! that boundary truncates silently: `(-0.4f64) as u64` is 0, `1e20 as
//! u64` saturates, `f64 as f32` quietly drops half the mantissa — and a
//! cost model that truncates differently than the paper's arithmetic
//! intends skews every layout comparison downstream.
//!
//! Inside the kernel zone (`core::costmodel`, `crates/disksim`,
//! `crates/planner`), every cast whose *source* is syntactically float —
//! a float literal, the result of a rounding-family method
//! (`floor`/`ceil`/`round`/`trunc`/`sqrt`/`fract`/`exp`/`ln`/`log2`/
//! `log10`/`powf`/`powi`), or a binding/param/field whose declared type
//! head is `f64`/`f32` — and whose target is an integer type (or `f32`,
//! the narrowing float) must either be rewritten (checked conversion,
//! explicit clamp) or carry a suppression whose reason documents the
//! value-range argument for why truncation is intended. Test regions are
//! exempt.
//!
//! The source detection is syntactic and conservative: a cast the parser
//! cannot see a float source for is *not* flagged (int→int narrowing is
//! out of scope — it is ubiquitous, loss-free in this codebase's ranges,
//! and flagging it would bury the real signal).

use super::{ident_text, is_ident, is_punct, Finding, Rule, ScanCtx};
use crate::lexer::TokKind;
use crate::summary::Facts;

/// See module docs.
pub struct LossyCast;

const INT_TARGETS: &[&str] = &[
    "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize",
];

/// Methods whose result is float-typed on the workspace's numeric types.
const FLOAT_RESULT_METHODS: &[&str] = &[
    "floor", "ceil", "round", "trunc", "fract", "sqrt", "exp", "ln", "log2", "log10", "powf",
    "powi", "mul_add",
];

fn in_kernel_zone(path: &str) -> bool {
    path == "crates/core/src/costmodel.rs"
        || path.starts_with("crates/disksim/src/")
        || path.starts_with("crates/planner/src/")
}

impl Rule for LossyCast {
    fn id(&self) -> &'static str {
        "R8"
    }

    fn description(&self) -> &'static str {
        "float->int and f64->f32 `as` casts in the cost/disksim/planner kernels need a \
         documented range argument (suppression) or a checked conversion"
    }

    fn scan(&self, ctx: &ScanCtx<'_>, _facts: &mut Facts, findings: &mut Vec<Finding>) {
        if !in_kernel_zone(&ctx.file.path) {
            return;
        }
        let toks = &ctx.file.toks;
        for i in 0..toks.len() {
            if !is_ident(&toks[i], "as") || ctx.file.in_tests(toks[i].line) {
                continue;
            }
            let Some(target) = toks.get(i + 1).and_then(ident_text) else {
                continue;
            };
            let to_int = INT_TARGETS.contains(&target);
            let to_f32 = target == "f32";
            if !to_int && !to_f32 {
                continue;
            }
            let Some(source) = float_source(ctx, i) else {
                continue;
            };
            // f32 -> f32 is a no-op; only a *wider* float source narrows.
            if to_f32 && source.width == FloatWidth::F32 {
                continue;
            }
            let loss = if to_int {
                "truncates toward zero (and saturates out-of-range/NaN)"
            } else {
                "silently drops mantissa precision"
            };
            findings.push(Finding {
                file: ctx.file.path.clone(),
                line: toks[i].line,
                message: format!(
                    "`{} as {target}` {loss} in a numeric kernel; use a checked conversion \
                     or an explicit clamp, or suppress with the value-range reason why \
                     truncation is intended",
                    source.describe
                ),
            });
        }
    }
}

#[derive(PartialEq)]
enum FloatWidth {
    F32,
    F64,
    Unknown,
}

struct FloatSource {
    describe: String,
    width: FloatWidth,
}

/// Classifies the expression immediately before the `as` at token `i` as
/// float-sourced, or `None` when no float evidence exists.
fn float_source(ctx: &ScanCtx<'_>, i: usize) -> Option<FloatSource> {
    let toks = &ctx.file.toks;
    let prev = toks.get(i.checked_sub(1)?)?;
    match &prev.kind {
        TokKind::Float(text) => Some(FloatSource {
            describe: format!("float literal `{text}`"),
            width: FloatWidth::Unknown,
        }),
        TokKind::Punct(p) if p == ")" => {
            // `expr.method(...) as T` — walk back over the call's parens to
            // the method name.
            let mut depth = 0usize;
            let mut j = i - 1;
            loop {
                let t = &toks[j];
                if is_punct(t, ")") {
                    depth += 1;
                } else if is_punct(t, "(") {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                j = j.checked_sub(1)?;
            }
            let name = j
                .checked_sub(1)
                .and_then(|k| toks.get(k))
                .and_then(ident_text)?;
            let is_method = j >= 2 && is_punct(&toks[j - 2], ".");
            if is_method && FLOAT_RESULT_METHODS.contains(&name) {
                Some(FloatSource {
                    describe: format!("`.{name}()` result"),
                    width: FloatWidth::Unknown,
                })
            } else {
                None
            }
        }
        TokKind::Ident(name) => {
            // A binding/param/field with a declared float type head.
            let f = ctx.parsed.enclosing_fn(i)?;
            let ty = f
                .locals
                .iter()
                .chain(f.params.iter())
                .chain(ctx.parsed.fields.iter())
                .find(|t| &t.name == name)
                .map(|t| t.type_head.as_str())?;
            let width = match ty {
                "f64" => FloatWidth::F64,
                "f32" => FloatWidth::F32,
                _ => return None,
            };
            Some(FloatSource {
                describe: format!("`{name}: {ty}`"),
                width,
            })
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::in_kernel_zone;

    #[test]
    fn zone_covers_the_numeric_kernels_only() {
        assert!(in_kernel_zone("crates/core/src/costmodel.rs"));
        assert!(in_kernel_zone("crates/disksim/src/layout.rs"));
        assert!(in_kernel_zone("crates/planner/src/optimizer.rs"));
        assert!(!in_kernel_zone("crates/core/src/tsgreedy.rs"));
        assert!(!in_kernel_zone("crates/server/src/engine.rs"));
    }
}
