//! R4 — lock-order consistency.
//!
//! Two threads taking the same pair of mutexes in opposite orders can
//! deadlock. This rule builds a cross-file acquisition-order graph over
//! `crates/server`: scanning each function's token stream, it records
//! which named mutex guards are still held when another is acquired
//! (an edge `A → B` means "B was taken while A was held"), merges edges
//! across the crate by mutex name, and fails on any cycle.
//!
//! Scope tracking is heuristic and deliberately **over-approximates**
//! holds: a `let`-bound guard is considered held to the end of its
//! enclosing block (explicit `drop(guard)` is not tracked), and a guard
//! acquired as a temporary is held to the end of its statement. Extra
//! hold time can only add edges, so a cycle-free verdict is trustworthy;
//! a spurious edge that manufactures a false cycle can be suppressed with
//! a documented reason. Locks are named by the receiver field
//! (`shared.queue` → `queue`); same-name re-acquisition is not reported
//! (non-reentrancy is R2/R1 territory, and the over-approximation would
//! make it noisy).

use std::collections::BTreeMap;

use super::{ident_text, is_ident, is_punct, Finding, FinishCtx, Rule, ScanCtx};
use crate::summary::{Facts, LockEdge};
use crate::workspace::FileCtx;

/// See module docs.
pub struct LockOrder;

impl Rule for LockOrder {
    fn id(&self) -> &'static str {
        "R4"
    }

    fn description(&self) -> &'static str {
        "lock-acquisition order over crates/server must be cycle-free (deadlock freedom)"
    }

    fn scan(&self, ctx: &ScanCtx<'_>, facts: &mut Facts, _findings: &mut Vec<Finding>) {
        if ctx.file.path.starts_with("crates/server/src/") {
            let mut edges: BTreeMap<(String, String), (String, u32)> = BTreeMap::new();
            collect_edges(ctx.file, &mut edges);
            facts.lock_edges = edges
                .into_iter()
                .map(|((from, to), (_, line))| LockEdge { from, to, line })
                .collect();
        }
    }

    fn finish(&self, ctx: &FinishCtx<'_>) -> Vec<Finding> {
        // edge (from, to) -> first provenance seen (file order = path order).
        let mut edges: BTreeMap<(String, String), (String, u32)> = BTreeMap::new();
        for file in ctx.files {
            for e in &file.facts.lock_edges {
                edges
                    .entry((e.from.clone(), e.to.clone()))
                    .or_insert_with(|| (file.path.clone(), e.line));
            }
        }
        find_cycles(&edges)
    }

    fn global_deps(&self) -> &'static [&'static str] {
        &["crates/server/"]
    }
}

/// A held guard: the mutex name, the brace depth it was acquired at, and
/// whether it dies at the end of its statement (temporary) or its block
/// (`let`-bound).
struct Held {
    name: String,
    depth: usize,
    temp: bool,
}

fn collect_edges(file: &FileCtx, edges: &mut BTreeMap<(String, String), (String, u32)>) {
    let toks = &file.toks;
    let mut depth = 0usize;
    let mut pending_let = false;
    let mut held: Vec<Held> = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        let t = &toks[i];
        if file.in_tests(t.line) {
            i += 1;
            continue;
        }
        if is_punct(t, "{") {
            depth += 1;
        } else if is_punct(t, "}") {
            depth = depth.saturating_sub(1);
            held.retain(|h| h.depth <= depth);
        } else if is_punct(t, ";") {
            held.retain(|h| !(h.temp && h.depth == depth));
            pending_let = false;
        } else if is_ident(t, "let") {
            pending_let = true;
        } else if let Some(name) = acquisition_at(toks, i) {
            for h in &held {
                if h.name != name {
                    edges
                        .entry((h.name.clone(), name.clone()))
                        .or_insert_with(|| (file.path.clone(), t.line));
                }
            }
            held.push(Held {
                name,
                depth,
                temp: !pending_let,
            });
        }
        i += 1;
    }
}

/// Recognizes a lock acquisition starting at token `i` and names the mutex.
///
/// Two shapes: `lock_unpoisoned(&<path>)` (name = last identifier of the
/// argument path) and `<path>.lock()` (name = identifier before `.lock`).
fn acquisition_at(toks: &[crate::lexer::Tok], i: usize) -> Option<String> {
    if is_ident(&toks[i], "lock_unpoisoned") && toks.get(i + 1).is_some_and(|t| is_punct(t, "(")) {
        let mut parens = 0usize;
        let mut last_ident: Option<&str> = None;
        for t in &toks[i + 1..] {
            if is_punct(t, "(") {
                parens += 1;
            } else if is_punct(t, ")") {
                parens -= 1;
                if parens == 0 {
                    break;
                }
            } else if let Some(name) = ident_text(t) {
                last_ident = Some(name);
            }
        }
        return last_ident.map(str::to_string);
    }
    if is_ident(&toks[i], "lock")
        && i >= 2
        && is_punct(&toks[i - 1], ".")
        && toks.get(i + 1).is_some_and(|t| is_punct(t, "("))
        && toks.get(i + 2).is_some_and(|t| is_punct(t, ")"))
    {
        return ident_text(&toks[i - 2]).map(str::to_string);
    }
    None
}

fn find_cycles(edges: &BTreeMap<(String, String), (String, u32)>) -> Vec<Finding> {
    let mut adj: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
    for (from, to) in edges.keys() {
        adj.entry(from).or_default().push(to);
        adj.entry(to).or_default();
    }
    // Iterative DFS with colors; one finding per back edge found.
    let mut findings = Vec::new();
    let mut color: BTreeMap<&str, u8> = adj.keys().map(|&n| (n, 0u8)).collect();
    for &start in adj.keys() {
        if color[start] != 0 {
            continue;
        }
        let mut stack: Vec<(&str, usize)> = vec![(start, 0)];
        let mut path: Vec<&str> = vec![start];
        color.insert(start, 1);
        while let Some(&mut (node, ref mut next)) = stack.last_mut() {
            let neighbors = adj.get(node).map(Vec::as_slice).unwrap_or_default();
            if *next < neighbors.len() {
                let n = neighbors[*next];
                *next += 1;
                match color.get(n).copied().unwrap_or(0) {
                    1 => {
                        // Back edge: path from n..node plus n closes a cycle.
                        let cycle_start = path.iter().position(|&p| p == n).unwrap_or(0);
                        let mut cycle: Vec<&str> = path[cycle_start..].to_vec();
                        cycle.push(n);
                        let (file, line) = edges
                            .get(&(node.to_string(), n.to_string()))
                            .cloned()
                            .unwrap_or_default();
                        findings.push(Finding {
                            file,
                            line,
                            message: format!(
                                "lock-order cycle {} — two threads interleaving these \
                                 acquisitions can deadlock; pick one global order",
                                cycle.join(" -> ")
                            ),
                        });
                    }
                    0 => {
                        color.insert(n, 1);
                        stack.push((n, 0));
                        path.push(n);
                    }
                    _ => {}
                }
            } else {
                color.insert(node, 2);
                stack.pop();
                path.pop();
            }
        }
    }
    findings
}
