//! The rule engine: the [`Rule`] trait, the registry, and shared
//! token-matching helpers.
//!
//! Each rule sees the whole workspace at once (some rules are cross-file:
//! R4 builds a lock-acquisition graph over every `crates/server` source,
//! R5 joins `protocol.rs` against `engine.rs` and `DESIGN.md`), scopes
//! itself by path, and returns findings. The engine in [`crate`] applies
//! suppressions afterwards, so rules never need to think about them.

use crate::lexer::{Tok, TokKind};
use crate::workspace::FileCtx;

mod float_hygiene;
mod lock_order;
mod no_panic;
mod poison_lock;
mod protocol_exhaustive;

/// Every known rule id, in catalog order (also the set the suppression
/// parser accepts).
pub const RULE_IDS: &[&str] = &["R1", "R2", "R3", "R4", "R5"];

/// Everything a rule may look at.
pub struct Ctx<'a> {
    /// Lexed workspace files, sorted by path.
    pub files: &'a [FileCtx],
    /// `DESIGN.md` text when available (R5's wire-protocol table check).
    pub design_md: Option<&'a str>,
}

/// One rule finding, before suppression filtering.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// What and why, with the suggested fix.
    pub message: String,
}

/// A lint rule.
pub trait Rule {
    /// Stable id (`R1`..`R5`).
    fn id(&self) -> &'static str;
    /// One-line summary for reports and docs.
    fn description(&self) -> &'static str;
    /// Runs the rule over the workspace.
    fn check(&self, ctx: &Ctx<'_>) -> Vec<Finding>;
}

/// The shipped rule set, in catalog order.
pub fn all_rules() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(no_panic::NoPanicInHotPath),
        Box::new(poison_lock::PoisonSafeLocking),
        Box::new(float_hygiene::FloatHygiene),
        Box::new(lock_order::LockOrder),
        Box::new(protocol_exhaustive::ProtocolExhaustiveness),
    ]
}

// ---- Shared token helpers ----

/// Whether `t` is the punctuation `s`.
pub(crate) fn is_punct(t: &Tok, s: &str) -> bool {
    matches!(&t.kind, TokKind::Punct(p) if p == s)
}

/// Whether `t` is the identifier `s`.
pub(crate) fn is_ident(t: &Tok, s: &str) -> bool {
    matches!(&t.kind, TokKind::Ident(i) if i == s)
}

/// The identifier text of `t`, if it is one.
pub(crate) fn ident_text(t: &Tok) -> Option<&str> {
    match &t.kind {
        TokKind::Ident(s) => Some(s),
        _ => None,
    }
}

/// Rust keywords that can precede `[` without it being an index
/// expression (`let [a, b] = ...`, `match x { [..] => ... }`, `return [..]`).
pub(crate) const NON_INDEX_KEYWORDS: &[&str] = &[
    "let", "in", "if", "else", "match", "return", "mut", "ref", "move", "break", "continue",
    "while", "for", "loop", "as", "where", "unsafe", "dyn", "impl", "fn", "use", "pub", "const",
    "static", "struct", "enum", "type", "trait", "mod",
];
