//! The rule engine: the two-phase [`Rule`] trait, the registry, and
//! shared token-matching helpers.
//!
//! Since `dblayout-sema`, every rule runs in two phases:
//!
//! * **scan** — per file, seeing only that file's tokens, parsed syntax,
//!   and test regions. Scan output (local findings + cross-file [`Facts`])
//!   is a pure function of the file text, which is what makes it cacheable
//!   in `results/lint_cache.json`.
//! * **finish** — once, over every file's facts. Cross-file rules (R4
//!   lock-order graph, R5 protocol join, R6 determinism-zone reachability,
//!   R10 registry coherence) do their joins here; purely local rules keep
//!   the default empty finish.
//!
//! A cross-file rule also declares [`Rule::global_deps`] — the path
//! prefixes whose changes can move its verdict — so `--diff` mode knows
//! which finish-phase findings a changed file can affect. The engine in
//! [`crate`] applies suppressions after both phases, so rules never need
//! to think about them.

use crate::lexer::{Tok, TokKind};
use crate::parse::ParsedFile;
use crate::summary::{Facts, FileSummary};
use crate::workspace::FileCtx;

mod atomic_hygiene;
mod determinism_zone;
mod float_hygiene;
mod lock_order;
mod lossy_cast;
mod no_panic;
mod poison_lock;
mod protocol_exhaustive;
mod registry_coherence;
mod swallowed_errors;

/// Every known rule id, in catalog order (also the set the suppression
/// parser accepts).
pub const RULE_IDS: &[&str] = &["R1", "R2", "R3", "R4", "R5", "R6", "R7", "R8", "R9", "R10"];

/// What a rule's scan phase sees: one lexed + parsed file.
pub struct ScanCtx<'a> {
    /// Lexed file with test regions and suppressions.
    pub file: &'a FileCtx,
    /// Recovered syntax (items, fns, calls, bindings).
    pub parsed: &'a ParsedFile,
}

/// What a rule's finish phase sees: every file's summary (facts included)
/// plus `DESIGN.md`.
pub struct FinishCtx<'a> {
    /// Per-file summaries, sorted by path.
    pub files: &'a [FileSummary],
    /// `DESIGN.md` text when available (R5/R10 documentation joins).
    pub design_md: Option<&'a str>,
}

/// One rule finding, before suppression filtering.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// What and why, with the suggested fix.
    pub message: String,
}

/// A lint rule.
pub trait Rule {
    /// Stable id (`R1`..`R10`).
    fn id(&self) -> &'static str;
    /// One-line summary for reports and docs.
    fn description(&self) -> &'static str;
    /// Per-file phase: local findings into `findings`, cross-file facts
    /// into `facts`. Must depend only on `ctx` (cacheability contract).
    fn scan(&self, ctx: &ScanCtx<'_>, facts: &mut Facts, findings: &mut Vec<Finding>);
    /// Whole-workspace phase over the collected facts.
    fn finish(&self, ctx: &FinishCtx<'_>) -> Vec<Finding> {
        let _ = ctx;
        Vec::new()
    }
    /// Path prefixes whose changes can alter this rule's finish-phase
    /// verdict (diff-mode dependency scoping). Empty for local rules.
    fn global_deps(&self) -> &'static [&'static str] {
        &[]
    }
}

/// The shipped rule set, in catalog order.
pub fn all_rules() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(no_panic::NoPanicInHotPath),
        Box::new(poison_lock::PoisonSafeLocking),
        Box::new(float_hygiene::FloatHygiene),
        Box::new(lock_order::LockOrder),
        Box::new(protocol_exhaustive::ProtocolExhaustiveness),
        Box::new(determinism_zone::DeterminismZone),
        Box::new(atomic_hygiene::AtomicHygiene),
        Box::new(lossy_cast::LossyCast),
        Box::new(swallowed_errors::SwallowedErrors),
        Box::new(registry_coherence::RegistryCoherence),
    ]
}

// ---- Shared token helpers ----

/// Whether `t` is the punctuation `s`.
pub(crate) fn is_punct(t: &Tok, s: &str) -> bool {
    matches!(&t.kind, TokKind::Punct(p) if p == s)
}

/// Whether `t` is the identifier `s`.
pub(crate) fn is_ident(t: &Tok, s: &str) -> bool {
    matches!(&t.kind, TokKind::Ident(i) if i == s)
}

/// The identifier text of `t`, if it is one.
pub(crate) fn ident_text(t: &Tok) -> Option<&str> {
    match &t.kind {
        TokKind::Ident(s) => Some(s),
        _ => None,
    }
}

/// `WhatifCost` → `whatif_cost` — the wire-op / metric naming convention
/// shared by R5 (protocol ops) and R10 (counter names).
pub(crate) fn camel_to_snake(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 4);
    for (i, c) in name.chars().enumerate() {
        if c.is_ascii_uppercase() {
            if i > 0 {
                out.push('_');
            }
            out.push(c.to_ascii_lowercase());
        } else {
            out.push(c);
        }
    }
    out
}

/// Rust keywords that can precede `[` without it being an index
/// expression (`let [a, b] = ...`, `match x { [..] => ... }`, `return [..]`).
pub(crate) const NON_INDEX_KEYWORDS: &[&str] = &[
    "let", "in", "if", "else", "match", "return", "mut", "ref", "move", "break", "continue",
    "while", "for", "loop", "as", "where", "unsafe", "dyn", "impl", "fn", "use", "pub", "const",
    "static", "struct", "enum", "type", "trait", "mod",
];
