//! R7 — atomic-ordering hygiene.
//!
//! The workspace's concurrency story is deliberately narrow: shared state
//! lives behind mutexes (R2/R4 territory), and the only raw atomics are
//! the sanctioned ones — the `obs` accounting paths (always-on counters,
//! trace sequence numbers, drop tallies: all `Relaxed`, since they are
//! monotonic tallies whose readers tolerate staleness), the server's
//! metrics mirrors (`Relaxed`, same argument) and its shutdown flag
//! (`SeqCst`: a rare store that must be seen promptly by every acceptor
//! and worker, where the cost of the strongest ordering is irrelevant and
//! the cost of reasoning about a weaker one is not), and `core::par`'s
//! test-only panic tripwires.
//!
//! Everything else is flagged: a raw atomic in `core` or `relayout` is
//! almost always a hand-rolled work counter that belongs in the
//! `obs::counters` registry (where it participates in the deterministic
//! fingerprint and the Prometheus exposition instead of being invisible),
//! and an `Ordering` choice outside a file's declared policy is either an
//! error or a policy change that must be made in DESIGN.md §5 first. Test
//! regions are exempt (tests legitimately use Acquire/Release handshakes
//! to order their own assertions).

use super::{ident_text, is_ident, is_punct, Finding, Rule, ScanCtx};
use crate::summary::Facts;

/// See module docs.
pub struct AtomicHygiene;

const ATOMIC_TYPES: &[&str] = &[
    "AtomicBool",
    "AtomicU8",
    "AtomicU16",
    "AtomicU32",
    "AtomicU64",
    "AtomicUsize",
    "AtomicI8",
    "AtomicI16",
    "AtomicI32",
    "AtomicI64",
    "AtomicIsize",
    "AtomicPtr",
];

const ORDERINGS: &[&str] = &["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// What a file is allowed to do with atomics.
enum Policy {
    /// Any atomic, any ordering (`core::par`'s scheduling internals).
    Sanctioned,
    /// Atomics allowed, but `Ordering` choices restricted to this set.
    Orderings(&'static [&'static str]),
    /// No raw atomics at all.
    Forbidden,
}

/// The declared policy table (mirrored in DESIGN.md §5). First match
/// wins; longest/most-specific prefixes come first.
fn policy_for(path: &str) -> Policy {
    if path == "crates/core/src/par.rs" {
        Policy::Sanctioned
    } else if path.starts_with("crates/obs/src/") {
        Policy::Orderings(&["Relaxed"])
    } else if path == "crates/server/src/server.rs" {
        Policy::Orderings(&["Relaxed", "SeqCst"])
    } else if path.starts_with("crates/server/src/") {
        Policy::Orderings(&["Relaxed"])
    } else if path == "crates/loadgen/src/driver.rs" {
        // The load driver's error/shed tallies: monotonic counters whose
        // readers tolerate staleness, same argument as the server metrics
        // mirrors. They are run-local measurement artifacts, not workspace
        // work counters, so they stay out of the obs::counters registry
        // (R10) — the registry is the *server's* deterministic
        // fingerprint; a client-side harness must not pollute it.
        Policy::Orderings(&["Relaxed"])
    } else {
        Policy::Forbidden
    }
}

impl Rule for AtomicHygiene {
    fn id(&self) -> &'static str {
        "R7"
    }

    fn description(&self) -> &'static str {
        "raw atomics only in sanctioned zones, with Ordering choices matching the declared \
         policy table (counters go through the obs::counters registry)"
    }

    fn scan(&self, ctx: &ScanCtx<'_>, _facts: &mut Facts, findings: &mut Vec<Finding>) {
        let path = &ctx.file.path;
        if !path.starts_with("crates/") {
            return;
        }
        let policy = policy_for(path);
        if matches!(policy, Policy::Sanctioned) {
            return;
        }
        let toks = &ctx.file.toks;
        let mut last_flagged_line = 0u32;
        let mut i = 0usize;
        while i < toks.len() {
            let t = &toks[i];
            // `use ...;` imports are declarations, not usage — skip so a
            // policy-clean file can still import the Ordering enum.
            if is_ident(t, "use") {
                while i < toks.len() && !is_punct(&toks[i], ";") {
                    i += 1;
                }
                continue;
            }
            if ctx.file.in_tests(t.line) {
                i += 1;
                continue;
            }
            if let Some(name) = ident_text(t) {
                match &policy {
                    Policy::Forbidden => {
                        let is_atomic_ty = ATOMIC_TYPES.contains(&name);
                        let is_ordering = name == "Ordering"
                            && toks.get(i + 1).is_some_and(|n| is_punct(n, "::"))
                            && toks
                                .get(i + 2)
                                .and_then(ident_text)
                                .is_some_and(|o| ORDERINGS.contains(&o));
                        // One finding per line keeps `static X: AtomicU64 =
                        // AtomicU64::new(0)` from double-reporting.
                        if (is_atomic_ty || is_ordering) && t.line != last_flagged_line {
                            last_flagged_line = t.line;
                            findings.push(Finding {
                                file: path.clone(),
                                line: t.line,
                                message: format!(
                                    "raw atomic (`{name}`) outside the sanctioned zones \
                                     (obs, core::par, crates/server); work counters belong in \
                                     the `obs::counters` registry so they join the \
                                     deterministic fingerprint and the Prometheus exposition \
                                     — otherwise use a lock or a channel"
                                ),
                            });
                        }
                    }
                    Policy::Orderings(allowed) => {
                        if name == "Ordering" && toks.get(i + 1).is_some_and(|n| is_punct(n, "::"))
                        {
                            if let Some(o) = toks.get(i + 2).and_then(ident_text) {
                                if ORDERINGS.contains(&o) && !allowed.contains(&o) {
                                    findings.push(Finding {
                                        file: path.clone(),
                                        line: t.line,
                                        message: format!(
                                            "`Ordering::{o}` is outside the declared policy \
                                             for this file (allowed: {}); change the \
                                             algorithm, or change the policy table in \
                                             DESIGN.md §5 and the R7 rule together",
                                            allowed.join(", ")
                                        ),
                                    });
                                }
                            }
                        }
                    }
                    Policy::Sanctioned => {}
                }
            }
            i += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::{policy_for, Policy};

    #[test]
    fn policy_table_matches_design_doc() {
        assert!(matches!(
            policy_for("crates/core/src/par.rs"),
            Policy::Sanctioned
        ));
        assert!(matches!(
            policy_for("crates/obs/src/counters.rs"),
            Policy::Orderings(["Relaxed"])
        ));
        assert!(matches!(
            policy_for("crates/server/src/server.rs"),
            Policy::Orderings(["Relaxed", "SeqCst"])
        ));
        assert!(matches!(
            policy_for("crates/server/src/metrics.rs"),
            Policy::Orderings(["Relaxed"])
        ));
        for forbidden in [
            "crates/core/src/tsgreedy.rs",
            "crates/relayout/src/budget.rs",
            "crates/planner/src/optimizer.rs",
            "crates/cli/src/main.rs",
        ] {
            assert!(
                matches!(policy_for(forbidden), Policy::Forbidden),
                "{forbidden} must forbid raw atomics"
            );
        }
    }
}
