//! R1 — no-panic-in-hot-path.
//!
//! The request-serving path (`crates/server`), the inner cost loops
//! (`core::costmodel`, `core::tsgreedy`, `core::par`), and the tracing
//! emit paths (`crates/obs` — including the always-on `obs::counters`
//! registry and the `obs::prof` phase timer, which run on every hot-path
//! iteration even with tracing disabled) must not contain panic
//! shortcuts: a panic inside a worker poisons whatever session/queue
//! lock it holds, a panic inside the cost model aborts a search the
//! caller already validated inputs for, and a panic while *emitting a
//! trace record or bumping a counter* would turn observability itself
//! into a crash vector. Flagged outside `#[cfg(test)]`:
//!
//! * `.unwrap()` / `.expect(...)` on `Option`/`Result`;
//! * the panicking macros `panic!` / `unreachable!` / `todo!` /
//!   `unimplemented!`;
//! * slice/array index expressions (`xs[i]`) — in `crates/server` only,
//!   where every index is attacker-influenced request data; the dense
//!   index arithmetic in `costmodel`/`tsgreedy` iterates loop-invariant
//!   bounds and keeps the slice idiom.
//!
//! `assert!`-family invariant checks and the non-panicking `unwrap_or*`
//! variants are allowed by design.

use super::{ident_text, is_punct, Finding, Rule, ScanCtx, NON_INDEX_KEYWORDS};
use crate::lexer::TokKind;
use crate::summary::Facts;
use crate::workspace::FileCtx;

/// See module docs.
pub struct NoPanicInHotPath;

const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

fn in_panic_zone(path: &str) -> bool {
    path.starts_with("crates/server/src/")
        || path.starts_with("crates/obs/src/")
        || path.starts_with("crates/relayout/src/")
        || path.starts_with("crates/audit/src/")
        || path == "crates/core/src/costmodel.rs"
        || path == "crates/core/src/tsgreedy.rs"
        || path == "crates/core/src/par.rs"
        || path == "crates/partition/src/coarsen.rs"
        || path == "crates/partition/src/multilevel.rs"
}

fn in_index_zone(path: &str) -> bool {
    path.starts_with("crates/server/src/")
}

impl Rule for NoPanicInHotPath {
    fn id(&self) -> &'static str {
        "R1"
    }

    fn description(&self) -> &'static str {
        "no unwrap/expect/panic! (and, in the server, no index expressions) in hot-path code"
    }

    fn scan(&self, ctx: &ScanCtx<'_>, _facts: &mut Facts, findings: &mut Vec<Finding>) {
        if in_panic_zone(&ctx.file.path) {
            check_file(ctx.file, findings);
        }
    }
}

fn check_file(file: &FileCtx, findings: &mut Vec<Finding>) {
    let toks = &file.toks;
    for (i, t) in toks.iter().enumerate() {
        if file.in_tests(t.line) {
            continue;
        }
        let Some(name) = ident_text(t) else {
            // Index expression: `[` directly after an ident, `)`, `]` or `?`
            // is an index (array literals/types/patterns follow punctuation
            // or keywords instead).
            if in_index_zone(&file.path) && is_punct(t, "[") && i > 0 {
                let prev = &toks[i - 1];
                let indexes = match &prev.kind {
                    TokKind::Ident(p) => !NON_INDEX_KEYWORDS.contains(&p.as_str()),
                    TokKind::Punct(p) => p == ")" || p == "]" || p == "?",
                    _ => false,
                };
                if indexes {
                    findings.push(Finding {
                        file: file.path.clone(),
                        line: t.line,
                        message: "index expression in the request-serving path can panic on a \
                                  bad index; use `.get(...)` with an explicit fallback"
                            .into(),
                    });
                }
            }
            continue;
        };
        // `.unwrap()` / `.expect(` — exact method names after a dot.
        if (name == "unwrap" || name == "expect")
            && i > 0
            && is_punct(&toks[i - 1], ".")
            && toks.get(i + 1).is_some_and(|n| is_punct(n, "("))
        {
            findings.push(Finding {
                file: file.path.clone(),
                line: t.line,
                message: format!(
                    "`.{name}()` can panic in hot-path code; return a structured error or use a \
                     non-panicking `unwrap_or*` with a documented fallback"
                ),
            });
            continue;
        }
        // `panic!(` and friends — ident followed by `!`; exclude `x != y`
        // (the lexer joins `!=`, so a bare `!` here really is a macro bang
        // or a unary not, and unary not is never directly after an ident).
        if PANIC_MACROS.contains(&name) && toks.get(i + 1).is_some_and(|n| is_punct(n, "!")) {
            findings.push(Finding {
                file: file.path.clone(),
                line: t.line,
                message: format!(
                    "`{name}!` aborts the request (and poisons any held lock); answer a \
                     structured error instead"
                ),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::in_panic_zone;

    /// The always-on accounting paths (`obs::counters`, `obs::prof`) run
    /// on every hot-path iteration — they must stay inside the R1 zone so
    /// a panic shortcut there is caught at lint time, not in production.
    #[test]
    fn counter_registry_and_phase_timer_are_in_the_panic_zone() {
        for path in [
            "crates/obs/src/counters.rs",
            "crates/obs/src/prof.rs",
            "crates/obs/src/sink.rs",
            "crates/server/src/engine.rs",
            "crates/core/src/tsgreedy.rs",
            "crates/relayout/src/drift.rs",
            "crates/relayout/src/budget.rs",
            "crates/relayout/src/planner.rs",
            "crates/relayout/src/decay.rs",
            "crates/audit/src/record.rs",
            "crates/audit/src/log.rs",
            "crates/audit/src/replay.rs",
            "crates/partition/src/coarsen.rs",
            "crates/partition/src/multilevel.rs",
        ] {
            assert!(in_panic_zone(path), "{path} must be R1-zoned");
        }
        for path in ["crates/bench/src/observatory.rs", "crates/cli/src/main.rs"] {
            assert!(!in_panic_zone(path), "{path} is not hot-path code");
        }
    }
}
