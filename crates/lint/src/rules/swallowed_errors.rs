//! R9 — swallowed errors on the service and planning paths.
//!
//! `let _ = fallible()` and `fallible().ok();` compile the `#[must_use]`
//! warning away — which is sometimes exactly right (best-effort wakeup
//! pokes, socket-option hints) and sometimes a bug that surfaces as a
//! silently wrong migration plan or a half-written response. On the paths
//! where a dropped error has consequences — the request-serving path
//! (`crates/server`), the index/partition planners (`crates/planner`),
//! and the continuous-relayout/migration layer (`crates/relayout`) — the
//! discard must be explicit and audited: handle the error, propagate it,
//! or keep the discard with a suppression whose reason says why
//! best-effort is correct there. Test regions are exempt.
//!
//! Both shapes are purely syntactic: `let _ =` with the wildcard pattern
//! exactly (a named `_guard` binding is a lifetime extension, not a
//! discard), and `.ok()` as a statement terminator (`.ok()?` or a
//! consumed `.ok()` feed the value onward and are fine).

use super::{is_ident, is_punct, Finding, Rule, ScanCtx};
use crate::summary::Facts;

/// See module docs.
pub struct SwallowedErrors;

fn in_error_zone(path: &str) -> bool {
    path.starts_with("crates/server/src/")
        || path.starts_with("crates/planner/src/")
        || path.starts_with("crates/relayout/src/")
}

impl Rule for SwallowedErrors {
    fn id(&self) -> &'static str {
        "R9"
    }

    fn description(&self) -> &'static str {
        "no `let _ =` / statement-level `.ok()` discarding Results in server, planner, and \
         relayout paths without a documented best-effort reason"
    }

    fn scan(&self, ctx: &ScanCtx<'_>, _facts: &mut Facts, findings: &mut Vec<Finding>) {
        if !in_error_zone(&ctx.file.path) {
            return;
        }
        let toks = &ctx.file.toks;
        for i in 0..toks.len() {
            let t = &toks[i];
            if ctx.file.in_tests(t.line) {
                continue;
            }
            // `let _ = ...` — wildcard discard.
            if is_ident(t, "let")
                && toks.get(i + 1).is_some_and(|n| is_ident(n, "_"))
                && toks.get(i + 2).is_some_and(|n| is_punct(n, "="))
            {
                findings.push(Finding {
                    file: ctx.file.path.clone(),
                    line: t.line,
                    message: "`let _ =` discards a Result on a path where a dropped error has \
                              consequences; handle or propagate it, or suppress with the \
                              reason best-effort is correct here"
                        .into(),
                });
                continue;
            }
            // `....ok();` — statement-level Result-to-Option discard.
            if is_ident(t, "ok")
                && i > 0
                && is_punct(&toks[i - 1], ".")
                && toks.get(i + 1).is_some_and(|n| is_punct(n, "("))
                && toks.get(i + 2).is_some_and(|n| is_punct(n, ")"))
                && toks.get(i + 3).is_some_and(|n| is_punct(n, ";"))
            {
                findings.push(Finding {
                    file: ctx.file.path.clone(),
                    line: t.line,
                    message: "statement-level `.ok()` swallows the error; handle or propagate \
                              it, or suppress with the reason best-effort is correct here"
                        .into(),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::in_error_zone;

    #[test]
    fn zone_covers_service_and_planning_paths() {
        assert!(in_error_zone("crates/server/src/server.rs"));
        assert!(in_error_zone("crates/planner/src/explain.rs"));
        assert!(in_error_zone("crates/relayout/src/planner.rs"));
        assert!(!in_error_zone("crates/core/src/tsgreedy.rs"));
        assert!(!in_error_zone("crates/bench/src/observatory.rs"));
    }
}
