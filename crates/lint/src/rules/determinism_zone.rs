//! R6 — determinism zones.
//!
//! The workspace's headline guarantee is that TS-GREEDY layouts, costs,
//! counters, and migration plans are byte-identical at any thread count
//! (DESIGN.md §7). The classic ways Rust code silently breaks that are
//! all *locally* innocent:
//!
//! * iterating a std `HashMap`/`HashSet` — the randomized hash seed makes
//!   visit order differ per process, reordering any fold over it;
//! * `Instant::now()` / `SystemTime::now()` feeding a value into the
//!   search (thresholds, tie-breaks, sampled seeds);
//! * `thread::current()` — branching on thread identity makes the result
//!   depend on scheduling.
//!
//! The **deterministic zone** is every function reachable (over the
//! name-based call graph of [`crate::sema`]) from a function defined in
//! `core::tsgreedy`, `core::par`, `crates/relayout`, or `obs::counters`
//! — the deterministic search paths and the counter registry whose
//! deltas form the regression fingerprint. Scan phase records each
//! function's calls and its determinism-sensitive sites; finish phase
//! runs the reachability and reports only sites inside the zone, naming
//! the call chain from the seed so the report explains *why* a file far
//! from the search code is zoned.
//!
//! Sites in test regions are exempt. A site that is provably harmless
//! (e.g. a timed path that deterministic runs disable by construction)
//! carries a reasoned suppression.

use super::{ident_text, is_ident, is_punct, Finding, FinishCtx, Rule, ScanCtx};
use crate::parse::{FnSyntax, ParsedFile};
use crate::sema::deterministic_reachability;
use crate::summary::{CallFact, DetSite, Facts, FnFact};
use crate::workspace::FileCtx;

/// See module docs.
pub struct DeterminismZone;

/// Methods whose call on a hash container observes iteration order.
const HASH_ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "values",
    "values_mut",
    "into_keys",
    "into_values",
    "drain",
    "retain",
];

const HASH_TYPES: &[&str] = &["HashMap", "HashSet"];

impl Rule for DeterminismZone {
    fn id(&self) -> &'static str {
        "R6"
    }

    fn description(&self) -> &'static str {
        "no hash-order iteration, wall-clock-derived values, or thread-identity branching \
         reachable from the deterministic search paths"
    }

    fn scan(&self, ctx: &ScanCtx<'_>, facts: &mut Facts, _findings: &mut Vec<Finding>) {
        if !ctx.file.path.starts_with("crates/") {
            return;
        }
        for f in &ctx.parsed.fns {
            // Functions defined inside test regions are invisible to the
            // zone: linking them would let a test helper's clock use zone
            // production code it happens to share a name with.
            if ctx.file.in_tests(f.line) {
                continue;
            }
            facts.fns.push(fn_fact(ctx.file, ctx.parsed, f));
        }
    }

    fn finish(&self, ctx: &FinishCtx<'_>) -> Vec<Finding> {
        let reach = deterministic_reachability(ctx.files);
        let mut findings = Vec::new();
        for (&(fi, gi), chain) in &reach {
            let file = &ctx.files[fi];
            let f = &file.facts.fns[gi];
            for site in &f.det_sites {
                findings.push(Finding {
                    file: file.path.clone(),
                    line: site.line,
                    message: format!(
                        "{} in `{}`, which is in the deterministic zone (reachable via {}); \
                         use an order-stable structure (BTreeMap/Vec), take the value outside \
                         the zone, or suppress with the reason it cannot affect results",
                        site.what,
                        f.qualified.as_deref().unwrap_or(&f.name),
                        chain
                    ),
                });
            }
        }
        findings
    }

    fn global_deps(&self) -> &'static [&'static str] {
        // Reachability spans the whole workspace: any file can add a call
        // edge into the zone.
        &["crates/"]
    }
}

/// Builds the summary fact for one function: calls (with receiver types
/// resolved through locals → params → struct fields) and
/// determinism-sensitive sites.
fn fn_fact(file: &FileCtx, parsed: &ParsedFile, f: &FnSyntax) -> FnFact {
    let resolve = |name: &str| -> Option<String> {
        f.locals
            .iter()
            .chain(f.params.iter())
            .chain(parsed.fields.iter())
            .find(|t| t.name == name)
            .map(|t| t.type_head.clone())
    };
    let calls: Vec<CallFact> = f
        .calls
        .iter()
        .map(|c| CallFact {
            name: c.name.clone(),
            qualifier: c.qualifier.clone(),
            receiver_type: c.receiver.as_deref().and_then(resolve),
            method: c.method,
        })
        .collect();
    let mut det_sites: Vec<DetSite> = Vec::new();
    // Hash-container iteration: a known iteration method on a receiver
    // whose type head resolves to HashMap/HashSet...
    for (c, fact) in f.calls.iter().zip(&calls) {
        if !c.method || file.in_tests(c.line) {
            continue;
        }
        if HASH_ITER_METHODS.contains(&c.name.as_str())
            && fact
                .receiver_type
                .as_deref()
                .is_some_and(|t| HASH_TYPES.contains(&t))
        {
            det_sites.push(DetSite {
                line: c.line,
                what: format!(
                    "std {} iteration order is randomized per process (`.{}()`)",
                    fact.receiver_type.as_deref().unwrap_or("HashMap"),
                    c.name
                ),
            });
        }
    }
    // ...or a `for` loop over such a binding.
    for l in &f.for_loops {
        if file.in_tests(l.line) || l.iterated_call {
            continue;
        }
        if let Some(ty) = l.iterated.as_deref().and_then(resolve) {
            if HASH_TYPES.contains(&ty.as_str()) {
                det_sites.push(DetSite {
                    line: l.line,
                    what: format!("std {ty} iteration order is randomized per process (for-loop)"),
                });
            }
        }
    }
    // Wall-clock and thread-identity references, caught at the token
    // level inside the body so function-reference forms
    // (`.then(Instant::now)`) count too, not just calls.
    if let Some((lo, hi)) = f.body {
        let toks = &file.toks;
        for i in lo..=hi.min(toks.len().saturating_sub(1)) {
            let t = &toks[i];
            if file.in_tests(t.line) {
                continue;
            }
            let Some(name) = ident_text(t) else { continue };
            let path_next = |j: usize, seg: &str| {
                toks.get(j + 1).is_some_and(|n| is_punct(n, "::"))
                    && toks.get(j + 2).is_some_and(|n| is_ident(n, seg))
            };
            if (name == "Instant" || name == "SystemTime") && path_next(i, "now") {
                det_sites.push(DetSite {
                    line: t.line,
                    what: format!("wall-clock value (`{name}::now`)"),
                });
            }
            if name == "thread" && path_next(i, "current") {
                det_sites.push(DetSite {
                    line: t.line,
                    what: "thread-identity value (`thread::current`)".to_string(),
                });
            }
        }
    }
    det_sites.sort_by_key(|s| s.line);
    FnFact {
        name: f.name.clone(),
        qualified: f.qualified.clone(),
        line: f.line,
        calls,
        det_sites,
    }
}
