//! R2 — poison-safe locking.
//!
//! PR 1 wrapped request execution in `catch_unwind`, so a panicking
//! request leaves shared mutexes poisoned but the data behind them intact
//! (handlers stage mutations before applying). Every lock acquisition in
//! `crates/server` must therefore recover from poisoning instead of
//! unwrapping it — otherwise one panic wedges every later request that
//! touches the same mutex. The blessed paths are the crate's
//! `lock_unpoisoned` helper and the recovery idiom it wraps
//! (`.lock().unwrap_or_else(PoisonError::into_inner)`, also accepted on
//! `Condvar::wait`). A bare `.lock()` followed by anything else —
//! `.unwrap()`, `.expect(...)`, `?`, or nothing — is flagged, in test code
//! too: the drain path runs during tests as well, and a test that poisons
//! a mutex on purpose still acquires it through the helper first.

use super::{is_ident, is_punct, Finding, Rule, ScanCtx};
use crate::summary::Facts;
use crate::workspace::FileCtx;

/// See module docs.
pub struct PoisonSafeLocking;

impl Rule for PoisonSafeLocking {
    fn id(&self) -> &'static str {
        "R2"
    }

    fn description(&self) -> &'static str {
        "every Mutex::lock() in crates/server must recover poisoning (lock_unpoisoned helper)"
    }

    fn scan(&self, ctx: &ScanCtx<'_>, _facts: &mut Facts, findings: &mut Vec<Finding>) {
        if ctx.file.path.starts_with("crates/server/src/") {
            check_file(ctx.file, findings);
        }
    }
}

fn check_file(file: &FileCtx, findings: &mut Vec<Finding>) {
    let toks = &file.toks;
    for i in 0..toks.len() {
        // `.lock()` — a method call, not the `lock` in `lock_unpoisoned(..)`.
        if !(is_ident(&toks[i], "lock")
            && i > 0
            && is_punct(&toks[i - 1], ".")
            && toks.get(i + 1).is_some_and(|t| is_punct(t, "("))
            && toks.get(i + 2).is_some_and(|t| is_punct(t, ")")))
        {
            continue;
        }
        // Allowed continuation: `.unwrap_or_else(` — the poison-recovery
        // idiom (the helper's own body, and Condvar::wait call sites).
        let recovered = toks.get(i + 3).is_some_and(|t| is_punct(t, "."))
            && toks
                .get(i + 4)
                .is_some_and(|t| is_ident(t, "unwrap_or_else"));
        if !recovered {
            findings.push(Finding {
                file: file.path.clone(),
                line: toks[i].line,
                message: "bare `Mutex::lock()` does not recover poisoning; one panicking \
                          request would wedge every later request on this mutex — route \
                          through `crate::lock_unpoisoned`"
                    .into(),
            });
        }
    }
}
