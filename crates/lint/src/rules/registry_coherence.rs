//! R10 — counter-registry coherence.
//!
//! The `obs::counters` registry (DESIGN.md §8) is the one place hot-path
//! work is tallied, and three downstream surfaces must stay in lock-step
//! with it: the Prometheus `metrics` op (exports every counter as a
//! `dblayout_*_total` family via `CounterSnapshot::pairs()`), the
//! `dblayout explain` narrative (renders the deterministic class via
//! `deterministic_pairs()`), and DESIGN.md's §8 counter table. All three
//! iterate `Counter::ALL` generically, so the classic drift is *inside
//! the registry itself*: add a variant and forget the `COUNT` bump or
//! the `ALL` entry and every generic renderer silently skips it; forget
//! the DESIGN.md row and the operator-facing contract goes stale.
//!
//! Extending R5's protocol-join approach, the scan phase extracts the
//! registry's declared shape from `counters.rs` (variants in order, the
//! `COUNT` const, the `ALL` array, the `is_deterministic` exclusion set)
//! and flags which files call the render surfaces; the finish phase joins
//! them:
//!
//! * `COUNT` == number of variants, and `ALL` lists every variant in
//!   declaration order (discriminants are slot indices — order *is* ABI);
//! * every variant's snake_case name (the `name()` convention, enforced
//!   by `counters.rs`'s own tests) appears in DESIGN.md;
//! * some `crates/server` file calls `.pairs()` outside tests (the
//!   Prometheus exposition) and some `crates/cli` file calls
//!   `.deterministic_pairs()` outside tests (the explain rendering);
//! * the scheduling class (`is_deterministic` exclusions) names real
//!   variants.
//!
//! When `counters.rs` is not among the scanned files (fixture runs) the
//! rule is inert.

use super::{camel_to_snake, ident_text, is_ident, is_punct, Finding, FinishCtx, Rule, ScanCtx};
use crate::summary::{CounterFacts, Facts};
use crate::workspace::FileCtx;

/// See module docs.
pub struct RegistryCoherence;

impl Rule for RegistryCoherence {
    fn id(&self) -> &'static str {
        "R10"
    }

    fn description(&self) -> &'static str {
        "every obs counter is in COUNT/ALL, exported via pairs() (Prometheus), rendered via \
         deterministic_pairs() (explain), and listed in DESIGN.md"
    }

    fn scan(&self, ctx: &ScanCtx<'_>, facts: &mut Facts, _findings: &mut Vec<Finding>) {
        if ctx.file.path.ends_with("obs/src/counters.rs") {
            facts.counters = Some(counter_facts(ctx.file));
        }
        facts.renders_pairs = calls_method(ctx.file, "pairs");
        facts.renders_deterministic_pairs = calls_method(ctx.file, "deterministic_pairs");
    }

    fn finish(&self, ctx: &FinishCtx<'_>) -> Vec<Finding> {
        let Some((path, c)) = ctx
            .files
            .iter()
            .find_map(|f| f.facts.counters.as_ref().map(|c| (f.path.clone(), c)))
        else {
            return Vec::new();
        };
        let mut findings = Vec::new();
        let mut report = |line: u32, message: String| {
            findings.push(Finding {
                file: path.clone(),
                line,
                message,
            });
        };
        if c.count_const != Some(c.variants.len() as u64) {
            report(
                c.enum_line,
                format!(
                    "`COUNT` is {:?} but `enum Counter` declares {} variants; the backing \
                     slot array and every snapshot loop are sized by COUNT",
                    c.count_const,
                    c.variants.len()
                ),
            );
        }
        let declared: Vec<&str> = c.variants.iter().map(|(v, _)| v.as_str()).collect();
        if c.all_entries != declared {
            let missing: Vec<&str> = declared
                .iter()
                .filter(|v| !c.all_entries.iter().any(|a| a == *v))
                .copied()
                .collect();
            report(
                c.enum_line,
                if missing.is_empty() {
                    "`Counter::ALL` lists variants out of declaration order; discriminants \
                     are slot indices, so ALL order is the exposition ABI"
                        .to_string()
                } else {
                    format!(
                        "`Counter::ALL` is missing {} — every generic renderer (pairs, \
                         Prometheus, explain) silently skips counters absent from ALL",
                        missing.join(", ")
                    )
                },
            );
        }
        for sched in &c.scheduling {
            if !declared.contains(&sched.as_str()) {
                report(
                    c.enum_line,
                    format!(
                        "`is_deterministic` excludes `{sched}`, which is not a Counter \
                         variant; the scheduling class is out of sync"
                    ),
                );
            }
        }
        if let Some(design) = ctx.design_md {
            for (v, line) in &c.variants {
                let snake = camel_to_snake(v);
                if !design.contains(&snake) {
                    report(
                        *line,
                        format!(
                            "counter `{v}` is missing from DESIGN.md's §8 counter table \
                             (expected metric name `{snake}`)"
                        ),
                    );
                }
            }
        }
        if !ctx
            .files
            .iter()
            .any(|f| f.path.starts_with("crates/server/") && f.facts.renders_pairs)
        {
            report(
                c.enum_line,
                "no crates/server file calls `CounterSnapshot::pairs()` — the Prometheus \
                 `metrics` op no longer exports the counter registry"
                    .to_string(),
            );
        }
        if !ctx
            .files
            .iter()
            .any(|f| f.path.starts_with("crates/cli/") && f.facts.renders_deterministic_pairs)
        {
            report(
                c.enum_line,
                "no crates/cli file calls `deterministic_pairs()` — `dblayout explain` no \
                 longer renders the deterministic counter class"
                    .to_string(),
            );
        }
        findings
    }

    fn global_deps(&self) -> &'static [&'static str] {
        &[
            "crates/obs/src/counters.rs",
            "crates/server/",
            "crates/cli/",
            "DESIGN.md",
        ]
    }
}

/// Whether the file calls `.{name}()` anywhere outside tests.
fn calls_method(file: &FileCtx, name: &str) -> bool {
    let toks = &file.toks;
    (0..toks.len()).any(|i| {
        is_ident(&toks[i], name)
            && i > 0
            && is_punct(&toks[i - 1], ".")
            && toks.get(i + 1).is_some_and(|t| is_punct(t, "("))
            && !file.in_tests(toks[i].line)
    })
}

/// Extracts the registry's declared shape from `counters.rs` tokens.
fn counter_facts(file: &FileCtx) -> CounterFacts {
    let toks = &file.toks;
    let mut facts = CounterFacts::default();
    let mut i = 0usize;
    while i < toks.len() {
        let t = &toks[i];
        // `enum Counter { Variant = N, ... }`
        if is_ident(t, "enum") && toks.get(i + 1).is_some_and(|n| is_ident(n, "Counter")) {
            facts.enum_line = t.line;
            let mut j = i + 2;
            while j < toks.len() && !is_punct(&toks[j], "{") {
                j += 1;
            }
            let mut depth = 0usize;
            while j < toks.len() {
                let tj = &toks[j];
                if is_punct(tj, "{") || is_punct(tj, "(") || is_punct(tj, "[") {
                    depth += 1;
                } else if is_punct(tj, "}") || is_punct(tj, ")") || is_punct(tj, "]") {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                } else if depth == 1 {
                    if is_punct(tj, "#") && toks.get(j + 1).is_some_and(|n| is_punct(n, "[")) {
                        // Skip the attribute span.
                        let mut brackets = 0usize;
                        j += 1;
                        while j < toks.len() {
                            if is_punct(&toks[j], "[") {
                                brackets += 1;
                            } else if is_punct(&toks[j], "]") {
                                brackets -= 1;
                                if brackets == 0 {
                                    break;
                                }
                            }
                            j += 1;
                        }
                    } else if let Some(name) = ident_text(tj) {
                        // A variant entry: `Name`, `Name = N`, `Name,`.
                        let entryish = toks.get(j + 1).is_some_and(|n| {
                            is_punct(n, ",") || is_punct(n, "=") || is_punct(n, "}")
                        });
                        if entryish {
                            facts.variants.push((name.to_string(), tj.line));
                        }
                    }
                }
                j += 1;
            }
            i = j;
            continue;
        }
        // `pub const COUNT: usize = 16;`
        if is_ident(t, "COUNT")
            && i > 0
            && is_ident(&toks[i - 1], "const")
            && toks.get(i + 1).is_some_and(|n| is_punct(n, ":"))
        {
            let mut j = i + 2;
            while j < toks.len() && !is_punct(&toks[j], "=") && !is_punct(&toks[j], ";") {
                j += 1;
            }
            if let Some(TokKindInt(n)) = toks.get(j + 1).and_then(int_value) {
                facts.count_const = Some(n);
            }
            i = j;
            continue;
        }
        // `pub const ALL: [Counter; COUNT] = [ Counter::A, ... ];`
        if is_ident(t, "ALL") && i > 0 && is_ident(&toks[i - 1], "const") {
            let mut j = i + 1;
            while j < toks.len() && !is_punct(&toks[j], "=") {
                j += 1;
            }
            // The initializer `[ ... ]`.
            while j < toks.len() && !is_punct(&toks[j], "[") {
                j += 1;
            }
            let mut depth = 0usize;
            while j < toks.len() {
                let tj = &toks[j];
                if is_punct(tj, "[") {
                    depth += 1;
                } else if is_punct(tj, "]") {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                } else if is_ident(tj, "Counter")
                    && toks.get(j + 1).is_some_and(|n| is_punct(n, "::"))
                {
                    if let Some(v) = toks.get(j + 2).and_then(ident_text) {
                        facts.all_entries.push(v.to_string());
                        j += 2;
                    }
                }
                j += 1;
            }
            i = j;
            continue;
        }
        // `fn is_deterministic(..) { !matches!(self, Counter::A | Counter::B) }`
        if is_ident(t, "is_deterministic") && i > 0 && is_ident(&toks[i - 1], "fn") {
            let mut j = i + 1;
            while j < toks.len() && !is_punct(&toks[j], "{") {
                j += 1;
            }
            let mut depth = 0usize;
            while j < toks.len() {
                let tj = &toks[j];
                if is_punct(tj, "{") {
                    depth += 1;
                } else if is_punct(tj, "}") {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                } else if is_ident(tj, "Counter")
                    && toks.get(j + 1).is_some_and(|n| is_punct(n, "::"))
                {
                    if let Some(v) = toks.get(j + 2).and_then(ident_text) {
                        facts.scheduling.push(v.to_string());
                        j += 2;
                    }
                }
                j += 1;
            }
            i = j;
            continue;
        }
        i += 1;
    }
    facts
}

/// Integer token payload.
struct TokKindInt(u64);

fn int_value(t: &crate::lexer::Tok) -> Option<TokKindInt> {
    match &t.kind {
        crate::lexer::TokKind::Int(text) => {
            text.replace('_', "").parse::<u64>().ok().map(TokKindInt)
        }
        _ => None,
    }
}
