//! R3 — float hygiene.
//!
//! NaN entering the Figure-7 cost model silently reorders greedy/KL
//! candidate selection: `partial_cmp` answers `None` (so
//! `.unwrap_or(Equal)` quietly stops sorting, and `.unwrap()` panics), and
//! `==`/`!=` on floats is false/true for NaN in ways comparisons-by-hand
//! rarely intend. Flagged outside `#[cfg(test)]`, in every first-party
//! crate:
//!
//! * any `partial_cmp` call — on the workspace's numeric types the right
//!   tool is `f64::total_cmp`, which is total over NaN and keeps sorts
//!   deterministic; a genuinely partial ordering can document its fallback
//!   via suppression;
//! * `==` / `!=` where either operand is a float literal — exact float
//!   equality is occasionally right (bit-exact zero filters) and must then
//!   say so via suppression.

use super::{is_ident, is_punct, Finding, Rule, ScanCtx};
use crate::lexer::TokKind;
use crate::summary::Facts;
use crate::workspace::FileCtx;

/// See module docs.
pub struct FloatHygiene;

impl Rule for FloatHygiene {
    fn id(&self) -> &'static str {
        "R3"
    }

    fn description(&self) -> &'static str {
        "no partial_cmp (use f64::total_cmp) and no ==/!= against float literals"
    }

    fn scan(&self, ctx: &ScanCtx<'_>, _facts: &mut Facts, findings: &mut Vec<Finding>) {
        if ctx.file.path.starts_with("crates/") {
            check_file(ctx.file, findings);
        }
    }
}

fn check_file(file: &FileCtx, findings: &mut Vec<Finding>) {
    let toks = &file.toks;
    for (i, t) in toks.iter().enumerate() {
        if file.in_tests(t.line) {
            continue;
        }
        if is_ident(t, "partial_cmp") && i > 0 && is_punct(&toks[i - 1], ".") {
            findings.push(Finding {
                file: file.path.clone(),
                line: t.line,
                message: "`partial_cmp` is None for NaN, silently reordering candidate \
                          selection; use `f64::total_cmp`, or document a total-order \
                          fallback via suppression"
                    .into(),
            });
            continue;
        }
        if is_punct(t, "==") || is_punct(t, "!=") {
            let float_operand = [i.checked_sub(1), Some(i + 1)]
                .into_iter()
                .flatten()
                .filter_map(|j| toks.get(j))
                .any(|n| matches!(n.kind, TokKind::Float(_)));
            if float_operand {
                findings.push(Finding {
                    file: file.path.clone(),
                    line: t.line,
                    message: "float equality is NaN-unsafe and precision-fragile; compare \
                              with a tolerance, restructure the predicate, or document the \
                              exact-equality intent via suppression"
                        .into(),
                });
            }
        }
    }
}
