//! Per-file scan summaries: the cacheable unit of analysis.
//!
//! The two-phase engine (see [`crate`]) splits every rule into a per-file
//! **scan** — local findings plus the cross-file *facts* the finish phase
//! joins (lock edges, protocol variants, fn/call tables, counter-registry
//! shape) — and a whole-workspace **finish**. A [`FileSummary`] captures
//! everything the finish phase and the reporter need from one file, so an
//! unchanged file (same content hash) can skip lexing, parsing, and
//! scanning entirely on a warm run: its summary is deserialized from
//! `results/lint_cache.json` instead.
//!
//! Everything here round-trips through the vendored `serde_json` `Value`
//! exactly — a lossy field would make warm findings diverge from cold
//! ones, which the cache-correctness test forbids.

use serde_json::{Value, ValueExt};

use crate::suppress::Suppression;

/// One finding as produced by a rule's scan phase, before suppression
/// matching. The rule id is a `String` here (summaries cross the cache
/// boundary); the engine interns it back to the static id.
#[derive(Debug, Clone, PartialEq)]
pub struct RawFinding {
    /// Rule id (`R1`..`R10`).
    pub rule: String,
    /// 1-based line.
    pub line: u32,
    /// What and why, with the suggested fix.
    pub message: String,
}

/// One lock-acquisition-order edge (R4): `to` was acquired while `from`
/// was held, first seen at `line`.
#[derive(Debug, Clone, PartialEq)]
pub struct LockEdge {
    /// Held mutex name.
    pub from: String,
    /// Acquired mutex name.
    pub to: String,
    /// 1-based line of the acquisition.
    pub line: u32,
}

/// One call site inside a function (R6 call-graph edge source).
#[derive(Debug, Clone, PartialEq)]
pub struct CallFact {
    /// Callee's final path segment.
    pub name: String,
    /// Path qualifier (`Advisor` in `Advisor::new`), when present.
    pub qualifier: Option<String>,
    /// Resolved type head of a method call's receiver (`HashMap` for
    /// `self.map.iter()` when `map: HashMap<..>`), when resolvable.
    pub receiver_type: Option<String>,
    /// Whether this was a `.name(..)` method call.
    pub method: bool,
}

/// A determinism-sensitive site inside a function (R6).
#[derive(Debug, Clone, PartialEq)]
pub struct DetSite {
    /// 1-based line.
    pub line: u32,
    /// What was found (`std HashMap iteration via keys()`, ...).
    pub what: String,
}

/// One function with the facts R6's reachability analysis needs.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FnFact {
    /// Plain name.
    pub name: String,
    /// `Type::name` when defined in an `impl` block.
    pub qualified: Option<String>,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Calls made in the body.
    pub calls: Vec<CallFact>,
    /// Determinism-sensitive sites in the body.
    pub det_sites: Vec<DetSite>,
}

/// Shape of the `obs::counters` registry (R10), extracted from
/// `counters.rs`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CounterFacts {
    /// `enum Counter` variants in declaration order, with lines.
    pub variants: Vec<(String, u32)>,
    /// Value of `pub const COUNT: usize`.
    pub count_const: Option<u64>,
    /// Entries of `Counter::ALL` in order (final path segments).
    pub all_entries: Vec<String>,
    /// Variants excluded by `is_deterministic` (the scheduling class).
    pub scheduling: Vec<String>,
    /// Line of the `enum Counter` item (finding anchor).
    pub enum_line: u32,
}

/// Cross-file facts extracted from one file during the scan phase.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Facts {
    /// R4: lock-order edges.
    pub lock_edges: Vec<LockEdge>,
    /// R5: `enum Request` variants (protocol.rs only).
    pub request_variants: Vec<(String, u32)>,
    /// R5: `Request::X` paths referenced outside tests (engine.rs).
    pub dispatched: Vec<String>,
    /// R6: functions with calls and determinism-sensitive sites.
    pub fns: Vec<FnFact>,
    /// R10: counter-registry shape (counters.rs only).
    pub counters: Option<CounterFacts>,
    /// R10: file calls `.pairs()` outside tests (Prometheus exposition).
    pub renders_pairs: bool,
    /// R10: file calls `.deterministic_pairs()` outside tests (explain).
    pub renders_deterministic_pairs: bool,
}

/// Everything the finish phase and reporter need from one scanned file.
#[derive(Debug, Clone, PartialEq)]
pub struct FileSummary {
    /// Workspace-relative, forward-slash path.
    pub path: String,
    /// FNV-1a 64 hash of the file text (cache key).
    pub hash: u64,
    /// Lex failure, when the file could not be analyzed at all.
    pub lex_error: Option<String>,
    /// Local (scan-phase) findings.
    pub findings: Vec<RawFinding>,
    /// Parsed suppression directives (including malformed ones).
    pub suppressions: Vec<Suppression>,
    /// Cross-file facts.
    pub facts: Facts,
}

// ---- JSON round-trip ----
//
// Hand-rolled against the vendored `Value`; keys are emitted in a fixed
// order so the cache file is diffable.

fn map(entries: Vec<(&str, Value)>) -> Value {
    Value::Map(
        entries
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn str_v(s: &str) -> Value {
    Value::Str(s.to_string())
}

fn opt_str(s: &Option<String>) -> Value {
    match s {
        Some(s) => str_v(s),
        None => Value::Null,
    }
}

fn get_str(v: &Value, key: &str) -> Option<String> {
    v.get(key).and_then(|x| x.as_str()).map(str::to_string)
}

fn get_opt_str(v: &Value, key: &str) -> Option<String> {
    // Missing key and explicit null both mean `None`.
    v.get(key).and_then(|x| x.as_str()).map(str::to_string)
}

fn get_u32(v: &Value, key: &str) -> Option<u32> {
    v.get(key).and_then(|x| x.as_u64()).map(|n| n as u32)
}

fn get_bool(v: &Value, key: &str) -> bool {
    v.get(key).and_then(|x| x.as_bool()).unwrap_or(false)
}

fn get_seq<'a>(v: &'a Value, key: &str) -> &'a [Value] {
    v.get(key)
        .and_then(|x| x.as_array())
        .map(Vec::as_slice)
        .unwrap_or_default()
}

fn named_lines_to_value(items: &[(String, u32)]) -> Value {
    Value::Seq(
        items
            .iter()
            .map(|(n, l)| map(vec![("name", str_v(n)), ("line", Value::U64(*l as u64))]))
            .collect(),
    )
}

fn named_lines_from_value(v: &[Value]) -> Option<Vec<(String, u32)>> {
    v.iter()
        .map(|e| Some((get_str(e, "name")?, get_u32(e, "line")?)))
        .collect()
}

fn strings_to_value(items: &[String]) -> Value {
    Value::Seq(items.iter().map(|s| str_v(s)).collect())
}

fn strings_from_value(v: &[Value]) -> Option<Vec<String>> {
    v.iter().map(|e| e.as_str().map(str::to_string)).collect()
}

impl FileSummary {
    /// Serializes for the cache.
    pub fn to_value(&self) -> Value {
        map(vec![
            ("path", str_v(&self.path)),
            // u64 hashes exceed f64 precision; store as a hex string.
            ("hash", str_v(&format!("{:016x}", self.hash))),
            ("lex_error", opt_str(&self.lex_error)),
            (
                "findings",
                Value::Seq(
                    self.findings
                        .iter()
                        .map(|f| {
                            map(vec![
                                ("rule", str_v(&f.rule)),
                                ("line", Value::U64(f.line as u64)),
                                ("message", str_v(&f.message)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "suppressions",
                Value::Seq(
                    self.suppressions
                        .iter()
                        .map(|s| {
                            map(vec![
                                ("rule", str_v(&s.rule)),
                                ("reason", str_v(&s.reason)),
                                ("line", Value::U64(s.line as u64)),
                                ("effective_line", Value::U64(s.effective_line as u64)),
                                ("error", opt_str(&s.error)),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("facts", facts_to_value(&self.facts)),
        ])
    }

    /// Deserializes a cache entry; `None` on any shape mismatch (the
    /// caller treats that as a cache miss).
    pub fn from_value(v: &Value) -> Option<FileSummary> {
        let hash = u64::from_str_radix(&get_str(v, "hash")?, 16).ok()?;
        let findings = get_seq(v, "findings")
            .iter()
            .map(|f| {
                Some(RawFinding {
                    rule: get_str(f, "rule")?,
                    line: get_u32(f, "line")?,
                    message: get_str(f, "message")?,
                })
            })
            .collect::<Option<Vec<_>>>()?;
        let suppressions = get_seq(v, "suppressions")
            .iter()
            .map(|s| {
                Some(Suppression {
                    rule: get_str(s, "rule")?,
                    reason: get_str(s, "reason")?,
                    line: get_u32(s, "line")?,
                    effective_line: get_u32(s, "effective_line")?,
                    error: get_opt_str(s, "error"),
                })
            })
            .collect::<Option<Vec<_>>>()?;
        Some(FileSummary {
            path: get_str(v, "path")?,
            hash,
            lex_error: get_opt_str(v, "lex_error"),
            findings,
            suppressions,
            facts: facts_from_value(v.get("facts")?)?,
        })
    }
}

fn facts_to_value(f: &Facts) -> Value {
    let mut entries = vec![(
        "lock_edges",
        Value::Seq(
            f.lock_edges
                .iter()
                .map(|e| {
                    map(vec![
                        ("from", str_v(&e.from)),
                        ("to", str_v(&e.to)),
                        ("line", Value::U64(e.line as u64)),
                    ])
                })
                .collect(),
        ),
    )];
    entries.push((
        "request_variants",
        named_lines_to_value(&f.request_variants),
    ));
    entries.push(("dispatched", strings_to_value(&f.dispatched)));
    entries.push((
        "fns",
        Value::Seq(
            f.fns
                .iter()
                .map(|fun| {
                    map(vec![
                        ("name", str_v(&fun.name)),
                        ("qualified", opt_str(&fun.qualified)),
                        ("line", Value::U64(fun.line as u64)),
                        (
                            "calls",
                            Value::Seq(
                                fun.calls
                                    .iter()
                                    .map(|c| {
                                        map(vec![
                                            ("name", str_v(&c.name)),
                                            ("qualifier", opt_str(&c.qualifier)),
                                            ("receiver_type", opt_str(&c.receiver_type)),
                                            ("method", Value::Bool(c.method)),
                                        ])
                                    })
                                    .collect(),
                            ),
                        ),
                        (
                            "det_sites",
                            Value::Seq(
                                fun.det_sites
                                    .iter()
                                    .map(|d| {
                                        map(vec![
                                            ("line", Value::U64(d.line as u64)),
                                            ("what", str_v(&d.what)),
                                        ])
                                    })
                                    .collect(),
                            ),
                        ),
                    ])
                })
                .collect(),
        ),
    ));
    entries.push((
        "counters",
        match &f.counters {
            None => Value::Null,
            Some(c) => map(vec![
                ("variants", named_lines_to_value(&c.variants)),
                (
                    "count_const",
                    c.count_const.map(Value::U64).unwrap_or(Value::Null),
                ),
                ("all_entries", strings_to_value(&c.all_entries)),
                ("scheduling", strings_to_value(&c.scheduling)),
                ("enum_line", Value::U64(c.enum_line as u64)),
            ]),
        },
    ));
    entries.push(("renders_pairs", Value::Bool(f.renders_pairs)));
    entries.push((
        "renders_deterministic_pairs",
        Value::Bool(f.renders_deterministic_pairs),
    ));
    map(entries)
}

fn facts_from_value(v: &Value) -> Option<Facts> {
    let lock_edges = get_seq(v, "lock_edges")
        .iter()
        .map(|e| {
            Some(LockEdge {
                from: get_str(e, "from")?,
                to: get_str(e, "to")?,
                line: get_u32(e, "line")?,
            })
        })
        .collect::<Option<Vec<_>>>()?;
    let fns = get_seq(v, "fns")
        .iter()
        .map(|fun| {
            Some(FnFact {
                name: get_str(fun, "name")?,
                qualified: get_opt_str(fun, "qualified"),
                line: get_u32(fun, "line")?,
                calls: get_seq(fun, "calls")
                    .iter()
                    .map(|c| {
                        Some(CallFact {
                            name: get_str(c, "name")?,
                            qualifier: get_opt_str(c, "qualifier"),
                            receiver_type: get_opt_str(c, "receiver_type"),
                            method: get_bool(c, "method"),
                        })
                    })
                    .collect::<Option<Vec<_>>>()?,
                det_sites: get_seq(fun, "det_sites")
                    .iter()
                    .map(|d| {
                        Some(DetSite {
                            line: get_u32(d, "line")?,
                            what: get_str(d, "what")?,
                        })
                    })
                    .collect::<Option<Vec<_>>>()?,
            })
        })
        .collect::<Option<Vec<_>>>()?;
    let counters = match v.get("counters") {
        None | Some(Value::Null) => None,
        Some(c) => Some(CounterFacts {
            variants: named_lines_from_value(get_seq(c, "variants"))?,
            count_const: c.get("count_const").and_then(|x| x.as_u64()),
            all_entries: strings_from_value(get_seq(c, "all_entries"))?,
            scheduling: strings_from_value(get_seq(c, "scheduling"))?,
            enum_line: get_u32(c, "enum_line")?,
        }),
    };
    Some(Facts {
        lock_edges,
        request_variants: named_lines_from_value(get_seq(v, "request_variants"))?,
        dispatched: strings_from_value(get_seq(v, "dispatched"))?,
        fns,
        counters,
        renders_pairs: get_bool(v, "renders_pairs"),
        renders_deterministic_pairs: get_bool(v, "renders_deterministic_pairs"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> FileSummary {
        FileSummary {
            path: "crates/server/src/x.rs".into(),
            hash: 0xdead_beef_0badu64.wrapping_mul(0x1_0000_0001),
            lex_error: None,
            findings: vec![RawFinding {
                rule: "R1".into(),
                line: 3,
                message: "bare unwrap".into(),
            }],
            suppressions: vec![Suppression {
                rule: "R3".into(),
                reason: "exact zero".into(),
                line: 7,
                effective_line: 8,
                error: None,
            }],
            facts: Facts {
                lock_edges: vec![LockEdge {
                    from: "queue".into(),
                    to: "sessions".into(),
                    line: 12,
                }],
                request_variants: vec![("OpenSession".into(), 4)],
                dispatched: vec!["OpenSession".into()],
                fns: vec![FnFact {
                    name: "run".into(),
                    qualified: Some("Engine::run".into()),
                    line: 20,
                    calls: vec![CallFact {
                        name: "iter".into(),
                        qualifier: None,
                        receiver_type: Some("HashMap".into()),
                        method: true,
                    }],
                    det_sites: vec![DetSite {
                        line: 22,
                        what: "std HashMap iteration".into(),
                    }],
                }],
                counters: Some(CounterFacts {
                    variants: vec![("A".into(), 1), ("B".into(), 2)],
                    count_const: Some(2),
                    all_entries: vec!["A".into(), "B".into()],
                    scheduling: vec!["B".into()],
                    enum_line: 1,
                }),
                renders_pairs: true,
                renders_deterministic_pairs: false,
            },
        }
    }

    #[test]
    fn summary_round_trips_through_json_text() {
        let s = sample();
        let text = serde_json::to_string(&s.to_value()).unwrap();
        let back: serde_json::Value = serde_json::from_str(&text).unwrap();
        let s2 = FileSummary::from_value(&back).unwrap();
        assert_eq!(s, s2);
    }

    #[test]
    fn empty_facts_round_trip() {
        let s = FileSummary {
            path: "p".into(),
            hash: 1,
            lex_error: Some("boom".into()),
            findings: vec![],
            suppressions: vec![],
            facts: Facts::default(),
        };
        let text = serde_json::to_string(&s.to_value()).unwrap();
        let back: serde_json::Value = serde_json::from_str(&text).unwrap();
        assert_eq!(FileSummary::from_value(&back).unwrap(), s);
    }

    #[test]
    fn malformed_entry_is_a_miss_not_a_panic() {
        let v: serde_json::Value = serde_json::from_str("{\"path\": \"x\"}").unwrap();
        assert!(FileSummary::from_value(&v).is_none());
    }
}
