//! Name-based call-graph reachability for the determinism-zone rule (R6).
//!
//! R6 needs "is this function reachable from the deterministic search
//! paths?" without type checking. The graph is built from the scan-phase
//! [`FnFact`]s: nodes are function definitions, and a call links to a
//! definition when
//!
//! * the call is path-qualified and the qualifier+name matches the
//!   definition's `Type::name` (`DeltaEvaluator::evaluate_move`), or the
//!   qualifier is a module-ish lowercase path segment and the bare name
//!   matches a free fn (`counters::incr` → `incr`);
//! * the call is a method call whose receiver's type head is known and
//!   matches the definition's impl type;
//! * the call is bare (or a method on an unresolved receiver) and the
//!   name matches — **unless** the name is in the ubiquity stoplist.
//!   Names like `new`, `get`, or `len` appear on dozens of unrelated
//!   types; linking them by name alone would connect the whole workspace
//!   into one blob and R6 would flag everything.
//!
//! The over-approximation is deliberately asymmetric: qualified and
//! receiver-typed matches may *add* edges that a type checker would
//! reject (two types sharing a method name), never remove real ones —
//! except through the stoplist, which is why stoplisted names are only
//! skipped for *unqualified* matching. A genuinely hot helper named
//! `get` can still be zoned by putting its file in the seed set.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::summary::FileSummary;

/// Files whose functions seed the deterministic zone: the sequential and
/// parallel TS-GREEDY drivers, the multilevel coarsening pipeline (its
/// matching/projection determinism argument is load-bearing for the
/// byte-identity contract, DESIGN.md §11), the continuous-relayout layer,
/// the deterministic counter registry, the decision-audit crate
/// (replay must re-derive recorded layouts bit-identically, so nothing in
/// it may read a clock or other ambient state — timestamps are
/// caller-supplied), and the load-harness schedule (same seed must yield
/// the same op mix on every host so `BENCH_server.json` mix counters gate
/// exactly — the driver's pacing may read clocks, the schedule may not).
pub fn is_seed_file(path: &str) -> bool {
    path == "crates/core/src/tsgreedy.rs"
        || path == "crates/core/src/par.rs"
        || path.starts_with("crates/relayout/src/")
        || path.starts_with("crates/audit/src/")
        || path == "crates/obs/src/counters.rs"
        || path == "crates/partition/src/coarsen.rs"
        || path == "crates/partition/src/multilevel.rs"
        || path == "crates/loadgen/src/schedule.rs"
}

/// Method/function names too ubiquitous to link by bare name.
const STOPLIST: &[&str] = &[
    "new",
    "default",
    "clone",
    "len",
    "is_empty",
    "get",
    "get_mut",
    "insert",
    "remove",
    "push",
    "pop",
    "iter",
    "iter_mut",
    "into_iter",
    "next",
    "clear",
    "contains",
    "contains_key",
    "extend",
    "fmt",
    "from",
    "into",
    "as_str",
    "as_ref",
    "as_mut",
    "to_string",
    "name",
    "id",
    "min",
    "max",
    "abs",
    "map",
    "unwrap_or",
    "unwrap_or_else",
    "unwrap_or_default",
    "write",
    "read",
    "flush",
    "send",
    "recv",
    "join",
    "lock",
    "take",
    "set",
    "add",
    "sub",
    "eq",
    "ne",
    "cmp",
    "hash",
    "drop",
    "close",
    "run",
    "start",
    "stop",
    "init",
    "build",
    "reset",
    "update",
    "apply",
    "with",
    "values",
    "keys",
    "sort",
    "swap",
    "index",
    "count",
    "sum",
    "total",
    "snapshot",
    "delta",
];

/// One function node: `(file index, fn index within that file's facts)`.
pub type FnId = (usize, usize);

/// Reachability result: every function reachable from a seed, mapped to a
/// human-readable provenance chain (`ts_greedy -> score_move -> helper`).
pub fn deterministic_reachability(files: &[FileSummary]) -> BTreeMap<FnId, String> {
    // Definition indices.
    let mut by_name: BTreeMap<&str, Vec<FnId>> = BTreeMap::new();
    let mut by_qualified: BTreeMap<&str, Vec<FnId>> = BTreeMap::new();
    for (fi, file) in files.iter().enumerate() {
        for (gi, f) in file.facts.fns.iter().enumerate() {
            by_name.entry(f.name.as_str()).or_default().push((fi, gi));
            if let Some(q) = &f.qualified {
                by_qualified.entry(q.as_str()).or_default().push((fi, gi));
            }
        }
    }
    let mut reach: BTreeMap<FnId, String> = BTreeMap::new();
    let mut queue: VecDeque<FnId> = VecDeque::new();
    for (fi, file) in files.iter().enumerate() {
        if !is_seed_file(&file.path) {
            continue;
        }
        for (gi, f) in file.facts.fns.iter().enumerate() {
            reach.insert((fi, gi), f.name.clone());
            queue.push_back((fi, gi));
        }
    }
    while let Some(id) = queue.pop_front() {
        let caller = &files[id.0].facts.fns[id.1];
        let chain = reach.get(&id).cloned().unwrap_or_default();
        let mut targets: BTreeSet<FnId> = BTreeSet::new();
        for call in &caller.calls {
            if let Some(q) = &call.qualifier {
                // `Type::name` exact match.
                let key = format!("{q}::{}", call.name);
                if let Some(defs) = by_qualified.get(key.as_str()) {
                    targets.extend(defs.iter().copied());
                    continue;
                }
                // `module::free_fn` — lowercase qualifier, link unqualified
                // definitions by name (a free fn has no `qualified`).
                if q.chars().next().is_some_and(|c| c.is_ascii_lowercase()) {
                    if let Some(defs) = by_name.get(call.name.as_str()) {
                        targets.extend(
                            defs.iter()
                                .filter(|&&(fi, gi)| files[fi].facts.fns[gi].qualified.is_none()),
                        );
                    }
                }
                continue;
            }
            if call.method {
                if let Some(recv_ty) = &call.receiver_type {
                    let key = format!("{recv_ty}::{}", call.name);
                    if let Some(defs) = by_qualified.get(key.as_str()) {
                        targets.extend(defs.iter().copied());
                        continue;
                    }
                }
            }
            // Bare-name fallback, stoplist-guarded.
            if STOPLIST.contains(&call.name.as_str()) {
                continue;
            }
            if let Some(defs) = by_name.get(call.name.as_str()) {
                targets.extend(defs.iter().copied());
            }
        }
        for t in targets {
            if let std::collections::btree_map::Entry::Vacant(slot) = reach.entry(t) {
                let callee = &files[t.0].facts.fns[t.1];
                slot.insert(format!("{chain} -> {}", callee.name));
                queue.push_back(t);
            }
        }
    }
    reach
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::summary::{CallFact, Facts, FileSummary, FnFact};

    fn file(path: &str, fns: Vec<FnFact>) -> FileSummary {
        FileSummary {
            path: path.into(),
            hash: 0,
            lex_error: None,
            findings: vec![],
            suppressions: vec![],
            facts: Facts {
                fns,
                ..Facts::default()
            },
        }
    }

    fn f(name: &str, qualified: Option<&str>, calls: Vec<CallFact>) -> FnFact {
        FnFact {
            name: name.into(),
            qualified: qualified.map(str::to_string),
            line: 1,
            calls,
            det_sites: vec![],
        }
    }

    fn bare(name: &str) -> CallFact {
        CallFact {
            name: name.into(),
            qualifier: None,
            receiver_type: None,
            method: false,
        }
    }

    fn qualified(q: &str, name: &str) -> CallFact {
        CallFact {
            name: name.into(),
            qualifier: Some(q.into()),
            receiver_type: None,
            method: false,
        }
    }

    fn method_on(ty: &str, name: &str) -> CallFact {
        CallFact {
            name: name.into(),
            qualifier: None,
            receiver_type: Some(ty.into()),
            method: true,
        }
    }

    #[test]
    fn seeds_reach_through_bare_and_qualified_calls() {
        let files = vec![
            file(
                "crates/core/src/tsgreedy.rs",
                vec![f("ts_greedy", None, vec![bare("score_candidates")])],
            ),
            file(
                "crates/core/src/costmodel.rs",
                vec![
                    f(
                        "score_candidates",
                        None,
                        vec![qualified("DeltaEvaluator", "evaluate_move")],
                    ),
                    f(
                        "evaluate_move",
                        Some("DeltaEvaluator::evaluate_move"),
                        vec![],
                    ),
                    f("unrelated", None, vec![]),
                ],
            ),
        ];
        let reach = deterministic_reachability(&files);
        let names: Vec<&str> = reach
            .keys()
            .map(|&(fi, gi)| files[fi].facts.fns[gi].name.as_str())
            .collect();
        assert!(names.contains(&"ts_greedy"));
        assert!(names.contains(&"score_candidates"));
        assert!(names.contains(&"evaluate_move"));
        assert!(!names.contains(&"unrelated"));
        // Provenance chain names the path from the seed.
        let (chain_id, _) = reach
            .iter()
            .find(|(&(fi, gi), _)| files[fi].facts.fns[gi].name == "evaluate_move")
            .unwrap();
        assert!(reach[chain_id].starts_with("ts_greedy -> score_candidates"));
    }

    #[test]
    fn stoplisted_bare_names_do_not_link() {
        let files = vec![
            file(
                "crates/core/src/tsgreedy.rs",
                vec![f("ts_greedy", None, vec![bare("get"), bare("new")])],
            ),
            file(
                "crates/server/src/session.rs",
                vec![
                    f("get", Some("Registry::get"), vec![]),
                    f("new", None, vec![]),
                ],
            ),
        ];
        let reach = deterministic_reachability(&files);
        assert_eq!(reach.len(), 1, "only the seed itself is zoned");
    }

    #[test]
    fn typed_receiver_links_past_the_stoplist() {
        // `self.reg.get(..)` with reg: Registry links Registry::get even
        // though bare `get` is stoplisted.
        let files = vec![
            file(
                "crates/core/src/tsgreedy.rs",
                vec![f("ts_greedy", None, vec![method_on("Registry", "get")])],
            ),
            file(
                "crates/server/src/session.rs",
                vec![f("get", Some("Registry::get"), vec![])],
            ),
        ];
        let reach = deterministic_reachability(&files);
        assert_eq!(reach.len(), 2);
    }

    #[test]
    fn module_qualified_free_fn_links() {
        let files = vec![
            file(
                "crates/relayout/src/budget.rs",
                vec![f(
                    "recommend_budgeted",
                    None,
                    vec![qualified("helpers", "prune")],
                )],
            ),
            file(
                "crates/planner/src/helpers.rs",
                vec![
                    f("prune", None, vec![]),
                    f("prune", Some("Other::prune"), vec![]),
                ],
            ),
        ];
        let reach = deterministic_reachability(&files);
        // Free fn linked; the impl method with the same name is not.
        assert_eq!(reach.len(), 2);
        assert!(reach
            .keys()
            .any(|&(fi, gi)| files[fi].facts.fns[gi].qualified.is_none()
                && files[fi].facts.fns[gi].name == "prune"));
    }
}
