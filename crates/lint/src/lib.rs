//! dblayout-lint: a syntax-aware workspace static-analysis pass for
//! panic-safety, lock discipline, float hygiene, and — since
//! `dblayout-sema` — determinism and registry coherence.
//!
//! PR 2 turned three hand-found defect families into token-stream rules;
//! `dblayout-sema` grows the analyzer a lightweight parser (items, fn
//! signatures, bodies, call/method-chain expressions — no full Rust
//! grammar) and five semantic rules guarding the workspace's headline
//! property: TS-GREEDY layouts, costs, counters, and migration plans are
//! byte-identical at any thread count.
//!
//! | id  | rule |
//! |-----|------|
//! | R1  | no unwrap/expect/panic-macros (and no index expressions in the server) in hot-path code |
//! | R2  | every `Mutex::lock()` in `crates/server` recovers poisoning (`lock_unpoisoned`) |
//! | R3  | no `partial_cmp`, no `==`/`!=` against float literals |
//! | R4  | lock-acquisition order across `crates/server` is cycle-free |
//! | R5  | every `Request` variant is dispatched in `engine.rs` and documented in `DESIGN.md` |
//! | R6  | no hash-order iteration / wall-clock values / thread identity reachable from the deterministic paths |
//! | R7  | raw atomics only in sanctioned zones, `Ordering`s per the declared policy table |
//! | R8  | float→int / f64→f32 casts in the numeric kernels carry a range argument |
//! | R9  | no `let _ =` / statement-`.ok()` error discards on server/planner/relayout paths |
//! | R10 | the `obs::counters` registry, Prometheus op, `explain`, and DESIGN.md §8 agree |
//!
//! ## Two-phase engine and the cache
//!
//! Every rule runs a per-file **scan** (local findings + cross-file
//! facts; a pure function of the file text) and a whole-workspace
//! **finish** (graph joins over the facts). Scan results are cached in
//! `results/lint_cache.json` keyed by content hash, so a warm run
//! re-lexes/re-parses only changed files — the finish phase, suppression
//! matching, and unused-suppression detection always re-run (they are
//! cheap and depend on the whole workspace). `--diff <base>` keeps the
//! same full-fidelity analysis but splits the report into in-scope
//! diagnostics (changed files + cross-file rules whose declared
//! dependencies changed) and `out_of_scope` ones, so CI on a PR can gate
//! on what the PR touched while still recording everything.
//!
//! Findings are warnings (fatal under `--deny-warnings`); infrastructure
//! problems — an unlexable file, a malformed suppression — are errors and
//! always fatal. A finding is silenced inline with
//! `// dblayout::allow(R3, reason = "...")`; the reason is mandatory,
//! suppressions are carried into the JSON report, and a suppression that
//! no longer silences anything is itself flagged (`unused-suppression`)
//! so the audit trail cannot rot.
//!
//! Entry points: [`lint_workspace`] walks `crates/*/src` + `DESIGN.md`
//! from a workspace root; [`analyze`] / [`analyze_with`] run on in-memory
//! sources (the fixture tests use these). The CLI front-end is
//! `dblayout lint [--deny-warnings] [--json] [--sarif <path>] [--diff <base>] [--no-cache]`.

pub mod cache;
pub mod lexer;
pub mod parse;
pub mod report;
pub mod rules;
pub mod sarif;
pub mod sema;
pub mod summary;
pub mod suppress;
pub mod workspace;

use std::collections::{BTreeMap, BTreeSet};
use std::io;
use std::path::Path;
use std::time::Instant;

pub use cache::LintCache;
pub use report::{Diagnostic, FileTiming, LintReport, RuleTiming, Severity};
pub use workspace::InputFile;

use report::Severity::{Error, Warning};
use rules::{all_rules, FinishCtx, Rule, ScanCtx, RULE_IDS};
use summary::{Facts, FileSummary, RawFinding};
use workspace::build_file_ctx;

/// Knobs for [`analyze_with`].
#[derive(Default)]
pub struct AnalyzeOptions<'a> {
    /// Prior-run cache; files whose content hash matches skip the scan.
    pub cache: Option<&'a LintCache>,
    /// Diff scope: workspace-relative paths changed vs the base. When
    /// set, diagnostics outside the scope move to `out_of_scope`.
    pub changed: Option<&'a [String]>,
    /// Label for the diff base (report metadata only).
    pub diff_base: Option<String>,
}

/// Runs every rule over in-memory sources (cold, uncached).
///
/// `design_md` is `DESIGN.md`'s text when available; without it the
/// documentation checks (R5, R10) are skipped. Files that fail to lex and
/// malformed suppression directives surface as error diagnostics rather
/// than aborting the run.
pub fn analyze(files: &[InputFile], design_md: Option<&str>) -> LintReport {
    analyze_with(files, design_md, &AnalyzeOptions::default()).0
}

/// [`analyze`] with cache reuse and diff scoping. Returns the report and
/// the refreshed cache (every file's current summary) for persisting.
pub fn analyze_with(
    files: &[InputFile],
    design_md: Option<&str>,
    opts: &AnalyzeOptions<'_>,
) -> (LintReport, LintCache) {
    let wall_start = Instant::now();
    let rules = all_rules();
    let mut report = LintReport::default();
    let mut next_cache = LintCache::default();
    let mut scan_micros: BTreeMap<&'static str, u64> = BTreeMap::new();
    let mut finish_micros: BTreeMap<&'static str, u64> = BTreeMap::new();

    // Scan phase (cache-accelerated).
    let mut summaries: Vec<FileSummary> = Vec::with_capacity(files.len());
    for f in files {
        let hash = cache::content_hash(&f.text);
        if let Some(hit) = opts.cache.and_then(|c| c.lookup(&f.path, hash)) {
            report.file_timings.push(FileTiming {
                path: f.path.clone(),
                micros: 0,
                cached: true,
            });
            next_cache.store(hit.clone());
            summaries.push(hit.clone());
            continue;
        }
        let t0 = Instant::now();
        let summary = scan_file(f, hash, &rules, &mut scan_micros);
        report.file_timings.push(FileTiming {
            path: f.path.clone(),
            micros: t0.elapsed().as_micros() as u64,
            cached: false,
        });
        next_cache.store(summary.clone());
        summaries.push(summary);
    }
    report.files_scanned = summaries.iter().filter(|s| s.lex_error.is_none()).count();

    // Infrastructure errors: unlexable files, malformed suppressions.
    for s in &summaries {
        if let Some(err) = &s.lex_error {
            report.diagnostics.push(Diagnostic {
                rule: "lint",
                severity: Error,
                file: s.path.clone(),
                line: 1,
                message: format!("cannot analyze file: {err}"),
            });
        }
        for sup in &s.suppressions {
            if let Some(err) = &sup.error {
                report.diagnostics.push(Diagnostic {
                    rule: "lint",
                    severity: Error,
                    file: s.path.clone(),
                    line: sup.line,
                    message: format!("malformed suppression: {err}"),
                });
            }
        }
    }

    // Collect rule findings: scan-phase (from summaries, possibly cached)
    // then finish-phase.
    let mut findings: Vec<(&'static str, rules::Finding)> = Vec::new();
    for s in &summaries {
        for rf in &s.findings {
            // A rule id the current binary doesn't know (stale cache
            // schema) is dropped — the versioned cache should prevent
            // this, but a stale finding must never resurface silently.
            if let Some(id) = intern_rule(&rf.rule) {
                findings.push((
                    id,
                    rules::Finding {
                        file: s.path.clone(),
                        line: rf.line,
                        message: rf.message.clone(),
                    },
                ));
            }
        }
    }
    let finish_ctx = FinishCtx {
        files: &summaries,
        design_md,
    };
    for rule in &rules {
        let t0 = Instant::now();
        for f in rule.finish(&finish_ctx) {
            findings.push((rule.id(), f));
        }
        *finish_micros.entry(rule.id()).or_insert(0) += t0.elapsed().as_micros() as u64;
    }

    // Suppression matching, tracking which directives earn their keep.
    let mut used: BTreeSet<(usize, usize)> = BTreeSet::new();
    for (rule_id, finding) in &findings {
        let hit = summaries.iter().enumerate().find_map(|(si, s)| {
            if s.path != finding.file {
                return None;
            }
            s.suppressions
                .iter()
                .position(|sup| sup.covers(rule_id, finding.line))
                .map(|pi| (si, pi))
        });
        let diag = |message| Diagnostic {
            rule: rule_id,
            severity: Warning,
            file: finding.file.clone(),
            line: finding.line,
            message,
        };
        match hit {
            Some((si, pi)) => {
                used.insert((si, pi));
                let reason = &summaries[si].suppressions[pi].reason;
                report
                    .suppressed
                    .push(diag(format!("{} [allowed: {}]", finding.message, reason)));
            }
            None => report.diagnostics.push(diag(finding.message.clone())),
        }
    }

    // Unused-suppression detection: a well-formed directive that silenced
    // nothing is stale audit trail. Not itself suppressible — the fix is
    // deleting a line.
    for (si, s) in summaries.iter().enumerate() {
        for (pi, sup) in s.suppressions.iter().enumerate() {
            if sup.error.is_none() && !used.contains(&(si, pi)) {
                report.diagnostics.push(Diagnostic {
                    rule: "unused-suppression",
                    severity: Warning,
                    file: s.path.clone(),
                    line: sup.line,
                    message: format!(
                        "suppression for {} no longer silences any finding; remove it (reason \
                         was: {})",
                        sup.rule, sup.reason
                    ),
                });
            }
        }
    }

    // Diff scoping: real findings in untouched files (whose rules also
    // have no changed cross-file dependency) move aside. Errors always
    // stay in scope — infrastructure rot fails the run regardless.
    if let Some(changed) = opts.changed {
        let mut in_scope = Vec::new();
        for d in std::mem::take(&mut report.diagnostics) {
            let dep_changed = rules
                .iter()
                .find(|r| r.id() == d.rule)
                .map(|r| {
                    let deps = r.global_deps();
                    !deps.is_empty()
                        && changed
                            .iter()
                            .any(|c| deps.iter().any(|dep| c.starts_with(dep)))
                })
                .unwrap_or(false);
            if d.severity == Error || changed.contains(&d.file) || dep_changed {
                in_scope.push(d);
            } else {
                report.out_of_scope.push(d);
            }
        }
        report.diagnostics = in_scope;
    }
    report.diff_base = opts.diff_base.clone();

    let key = |d: &Diagnostic| (d.file.clone(), d.line, d.rule);
    report.diagnostics.sort_by_key(key);
    report.suppressed.sort_by_key(key);
    report.out_of_scope.sort_by_key(key);
    report.rule_timings = rules
        .iter()
        .map(|r| RuleTiming {
            rule: r.id(),
            scan_micros: scan_micros.get(r.id()).copied().unwrap_or(0),
            finish_micros: finish_micros.get(r.id()).copied().unwrap_or(0),
        })
        .collect();
    report.wall_micros = wall_start.elapsed().as_micros() as u64;
    (report, next_cache)
}

/// Lexes, parses, and runs every rule's scan phase over one file.
fn scan_file(
    f: &InputFile,
    hash: u64,
    rules: &[Box<dyn Rule>],
    scan_micros: &mut BTreeMap<&'static str, u64>,
) -> FileSummary {
    let ctx = match build_file_ctx(f) {
        Ok(ctx) => ctx,
        Err(msg) => {
            return FileSummary {
                path: f.path.clone(),
                hash,
                lex_error: Some(msg),
                findings: Vec::new(),
                suppressions: Vec::new(),
                facts: Facts::default(),
            }
        }
    };
    let parsed = parse::parse(&ctx.toks);
    let scan_ctx = ScanCtx {
        file: &ctx,
        parsed: &parsed,
    };
    let mut facts = Facts::default();
    let mut findings: Vec<RawFinding> = Vec::new();
    for rule in rules {
        let t0 = Instant::now();
        let mut local = Vec::new();
        rule.scan(&scan_ctx, &mut facts, &mut local);
        *scan_micros.entry(rule.id()).or_insert(0) += t0.elapsed().as_micros() as u64;
        findings.extend(local.into_iter().map(|l| RawFinding {
            rule: rule.id().to_string(),
            line: l.line,
            message: l.message,
        }));
    }
    FileSummary {
        path: f.path.clone(),
        hash,
        lex_error: None,
        findings,
        suppressions: ctx.suppressions.clone(),
        facts,
    }
}

fn intern_rule(s: &str) -> Option<&'static str> {
    RULE_IDS.iter().find(|r| **r == s).copied()
}

/// Lints a workspace on disk: every `.rs` under `<root>/crates/*/src`
/// plus `<root>/DESIGN.md` (cold, uncached).
pub fn lint_workspace(root: &Path) -> io::Result<LintReport> {
    let (files, design_md) = workspace::load_workspace(root)?;
    Ok(analyze(&files, design_md.as_deref()))
}

/// [`lint_workspace`] with cache reuse and diff scoping.
pub fn lint_workspace_with(
    root: &Path,
    opts: &AnalyzeOptions<'_>,
) -> io::Result<(LintReport, LintCache)> {
    let (files, design_md) = workspace::load_workspace(root)?;
    Ok(analyze_with(&files, design_md.as_deref(), opts))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(path: &str, text: &str) -> InputFile {
        InputFile {
            path: path.into(),
            text: text.into(),
        }
    }

    #[test]
    fn clean_source_yields_clean_report() {
        let files = [file(
            "crates/server/src/ok.rs",
            "fn f(x: Option<u32>) -> u32 {\n    x.unwrap_or(0)\n}\n",
        )];
        let r = analyze(&files, None);
        assert!(r.is_clean(true), "{}", r.render());
        assert_eq!(r.files_scanned, 1);
    }

    #[test]
    fn finding_is_a_warning_and_suppression_moves_it_aside() {
        let bare = [file(
            "crates/server/src/bad.rs",
            "fn f(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\n",
        )];
        let r = analyze(&bare, None);
        assert_eq!(r.warnings(), 1);
        assert!(r.is_clean(false), "warnings pass without deny");
        assert!(!r.is_clean(true));

        let allowed = [file(
            "crates/server/src/bad.rs",
            "fn f(x: Option<u32>) -> u32 {\n    x.unwrap() // dblayout::allow(R1, reason = \"input validated by caller\")\n}\n",
        )];
        let r = analyze(&allowed, None);
        assert!(r.is_clean(true), "{}", r.render());
        assert_eq!(r.suppressed.len(), 1);
        assert!(r.suppressed[0]
            .message
            .contains("input validated by caller"));
    }

    #[test]
    fn malformed_suppression_is_an_error() {
        let files = [file(
            "crates/server/src/bad.rs",
            "fn f(x: Option<u32>) -> u32 {\n    x.unwrap() // dblayout::allow(R1)\n}\n",
        )];
        let r = analyze(&files, None);
        assert_eq!(r.errors(), 1);
        assert!(!r.is_clean(false), "errors fail even without deny");
    }

    #[test]
    fn unlexable_file_is_an_error_not_a_crash() {
        let files = [file("crates/x/src/broken.rs", "fn f() { \"unterminated }")];
        let r = analyze(&files, None);
        assert_eq!(r.errors(), 1);
        assert_eq!(r.files_scanned, 0);
    }

    #[test]
    fn suppression_for_a_different_rule_does_not_silence() {
        let files = [file(
            "crates/server/src/bad.rs",
            "fn f(x: Option<u32>) -> u32 {\n    x.unwrap() // dblayout::allow(R3, reason = \"wrong rule\")\n}\n",
        )];
        let r = analyze(&files, None);
        // The R1 finding stays active, and the mismatched R3 directive is
        // itself flagged as unused.
        assert_eq!(r.warnings(), 2);
        assert!(r.suppressed.is_empty());
        assert!(r.diagnostics.iter().any(|d| d.rule == "unused-suppression"));
    }

    #[test]
    fn unused_suppression_is_flagged_and_used_one_is_not() {
        let files = [file(
            "crates/server/src/bad.rs",
            "fn f(x: Option<u32>) -> u32 {\n    x.unwrap() // dblayout::allow(R1, reason = \"validated\")\n}\n\
             // dblayout::allow(R1, reason = \"stale: the unwrap below was removed\")\nfn g() -> u32 { 0 }\n",
        )];
        let r = analyze(&files, None);
        assert_eq!(r.suppressed.len(), 1, "{}", r.render());
        let unused: Vec<_> = r
            .diagnostics
            .iter()
            .filter(|d| d.rule == "unused-suppression")
            .collect();
        assert_eq!(unused.len(), 1);
        assert_eq!(unused[0].line, 4);
        assert!(unused[0].message.contains("stale"));
    }

    #[test]
    fn warm_run_reuses_cache_and_reports_identical_findings() {
        let files = [
            file(
                "crates/server/src/bad.rs",
                "fn f(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\n",
            ),
            file(
                "crates/core/src/ok.rs",
                "pub fn add(a: u64, b: u64) -> u64 { a + b }\n",
            ),
        ];
        let (cold, cache) = analyze_with(&files, None, &AnalyzeOptions::default());
        assert!(cold.file_timings.iter().all(|t| !t.cached));
        let opts = AnalyzeOptions {
            cache: Some(&cache),
            ..AnalyzeOptions::default()
        };
        let (warm, _) = analyze_with(&files, None, &opts);
        assert!(warm.file_timings.iter().all(|t| t.cached), "all files warm");
        let key = |d: &Diagnostic| (d.rule, d.file.clone(), d.line, d.message.clone());
        assert_eq!(
            cold.diagnostics.iter().map(key).collect::<Vec<_>>(),
            warm.diagnostics.iter().map(key).collect::<Vec<_>>()
        );
    }

    #[test]
    fn diff_scope_moves_untouched_findings_aside() {
        let files = [
            file(
                "crates/server/src/bad.rs",
                "fn f(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\n",
            ),
            file(
                "crates/relayout/src/also_bad.rs",
                "fn g(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\n",
            ),
        ];
        let changed = vec!["crates/server/src/bad.rs".to_string()];
        let opts = AnalyzeOptions {
            changed: Some(&changed),
            diff_base: Some("origin/main".into()),
            ..AnalyzeOptions::default()
        };
        let (r, _) = analyze_with(&files, None, &opts);
        assert_eq!(r.warnings(), 1);
        assert_eq!(r.out_of_scope.len(), 1);
        assert_eq!(r.out_of_scope[0].file, "crates/relayout/src/also_bad.rs");
        // Union equals the cold run's findings.
        let cold = analyze(&files, None);
        assert_eq!(cold.warnings(), r.warnings() + r.out_of_scope.len());
        assert_eq!(r.diff_base.as_deref(), Some("origin/main"));
    }
}
