//! dblayout-lint: a workspace static-analysis pass for panic-safety, lock
//! discipline, and float hygiene.
//!
//! PR 1's review rounds kept finding the same three defect families by
//! hand: panic shortcuts on the request-serving path, bare
//! `Mutex::lock().unwrap()` that re-raises poisoning the server was
//! explicitly designed to absorb, and NaN-unsafe float comparisons in the
//! Figure-7 cost model. This crate turns those review rules into a
//! mechanical gate: it tokenizes the workspace's own Rust sources with a
//! small hand-written lexer (in the spirit of `dblayout-sql`'s SQL lexer)
//! and runs five rules over the per-file token streams plus a cross-file
//! lock-acquisition graph:
//!
//! | id | rule |
//! |----|------|
//! | R1 | no unwrap/expect/panic-macros (and no index expressions in the server) in hot-path code |
//! | R2 | every `Mutex::lock()` in `crates/server` recovers poisoning (`lock_unpoisoned`) |
//! | R3 | no `partial_cmp`, no `==`/`!=` against float literals |
//! | R4 | lock-acquisition order across `crates/server` is cycle-free |
//! | R5 | every `Request` variant is dispatched in `engine.rs` and documented in `DESIGN.md` |
//!
//! Findings are warnings (fatal under `--deny-warnings`); infrastructure
//! problems — an unlexable file, a malformed suppression — are errors and
//! always fatal. A finding is silenced inline with
//! `// dblayout::allow(R3, reason = "...")`; the reason is mandatory and
//! suppressions are carried into the JSON report so they stay auditable.
//!
//! Entry points: [`lint_workspace`] walks `crates/*/src` + `DESIGN.md`
//! from a workspace root; [`analyze`] runs on in-memory sources (the
//! fixture tests use this). The CLI front-end is
//! `dblayout lint [--deny-warnings] [--json]`.

pub mod lexer;
pub mod report;
pub mod rules;
pub mod suppress;
pub mod workspace;

use std::io;
use std::path::Path;

pub use report::{Diagnostic, LintReport, Severity};
pub use workspace::InputFile;

use report::Severity::{Error, Warning};
use rules::{all_rules, Ctx};
use workspace::{build_file_ctx, FileCtx};

/// Runs every rule over in-memory sources.
///
/// `design_md` is `DESIGN.md`'s text when available; without it R5's
/// documentation check is skipped. Files that fail to lex and malformed
/// suppression directives surface as error diagnostics rather than
/// aborting the run.
pub fn analyze(files: &[InputFile], design_md: Option<&str>) -> LintReport {
    let mut report = LintReport::default();
    let mut ctxs: Vec<FileCtx> = Vec::with_capacity(files.len());
    for f in files {
        match build_file_ctx(f) {
            Ok(ctx) => ctxs.push(ctx),
            Err(msg) => report.diagnostics.push(Diagnostic {
                rule: "lint",
                severity: Error,
                file: f.path.clone(),
                line: 1,
                message: format!("cannot analyze file: {msg}"),
            }),
        }
    }
    report.files_scanned = ctxs.len();
    for ctx in &ctxs {
        for s in &ctx.suppressions {
            if let Some(err) = &s.error {
                report.diagnostics.push(Diagnostic {
                    rule: "lint",
                    severity: Error,
                    file: ctx.path.clone(),
                    line: s.line,
                    message: format!("malformed suppression: {err}"),
                });
            }
        }
    }
    let rule_ctx = Ctx {
        files: &ctxs,
        design_md,
    };
    for rule in all_rules() {
        for finding in rule.check(&rule_ctx) {
            let suppression = ctxs.iter().find(|c| c.path == finding.file).and_then(|c| {
                c.suppressions
                    .iter()
                    .find(|s| s.covers(rule.id(), finding.line))
            });
            let diag = |message| Diagnostic {
                rule: rule.id(),
                severity: Warning,
                file: finding.file.clone(),
                line: finding.line,
                message,
            };
            match suppression {
                Some(s) => report
                    .suppressed
                    .push(diag(format!("{} [allowed: {}]", finding.message, s.reason))),
                None => report.diagnostics.push(diag(finding.message.clone())),
            }
        }
    }
    let key = |d: &Diagnostic| (d.file.clone(), d.line, d.rule);
    report.diagnostics.sort_by_key(key);
    report.suppressed.sort_by_key(key);
    report
}

/// Lints a workspace on disk: every `.rs` under `<root>/crates/*/src`
/// plus `<root>/DESIGN.md`.
pub fn lint_workspace(root: &Path) -> io::Result<LintReport> {
    let (files, design_md) = workspace::load_workspace(root)?;
    Ok(analyze(&files, design_md.as_deref()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(path: &str, text: &str) -> InputFile {
        InputFile {
            path: path.into(),
            text: text.into(),
        }
    }

    #[test]
    fn clean_source_yields_clean_report() {
        let files = [file(
            "crates/server/src/ok.rs",
            "fn f(x: Option<u32>) -> u32 {\n    x.unwrap_or(0)\n}\n",
        )];
        let r = analyze(&files, None);
        assert!(r.is_clean(true), "{}", r.render());
        assert_eq!(r.files_scanned, 1);
    }

    #[test]
    fn finding_is_a_warning_and_suppression_moves_it_aside() {
        let bare = [file(
            "crates/server/src/bad.rs",
            "fn f(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\n",
        )];
        let r = analyze(&bare, None);
        assert_eq!(r.warnings(), 1);
        assert!(r.is_clean(false), "warnings pass without deny");
        assert!(!r.is_clean(true));

        let allowed = [file(
            "crates/server/src/bad.rs",
            "fn f(x: Option<u32>) -> u32 {\n    x.unwrap() // dblayout::allow(R1, reason = \"input validated by caller\")\n}\n",
        )];
        let r = analyze(&allowed, None);
        assert!(r.is_clean(true), "{}", r.render());
        assert_eq!(r.suppressed.len(), 1);
        assert!(r.suppressed[0]
            .message
            .contains("input validated by caller"));
    }

    #[test]
    fn malformed_suppression_is_an_error() {
        let files = [file(
            "crates/server/src/bad.rs",
            "fn f(x: Option<u32>) -> u32 {\n    x.unwrap() // dblayout::allow(R1)\n}\n",
        )];
        let r = analyze(&files, None);
        assert_eq!(r.errors(), 1);
        assert!(!r.is_clean(false), "errors fail even without deny");
    }

    #[test]
    fn unlexable_file_is_an_error_not_a_crash() {
        let files = [file("crates/x/src/broken.rs", "fn f() { \"unterminated }")];
        let r = analyze(&files, None);
        assert_eq!(r.errors(), 1);
        assert_eq!(r.files_scanned, 0);
    }

    #[test]
    fn suppression_for_a_different_rule_does_not_silence() {
        let files = [file(
            "crates/server/src/bad.rs",
            "fn f(x: Option<u32>) -> u32 {\n    x.unwrap() // dblayout::allow(R3, reason = \"wrong rule\")\n}\n",
        )];
        let r = analyze(&files, None);
        assert_eq!(r.warnings(), 1);
        assert!(r.suppressed.is_empty());
    }
}
