//! Workspace walking and per-file analysis context.
//!
//! The walker collects every first-party Rust source under `crates/*/src`
//! (vendored registry stand-ins under `vendor/` are deliberately out of
//! scope — they are frozen stubs, not code this workspace owns) plus
//! `DESIGN.md`, whose wire-protocol table rule R5 cross-checks.
//!
//! Each file is lexed once into a [`FileCtx`]: the token stream, the
//! comment side channel, the `#[cfg(test)]` / `#[test]` line regions
//! (rules that exempt tests consult these), and the parsed suppression
//! directives.

use std::io;
use std::path::{Path, PathBuf};

use crate::lexer::{lex, Comment, Tok, TokKind};
use crate::suppress::{parse_suppressions, Suppression};

/// One source file handed to the analyzer: a workspace-relative path (always
/// forward-slash separated — rules scope on it) and its text.
#[derive(Debug, Clone)]
pub struct InputFile {
    /// Workspace-relative path, e.g. `crates/server/src/engine.rs`.
    pub path: String,
    /// Full source text.
    pub text: String,
}

/// A lexed file plus everything rules need to scope their matching.
#[derive(Debug, Clone)]
pub struct FileCtx {
    /// Workspace-relative, forward-slash path.
    pub path: String,
    /// Code tokens (comments excluded).
    pub toks: Vec<Tok>,
    /// Comment side channel.
    pub comments: Vec<Comment>,
    /// Inclusive 1-based line ranges covered by `#[cfg(test)]` items or
    /// `#[test]` functions.
    pub test_regions: Vec<(u32, u32)>,
    /// Parsed `dblayout::allow(...)` directives.
    pub suppressions: Vec<Suppression>,
}

impl FileCtx {
    /// Whether `line` falls inside test-only code.
    pub fn in_tests(&self, line: u32) -> bool {
        self.test_regions
            .iter()
            .any(|&(lo, hi)| lo <= line && line <= hi)
    }
}

/// Loads the workspace sources the lint pass covers: every `.rs` under
/// `crates/*/src`, in sorted order, plus `DESIGN.md` when present.
pub fn load_workspace(root: &Path) -> io::Result<(Vec<InputFile>, Option<String>)> {
    let crates_dir = root.join("crates");
    if !crates_dir.is_dir() {
        return Err(io::Error::new(
            io::ErrorKind::NotFound,
            format!(
                "`{}` has no crates/ directory; run from the workspace root or pass --root",
                root.display()
            ),
        ));
    }
    let mut rs_paths: Vec<PathBuf> = Vec::new();
    let mut crate_dirs: Vec<PathBuf> = std::fs::read_dir(&crates_dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();
    for dir in crate_dirs {
        let src = dir.join("src");
        if src.is_dir() {
            collect_rs(&src, &mut rs_paths)?;
        }
    }
    rs_paths.sort();
    let mut files = Vec::with_capacity(rs_paths.len());
    for p in rs_paths {
        let text = std::fs::read_to_string(&p)?;
        files.push(InputFile {
            path: relative_path(root, &p),
            text,
        });
    }
    let design_md = std::fs::read_to_string(root.join("DESIGN.md")).ok();
    Ok((files, design_md))
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

fn relative_path(root: &Path, p: &Path) -> String {
    let rel = p.strip_prefix(root).unwrap_or(p);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Lexes and annotates one input file. Returns the context, or the lex
/// error message for the caller to report.
pub fn build_file_ctx(file: &InputFile) -> Result<FileCtx, String> {
    let out = lex(&file.text).map_err(|e| e.to_string())?;
    let test_regions = find_test_regions(&out.toks);
    let suppressions = parse_suppressions(&out.comments);
    Ok(FileCtx {
        path: file.path.clone(),
        toks: out.toks,
        comments: out.comments,
        test_regions,
        suppressions,
    })
}

fn is_punct(t: &Tok, s: &str) -> bool {
    matches!(&t.kind, TokKind::Punct(p) if p == s)
}

fn is_ident(t: &Tok, s: &str) -> bool {
    matches!(&t.kind, TokKind::Ident(i) if i == s)
}

/// Finds the line ranges of items annotated `#[cfg(test)]` or `#[test]`.
///
/// An attribute whose bracket contents mention the identifier `test` (and
/// not via `not(test)`) marks the following item — attributes are skipped,
/// then the item runs to its matching close brace (or to `;` for brace-less
/// items such as `#[cfg(test)] use ...;`).
fn find_test_regions(toks: &[Tok]) -> Vec<(u32, u32)> {
    let mut regions = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if !(is_punct(&toks[i], "#") && i + 1 < toks.len() && is_punct(&toks[i + 1], "[")) {
            i += 1;
            continue;
        }
        let attr_line = toks[i].line;
        let (contents_start, after_attr) = match attr_span(toks, i) {
            Some(span) => span,
            None => break, // malformed tail; nothing more to mark
        };
        let contents = &toks[contents_start..after_attr - 1];
        let mentions_test = contents.iter().any(|t| is_ident(t, "test"));
        let negated = contents.iter().any(|t| is_ident(t, "not"));
        if !mentions_test || negated {
            i = after_attr;
            continue;
        }
        // Skip any further attributes on the same item.
        let mut j = after_attr;
        while j + 1 < toks.len() && is_punct(&toks[j], "#") && is_punct(&toks[j + 1], "[") {
            match attr_span(toks, j) {
                Some((_, next)) => j = next,
                None => return regions,
            }
        }
        // Advance to the item body (`{`) or a brace-less item end (`;`).
        while j < toks.len() && !is_punct(&toks[j], "{") && !is_punct(&toks[j], ";") {
            j += 1;
        }
        if j >= toks.len() {
            regions.push((attr_line, toks.last().map_or(attr_line, |t| t.line)));
            break;
        }
        if is_punct(&toks[j], ";") {
            regions.push((attr_line, toks[j].line));
            i = j + 1;
            continue;
        }
        // Match the braces.
        let mut depth = 0usize;
        let mut end_line = toks[j].line;
        while j < toks.len() {
            if is_punct(&toks[j], "{") {
                depth += 1;
            } else if is_punct(&toks[j], "}") {
                depth -= 1;
                if depth == 0 {
                    end_line = toks[j].line;
                    break;
                }
            }
            j += 1;
        }
        if depth != 0 {
            end_line = toks.last().map_or(attr_line, |t| t.line);
        }
        regions.push((attr_line, end_line));
        i = j + 1;
    }
    regions
}

/// Given `toks[i] == #` and `toks[i+1] == [`, returns
/// `(contents_start, index_after_closing_bracket)`.
fn attr_span(toks: &[Tok], i: usize) -> Option<(usize, usize)> {
    let mut depth = 0usize;
    let mut k = i + 1;
    while k < toks.len() {
        if is_punct(&toks[k], "[") {
            depth += 1;
        } else if is_punct(&toks[k], "]") {
            depth -= 1;
            if depth == 0 {
                return Some((i + 2, k + 1));
            }
        }
        k += 1;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(src: &str) -> FileCtx {
        build_file_ctx(&InputFile {
            path: "crates/x/src/lib.rs".into(),
            text: src.into(),
        })
        .unwrap()
    }

    #[test]
    fn cfg_test_module_is_a_region() {
        let src = "\
fn prod() {}

#[cfg(test)]
mod tests {
    #[test]
    fn t() {
        prod();
    }
}
";
        let c = ctx(src);
        assert!(!c.in_tests(1));
        assert!(c.in_tests(3));
        assert!(c.in_tests(7));
        assert!(c.in_tests(9));
    }

    #[test]
    fn bare_test_fn_is_a_region() {
        let src = "\
fn prod() {}
#[test]
fn t() {
    prod();
}
fn also_prod() {}
";
        let c = ctx(src);
        assert!(!c.in_tests(1));
        assert!(c.in_tests(3));
        assert!(c.in_tests(4));
        assert!(!c.in_tests(6));
    }

    #[test]
    fn cfg_not_test_is_not_a_region() {
        let c = ctx("#[cfg(not(test))]\nfn prod() {\n    x();\n}\n");
        assert!(!c.in_tests(2));
        assert!(!c.in_tests(3));
    }

    #[test]
    fn attribute_stacking_is_skipped() {
        let src = "#[cfg(test)]\n#[allow(dead_code)]\nmod tests {\n    fn t() {}\n}\n";
        let c = ctx(src);
        assert!(c.in_tests(4));
    }

    #[test]
    fn braceless_cfg_test_item() {
        let c = ctx("#[cfg(test)]\nuse std::collections::HashMap;\nfn prod() {}\n");
        assert!(c.in_tests(2));
        assert!(!c.in_tests(3));
    }
}
