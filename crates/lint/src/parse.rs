//! Lightweight syntax recovery over the token stream.
//!
//! The token-stream rules of PR 2 (R1–R5) match local shapes — `.unwrap()`
//! after a dot, `lock()` receivers — and never need to know *which
//! function* a token lives in. The semantic rules added with `dblayout-sema`
//! (R6–R10) do: determinism-zone analysis is "no hash-order iteration in
//! any function *reachable from* the deterministic search paths", and
//! lossy-cast analysis wants the declared type of the cast's source
//! binding. This module recovers just enough structure for those
//! flow-insensitive questions — items, `impl` context, `fn` signatures,
//! body extents, local `let` bindings with syntactic type heads, struct
//! fields, and call/method-chain expressions. It is **not** a Rust
//! grammar: expressions are never tree-shaped here, and anything
//! ambiguous degrades to "unknown", which the rules treat conservatively.
//!
//! The parser never fails: malformed input (already lexable, or it would
//! not get here) produces a partial [`ParsedFile`], and rules built on
//! partial syntax simply see fewer facts.

use crate::lexer::{Tok, TokKind};

/// One recognized call site inside a function body.
#[derive(Debug, Clone, PartialEq)]
pub struct CallSyntax {
    /// Callee's final path segment (`recommend` in `advisor::recommend(..)`,
    /// `iter` in `xs.iter()`).
    pub name: String,
    /// The path segment immediately before the final `::`, when the call
    /// is path-qualified (`Advisor` in `Advisor::new(..)`, `counters` in
    /// `counters::incr(..)`). `None` for bare calls and method calls.
    pub qualifier: Option<String>,
    /// Whether the call is a method call (`.name(..)`).
    pub method: bool,
    /// For method calls, the identifier immediately before the dot when
    /// the receiver ends in one (`map` in `self.map.iter()`); used to look
    /// up binding/field types.
    pub receiver: Option<String>,
    /// 1-based source line.
    pub line: u32,
}

/// A name with a syntactic type head: `x: HashMap<..>` has head `HashMap`,
/// `let y = BTreeMap::new()` has head `BTreeMap`.
#[derive(Debug, Clone, PartialEq)]
pub struct TypedName {
    /// Binding, parameter, or field name.
    pub name: String,
    /// First meaningful identifier of the declared/constructed type
    /// (references, `mut`, and `dyn`/`impl` skipped). Empty when unknown.
    pub type_head: String,
}

/// One `for <pat> in <expr> { .. }` header.
#[derive(Debug, Clone, PartialEq)]
pub struct ForLoopSyntax {
    /// Last identifier of the iterated expression before the body brace
    /// (`map` in `for k in &self.map {`), when there is one.
    pub iterated: Option<String>,
    /// Whether the iterated expression ends in a call (`for x in xs.iter()`
    /// — the call itself is separately recorded as a [`CallSyntax`]).
    pub iterated_call: bool,
    /// 1-based line of the `for` keyword.
    pub line: u32,
}

/// One recovered `fn` item.
#[derive(Debug, Clone)]
pub struct FnSyntax {
    /// Plain function name.
    pub name: String,
    /// `Type::name` when the fn sits inside `impl Type` / `impl Tr for Type`.
    pub qualified: Option<String>,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Parameters with syntactic type heads (`self` receivers skipped).
    pub params: Vec<TypedName>,
    /// `let` bindings in the body with recoverable type heads.
    pub locals: Vec<TypedName>,
    /// Calls made anywhere in the body (innermost enclosing fn wins for
    /// nested items).
    pub calls: Vec<CallSyntax>,
    /// `for .. in ..` headers in the body.
    pub for_loops: Vec<ForLoopSyntax>,
    /// Token index range of the body `{ .. }` (inclusive of both braces);
    /// `None` for body-less trait method declarations.
    pub body: Option<(usize, usize)>,
}

/// Everything recovered from one file.
#[derive(Debug, Clone, Default)]
pub struct ParsedFile {
    /// Functions in source order (nested fns appear after their parent).
    pub fns: Vec<FnSyntax>,
    /// Struct fields with type heads, across every struct in the file.
    pub fields: Vec<TypedName>,
}

impl ParsedFile {
    /// The innermost function whose body covers token index `ti`.
    pub fn enclosing_fn(&self, ti: usize) -> Option<&FnSyntax> {
        self.fns
            .iter()
            .filter(|f| f.body.is_some_and(|(lo, hi)| lo <= ti && ti <= hi))
            .min_by_key(|f| f.body.map(|(lo, hi)| hi - lo).unwrap_or(usize::MAX))
    }
}

fn is_punct(t: &Tok, s: &str) -> bool {
    matches!(&t.kind, TokKind::Punct(p) if p == s)
}

fn is_ident(t: &Tok, s: &str) -> bool {
    matches!(&t.kind, TokKind::Ident(i) if i == s)
}

fn ident_text(t: &Tok) -> Option<&str> {
    match &t.kind {
        TokKind::Ident(s) => Some(s),
        _ => None,
    }
}

/// Index of the `}` matching the `{` at `open` (balanced over all bracket
/// kinds is unnecessary — braces only). Returns the last token on
/// imbalance.
fn matching_brace(toks: &[Tok], open: usize) -> usize {
    let mut depth = 0usize;
    let mut i = open;
    while i < toks.len() {
        if is_punct(&toks[i], "{") {
            depth += 1;
        } else if is_punct(&toks[i], "}") {
            depth = depth.saturating_sub(1);
            if depth == 0 {
                return i;
            }
        }
        i += 1;
    }
    toks.len().saturating_sub(1)
}

/// First meaningful identifier of a type expression starting at `i`
/// (skips `&`, lifetimes, `mut`, `dyn`, `impl`, parens). Follows leading
/// path segments to keep `std::collections::HashMap` → `HashMap`.
fn type_head(toks: &[Tok], mut i: usize, end: usize) -> String {
    let mut head = String::new();
    while i < end {
        let t = &toks[i];
        match &t.kind {
            TokKind::Punct(p) if p == "&" || p == "(" || p == "*" => i += 1,
            TokKind::Lifetime(_) => i += 1,
            TokKind::Ident(s) if s == "mut" || s == "dyn" || s == "impl" || s == "const" => i += 1,
            TokKind::Ident(s) => {
                head = s.clone();
                // Follow `seg::seg::Final` to the last segment before a
                // non-path token.
                let mut j = i + 1;
                while j + 1 < end && is_punct(&toks[j], "::") {
                    match ident_text(&toks[j + 1]) {
                        Some(next) => {
                            head = next.to_string();
                            j += 2;
                        }
                        None => break,
                    }
                }
                return head;
            }
            _ => return head,
        }
    }
    head
}

/// Parses the parameter list between the parens starting at `open` (the
/// `(` index). `self` receivers are skipped.
fn parse_params(toks: &[Tok], open: usize) -> (Vec<TypedName>, usize) {
    let mut params = Vec::new();
    let mut depth = 0usize;
    let mut i = open;
    // Entry boundaries: commas at paren-depth 1.
    let mut entry_start = open + 1;
    let close;
    loop {
        if i >= toks.len() {
            close = toks.len().saturating_sub(1);
            break;
        }
        let t = &toks[i];
        if is_punct(t, "(") || is_punct(t, "[") || is_punct(t, "{") || is_punct(t, "<") {
            depth += 1;
        } else if is_punct(t, ")") || is_punct(t, "]") || is_punct(t, "}") || is_punct(t, ">") {
            depth = depth.saturating_sub(1);
            if depth == 0 && is_punct(t, ")") {
                push_param(toks, entry_start, i, &mut params);
                close = i;
                break;
            }
        } else if is_punct(t, ",") && depth == 1 {
            push_param(toks, entry_start, i, &mut params);
            entry_start = i + 1;
        }
        i += 1;
    }
    (params, close)
}

fn push_param(toks: &[Tok], start: usize, end: usize, params: &mut Vec<TypedName>) {
    if start >= end {
        return;
    }
    // Find `name : Type`; skip `self` receivers and `mut`/`ref` markers.
    let mut name = None;
    let mut k = start;
    while k < end {
        match ident_text(&toks[k]) {
            Some("mut") | Some("ref") => k += 1,
            Some("self") => return,
            Some(n) => {
                name = Some(n.to_string());
                break;
            }
            None => k += 1,
        }
    }
    let Some(name) = name else { return };
    // Colon after the name introduces the type.
    let mut c = k + 1;
    while c < end && !is_punct(&toks[c], ":") {
        c += 1;
    }
    if c + 1 >= end {
        return;
    }
    params.push(TypedName {
        name,
        type_head: type_head(toks, c + 1, end),
    });
}

/// Recovers items, fn signatures, bindings, and call expressions.
pub fn parse(toks: &[Tok]) -> ParsedFile {
    let mut out = ParsedFile::default();
    // Stack of (impl type, closing-brace index).
    let mut impls: Vec<(String, usize)> = Vec::new();
    // Indices of fns in `out.fns` whose bodies are still open, innermost
    // last, paired with the body's closing-brace index.
    let mut open_fns: Vec<(usize, usize)> = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        impls.retain(|&(_, end)| i <= end);
        open_fns.retain(|&(_, end)| i <= end);
        let t = &toks[i];
        // `impl [<..>] [Trait for] Type { .. }`
        if is_ident(t, "impl") {
            let mut j = i + 1;
            let mut ty = String::new();
            let mut after_for = false;
            while j < toks.len() && !is_punct(&toks[j], "{") && !is_punct(&toks[j], ";") {
                if is_ident(&toks[j], "for") {
                    after_for = true;
                    ty.clear();
                } else if is_ident(&toks[j], "where") {
                    break;
                } else if let Some(name) = ident_text(&toks[j]) {
                    // First segment after `impl`/`for` wins; generic params
                    // inside `<..>` would also match, so only take the
                    // first ident seen (or first after `for`).
                    if ty.is_empty() && name != "mut" && name != "dyn" {
                        ty = name.to_string();
                        // Follow path segments to the final type name.
                        let mut k = j + 1;
                        while k + 1 < toks.len() && is_punct(&toks[k], "::") {
                            match ident_text(&toks[k + 1]) {
                                Some(seg) => {
                                    ty = seg.to_string();
                                    k += 2;
                                }
                                None => break,
                            }
                        }
                    }
                }
                let _ = after_for;
                j += 1;
            }
            while j < toks.len() && !is_punct(&toks[j], "{") && !is_punct(&toks[j], ";") {
                j += 1;
            }
            if j < toks.len() && is_punct(&toks[j], "{") && !ty.is_empty() {
                impls.push((ty, matching_brace(toks, j)));
            }
            i = j + 1;
            continue;
        }
        // `struct Name { field: Type, .. }`
        if is_ident(t, "struct")
            && toks.get(i + 1).and_then(ident_text).is_some()
            && open_fns.is_empty()
        {
            let mut j = i + 2;
            while j < toks.len()
                && !is_punct(&toks[j], "{")
                && !is_punct(&toks[j], ";")
                && !is_punct(&toks[j], "(")
            {
                j += 1;
            }
            if j < toks.len() && is_punct(&toks[j], "{") {
                collect_fields(toks, j, matching_brace(toks, j), &mut out.fields);
            }
            i = j;
            continue;
        }
        // `fn name(params) [-> Ret] { body }`
        if is_ident(t, "fn") {
            if let Some(name) = toks.get(i + 1).and_then(ident_text) {
                let mut j = i + 2;
                // Skip generics to the parameter parens.
                while j < toks.len() && !is_punct(&toks[j], "(") && !is_punct(&toks[j], "{") {
                    j += 1;
                }
                if j < toks.len() && is_punct(&toks[j], "(") {
                    let (params, close) = parse_params(toks, j);
                    // Signature tail to `{` or `;`.
                    let mut b = close + 1;
                    let mut sig_depth = 0usize;
                    while b < toks.len() {
                        let bt = &toks[b];
                        if is_punct(bt, "(") || is_punct(bt, "[") {
                            sig_depth += 1;
                        } else if is_punct(bt, ")") || is_punct(bt, "]") {
                            sig_depth = sig_depth.saturating_sub(1);
                        } else if sig_depth == 0 && (is_punct(bt, "{") || is_punct(bt, ";")) {
                            break;
                        }
                        b += 1;
                    }
                    let body = (b < toks.len() && is_punct(&toks[b], "{"))
                        .then(|| (b, matching_brace(toks, b)));
                    let qualified = impls.last().map(|(ty, _)| format!("{ty}::{name}"));
                    out.fns.push(FnSyntax {
                        name: name.to_string(),
                        qualified,
                        line: t.line,
                        params,
                        locals: Vec::new(),
                        calls: Vec::new(),
                        for_loops: Vec::new(),
                        body,
                    });
                    if let Some((lo, hi)) = body {
                        open_fns.push((out.fns.len() - 1, hi));
                        i = lo + 1;
                        continue;
                    }
                    i = b + 1;
                    continue;
                }
            }
            i += 1;
            continue;
        }
        // Body-level facts attribute to the innermost open fn.
        if let Some(&(fi, _)) = open_fns.last() {
            // `let [mut] name [: Type] [= Expr]`
            if is_ident(t, "let") {
                let mut k = i + 1;
                let mut name = None;
                while k < toks.len() {
                    match ident_text(&toks[k]) {
                        Some("mut") | Some("ref") => k += 1,
                        Some(n) => {
                            name = Some(n.to_string());
                            break;
                        }
                        None => break, // tuple/struct pattern: give up
                    }
                }
                if let Some(name) = name {
                    let mut head = String::new();
                    if toks.get(k + 1).is_some_and(|n| is_punct(n, ":")) {
                        // Annotated: read the type up to `=` or `;`.
                        let mut e = k + 2;
                        while e < toks.len() && !is_punct(&toks[e], "=") && !is_punct(&toks[e], ";")
                        {
                            e += 1;
                        }
                        head = type_head(toks, k + 2, e);
                    } else if toks.get(k + 1).is_some_and(|n| is_punct(n, "="))
                        && toks.get(k + 3).is_some_and(|n| is_punct(n, "::"))
                    {
                        // `= Type::ctor(..)`: the path head is the type.
                        if let Some(h) = toks.get(k + 2).and_then(ident_text) {
                            head = h.to_string();
                        }
                    }
                    if !head.is_empty() {
                        if let Some(f) = out.fns.get_mut(fi) {
                            f.locals.push(TypedName {
                                name,
                                type_head: head,
                            });
                        }
                    }
                }
            }
            // `for <pat> in <expr> {`
            if is_ident(t, "for") && i > 0 && !is_punct(&toks[i - 1], "<") {
                // Find `in` at this nesting level, then the body `{`.
                let mut k = i + 1;
                let mut d = 0usize;
                while k < toks.len() {
                    let kt = &toks[k];
                    if is_punct(kt, "(") || is_punct(kt, "[") {
                        d += 1;
                    } else if is_punct(kt, ")") || is_punct(kt, "]") {
                        d = d.saturating_sub(1);
                    } else if d == 0 && is_ident(kt, "in") {
                        break;
                    } else if d == 0 && (is_punct(kt, "{") || is_punct(kt, ";")) {
                        k = toks.len(); // not a for-loop header
                    }
                    k += 1;
                }
                if k < toks.len() {
                    let mut e = k + 1;
                    let mut d = 0usize;
                    let mut last_ident = None;
                    let mut ends_in_call = false;
                    while e < toks.len() {
                        let et = &toks[e];
                        if is_punct(et, "(") || is_punct(et, "[") {
                            d += 1;
                        } else if is_punct(et, ")") || is_punct(et, "]") {
                            d = d.saturating_sub(1);
                            ends_in_call = true;
                        } else if d == 0 && is_punct(et, "{") {
                            break;
                        } else if let Some(n) = ident_text(et) {
                            if d == 0 {
                                last_ident = Some(n.to_string());
                                ends_in_call = false;
                            }
                        }
                        e += 1;
                    }
                    if let Some(f) = out.fns.get_mut(fi) {
                        f.for_loops.push(ForLoopSyntax {
                            iterated: last_ident,
                            iterated_call: ends_in_call,
                            line: t.line,
                        });
                    }
                }
            }
            // Call expressions: `name(..)`, `path::name(..)`, `.name(..)`.
            if let Some(name) = ident_text(t) {
                let next_is_call = toks.get(i + 1).is_some_and(|n| is_punct(n, "("));
                let next_is_macro = toks.get(i + 1).is_some_and(|n| is_punct(n, "!"));
                if next_is_call && !next_is_macro && !is_keyword(name) {
                    let prev = i.checked_sub(1).and_then(|p| toks.get(p));
                    let method = prev.is_some_and(|p| is_punct(p, "."));
                    let qualifier = if prev.is_some_and(|p| is_punct(p, "::")) {
                        i.checked_sub(2)
                            .and_then(|p| toks.get(p))
                            .and_then(ident_text)
                            .map(str::to_string)
                    } else {
                        None
                    };
                    // Skip declarations (`fn name(`) — already handled —
                    // and tuple-struct patterns after `match`/`if let`
                    // (over-approximating those as calls is harmless).
                    let receiver = if method {
                        i.checked_sub(2)
                            .and_then(|p| toks.get(p))
                            .and_then(ident_text)
                            .map(str::to_string)
                    } else {
                        None
                    };
                    if let Some(f) = out.fns.get_mut(fi) {
                        f.calls.push(CallSyntax {
                            name: name.to_string(),
                            qualifier,
                            method,
                            receiver,
                            line: t.line,
                        });
                    }
                }
            }
        }
        i += 1;
    }
    out
}

fn collect_fields(toks: &[Tok], open: usize, close: usize, fields: &mut Vec<TypedName>) {
    // At body depth 1: `name : Type ,` entries (attributes and `pub`
    // markers skipped; nested generic commas are below depth 1 only for
    // braces, so track all bracket kinds).
    let mut depth = 0usize;
    let mut i = open;
    while i <= close && i < toks.len() {
        let t = &toks[i];
        if is_punct(t, "{") || is_punct(t, "(") || is_punct(t, "[") || is_punct(t, "<") {
            depth += 1;
        } else if is_punct(t, "}") || is_punct(t, ")") || is_punct(t, "]") || is_punct(t, ">") {
            depth = depth.saturating_sub(1);
        } else if depth == 1 {
            if let Some(name) = ident_text(t) {
                if name != "pub"
                    && toks.get(i + 1).is_some_and(|n| is_punct(n, ":"))
                    && i > open
                    && (is_punct(&toks[i - 1], ",")
                        || is_punct(&toks[i - 1], "{")
                        || is_punct(&toks[i - 1], "]")
                        || is_ident(&toks[i - 1], "pub")
                        || is_punct(&toks[i - 1], ")"))
                {
                    let mut e = i + 2;
                    let mut d = 0usize;
                    while e <= close && e < toks.len() {
                        let et = &toks[e];
                        if is_punct(et, "<") || is_punct(et, "(") || is_punct(et, "[") {
                            d += 1;
                        } else if is_punct(et, ">") || is_punct(et, ")") || is_punct(et, "]") {
                            if d == 0 {
                                break;
                            }
                            d -= 1;
                        } else if d == 0 && (is_punct(et, ",") || is_punct(et, "}")) {
                            break;
                        }
                        e += 1;
                    }
                    let head = type_head(toks, i + 2, e.min(close));
                    if !head.is_empty() {
                        fields.push(TypedName {
                            name: name.to_string(),
                            type_head: head,
                        });
                    }
                }
            }
        }
        i += 1;
    }
}

fn is_keyword(s: &str) -> bool {
    matches!(
        s,
        "if" | "else"
            | "match"
            | "while"
            | "for"
            | "loop"
            | "return"
            | "let"
            | "fn"
            | "in"
            | "as"
            | "use"
            | "mod"
            | "pub"
            | "impl"
            | "struct"
            | "enum"
            | "trait"
            | "where"
            | "move"
            | "mut"
            | "ref"
            | "break"
            | "continue"
            | "unsafe"
            | "dyn"
            | "const"
            | "static"
            | "type"
            | "Some"
            | "Ok"
            | "Err"
            | "None"
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parsed(src: &str) -> ParsedFile {
        parse(&lex(src).unwrap().toks)
    }

    #[test]
    fn fn_names_and_impl_qualification() {
        let p = parsed(
            "fn free() {}\nimpl Advisor { fn recommend(&self) {} }\nimpl Rule for NoPanic { fn id(&self) -> u32 { 1 } }\n",
        );
        let names: Vec<_> = p.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["free", "recommend", "id"]);
        assert_eq!(p.fns[0].qualified, None);
        assert_eq!(p.fns[1].qualified.as_deref(), Some("Advisor::recommend"));
        assert_eq!(p.fns[2].qualified.as_deref(), Some("NoPanic::id"));
    }

    #[test]
    fn params_and_locals_with_type_heads() {
        let p = parsed(
            "fn f(x: f64, ys: &mut Vec<u32>, map: std::collections::HashMap<u32, f64>) {\n\
             let total: f64 = 0.;\n\
             let seen = HashSet::new();\n\
             let plain = x + 1.0;\n\
             }\n",
        );
        let f = &p.fns[0];
        let params: Vec<_> = f
            .params
            .iter()
            .map(|p| (p.name.as_str(), p.type_head.as_str()))
            .collect();
        assert_eq!(params, [("x", "f64"), ("ys", "Vec"), ("map", "HashMap")]);
        let locals: Vec<_> = f
            .locals
            .iter()
            .map(|l| (l.name.as_str(), l.type_head.as_str()))
            .collect();
        assert_eq!(locals, [("total", "f64"), ("seen", "HashSet")]);
    }

    #[test]
    fn calls_are_attributed_with_qualifiers() {
        let p = parsed(
            "fn f() { helper(); module::target(1); Advisor::new(); xs.iter(); self.map.keys(); }\n",
        );
        let calls = &p.fns[0].calls;
        let shapes: Vec<_> = calls
            .iter()
            .map(|c| (c.name.as_str(), c.qualifier.as_deref(), c.method))
            .collect();
        assert_eq!(
            shapes,
            [
                ("helper", None, false),
                ("target", Some("module"), false),
                ("new", Some("Advisor"), false),
                ("iter", None, true),
                ("keys", None, true),
            ]
        );
        assert_eq!(calls[3].receiver.as_deref(), Some("xs"));
        assert_eq!(calls[4].receiver.as_deref(), Some("map"));
    }

    #[test]
    fn nested_fn_bodies_attribute_innermost() {
        let p = parsed("fn outer() { fn inner() { deep(); } shallow(); }\n");
        let outer = p.fns.iter().find(|f| f.name == "outer").unwrap();
        let inner = p.fns.iter().find(|f| f.name == "inner").unwrap();
        assert_eq!(outer.calls.len(), 1);
        assert_eq!(outer.calls[0].name, "shallow");
        assert_eq!(inner.calls[0].name, "deep");
    }

    #[test]
    fn for_loop_headers() {
        let p = parsed("fn f(m: HashMap<u32, u32>) { for (k, v) in &m { use_it(k, v); } for x in ys.iter() {} }\n");
        let loops = &p.fns[0].for_loops;
        assert_eq!(loops.len(), 2);
        assert_eq!(loops[0].iterated.as_deref(), Some("m"));
        assert!(!loops[0].iterated_call);
        assert!(loops[1].iterated_call);
    }

    #[test]
    fn struct_fields_collected() {
        let p = parsed(
            "pub struct Registry { pub sessions: HashMap<u64, Session>, count: usize }\nstruct Unit;\n",
        );
        let fields: Vec<_> = p
            .fields
            .iter()
            .map(|f| (f.name.as_str(), f.type_head.as_str()))
            .collect();
        assert_eq!(fields, [("sessions", "HashMap"), ("count", "usize")]);
    }

    #[test]
    fn trait_decl_without_body() {
        let p = parsed("trait T { fn required(&self) -> u32; fn provided(&self) -> u32 { 0 } }\n");
        let req = p.fns.iter().find(|f| f.name == "required").unwrap();
        assert!(req.body.is_none());
        let prov = p.fns.iter().find(|f| f.name == "provided").unwrap();
        assert!(prov.body.is_some());
    }

    #[test]
    fn macro_invocations_are_not_calls() {
        let p = parsed("fn f() { println!(\"x\"); real(); }\n");
        assert_eq!(p.fns[0].calls.len(), 1);
        assert_eq!(p.fns[0].calls[0].name, "real");
    }
}
