//! Hand-written Rust lexer for the lint pass.
//!
//! In the spirit of the `dblayout-sql` lexer: a flat token stream with
//! source lines, built by hand over the raw bytes. It is **not** a full
//! Rust front-end — it only needs to be faithful enough that rule matching
//! never confuses code with non-code. Concretely that means strings (plain,
//! raw `r#"…"#`, byte), char literals vs. lifetimes (`'a'` vs. `'a`),
//! nested block comments, raw identifiers (`r#fn`), and numeric literals
//! with underscores/suffixes all lex correctly. Comments are collected on a
//! side channel (they carry suppression directives, see
//! [`crate::suppress`]); they never appear in the main token stream, so a
//! rule can match `.unwrap()` without tripping over `// .unwrap()` in a
//! doc comment or a `".unwrap()"` string literal.

/// What a token is, with just enough payload for rule matching.
#[derive(Debug, Clone, PartialEq)]
pub enum TokKind {
    /// Identifier or keyword (`fn`, `lock`, `unwrap`, ...).
    Ident(String),
    /// Lifetime such as `'a` or `'_` (leading quote stripped).
    Lifetime(String),
    /// Integer literal (original text).
    Int(String),
    /// Floating-point literal (original text): has a fractional part, an
    /// exponent, or an `f32`/`f64` suffix.
    Float(String),
    /// String literal of any flavor (contents dropped).
    Str,
    /// Char or byte literal (contents dropped).
    Char,
    /// Punctuation. Multi-character operators that matter to the rules are
    /// pre-joined: `==` `!=` `<=` `>=` `::` `->` `=>` `..` `..=` `&&` `||`.
    Punct(String),
}

/// A token with its 1-based source line.
#[derive(Debug, Clone, PartialEq)]
pub struct Tok {
    /// What was lexed.
    pub kind: TokKind,
    /// 1-based line the token starts on.
    pub line: u32,
}

/// A comment, collected out-of-band for suppression parsing.
#[derive(Debug, Clone, PartialEq)]
pub struct Comment {
    /// Comment text without the `//` / `/*` markers, trimmed.
    pub text: String,
    /// 1-based line the comment starts on.
    pub line: u32,
    /// Whether any non-whitespace token precedes the comment on its line
    /// (a trailing comment suppresses its own line; a standalone comment
    /// suppresses the next).
    pub trailing: bool,
}

/// A lex failure with its source line.
#[derive(Debug, Clone, PartialEq)]
pub struct LexError {
    /// What went wrong.
    pub message: String,
    /// 1-based line.
    pub line: u32,
}

impl std::fmt::Display for LexError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

/// Token stream plus the comment side channel.
#[derive(Debug, Clone)]
pub struct LexOutput {
    /// Code tokens in source order.
    pub toks: Vec<Tok>,
    /// Comments in source order.
    pub comments: Vec<Comment>,
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    /// Whether a code token has been emitted on the current line (drives
    /// [`Comment::trailing`]).
    code_on_line: bool,
}

impl<'a> Lexer<'a> {
    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek_at(&self, ahead: usize) -> Option<u8> {
        self.src.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.code_on_line = false;
        }
        Some(b)
    }

    fn err(&self, message: impl Into<String>) -> LexError {
        LexError {
            message: message.into(),
            line: self.line,
        }
    }

    fn take_while(&mut self, pred: impl Fn(u8) -> bool) -> usize {
        let start = self.pos;
        while matches!(self.peek(), Some(b) if pred(b)) {
            self.bump();
        }
        self.pos - start
    }

    fn text_since(&self, start: usize) -> String {
        String::from_utf8_lossy(&self.src[start..self.pos]).into_owned()
    }

    fn lex_line_comment(&mut self) -> Comment {
        let line = self.line;
        let trailing = self.code_on_line;
        self.bump();
        self.bump(); // the `//`
        let start = self.pos;
        while matches!(self.peek(), Some(b) if b != b'\n') {
            self.bump();
        }
        Comment {
            text: self.text_since(start).trim().to_string(),
            line,
            trailing,
        }
    }

    fn lex_block_comment(&mut self) -> Result<Comment, LexError> {
        let line = self.line;
        let trailing = self.code_on_line;
        self.bump();
        self.bump(); // the `/*`
        let start = self.pos;
        let mut depth = 1usize;
        loop {
            match (self.peek(), self.peek_at(1)) {
                (Some(b'/'), Some(b'*')) => {
                    depth += 1;
                    self.bump();
                    self.bump();
                }
                (Some(b'*'), Some(b'/')) => {
                    depth -= 1;
                    if depth == 0 {
                        let text = self.text_since(start).trim().to_string();
                        self.bump();
                        self.bump();
                        return Ok(Comment {
                            text,
                            line,
                            trailing,
                        });
                    }
                    self.bump();
                    self.bump();
                }
                (Some(_), _) => {
                    self.bump();
                }
                (None, _) => return Err(self.err("unterminated block comment")),
            }
        }
    }

    /// Consumes a plain `"…"` string body (opening quote already consumed).
    fn lex_string_body(&mut self) -> Result<(), LexError> {
        loop {
            match self.bump() {
                Some(b'"') => return Ok(()),
                Some(b'\\') => {
                    self.bump(); // whatever is escaped, including `"` and `\`
                }
                Some(_) => {}
                None => return Err(self.err("unterminated string literal")),
            }
        }
    }

    /// Consumes a raw string starting at `r`/`br` (already past the prefix,
    /// positioned on `#`s or the opening quote).
    fn lex_raw_string_body(&mut self) -> Result<(), LexError> {
        let mut hashes = 0usize;
        while self.peek() == Some(b'#') {
            hashes += 1;
            self.bump();
        }
        if self.bump() != Some(b'"') {
            return Err(self.err("malformed raw string opener"));
        }
        loop {
            match self.bump() {
                Some(b'"') => {
                    let mut seen = 0usize;
                    while seen < hashes && self.peek() == Some(b'#') {
                        seen += 1;
                        self.bump();
                    }
                    if seen == hashes {
                        return Ok(());
                    }
                }
                Some(_) => {}
                None => return Err(self.err("unterminated raw string literal")),
            }
        }
    }

    /// Consumes a char/byte-char body (opening `'` already consumed).
    fn lex_char_body(&mut self) -> Result<(), LexError> {
        match self.bump() {
            Some(b'\\') => {
                match self.bump() {
                    Some(b'u') => {
                        // `\u{…}`
                        if self.peek() == Some(b'{') {
                            while matches!(self.bump(), Some(b) if b != b'}') {}
                        }
                    }
                    Some(_) => {}
                    None => return Err(self.err("unterminated char literal")),
                }
            }
            Some(b'\'') => return Err(self.err("empty char literal")),
            Some(_) => {}
            None => return Err(self.err("unterminated char literal")),
        }
        if self.bump() != Some(b'\'') {
            return Err(self.err("unterminated char literal"));
        }
        Ok(())
    }

    fn lex_number(&mut self) -> Tok {
        let line = self.line;
        let start = self.pos;
        let mut is_float = false;
        let radix_prefix = self.peek() == Some(b'0')
            && matches!(
                self.peek_at(1),
                Some(b'x') | Some(b'X') | Some(b'b') | Some(b'B') | Some(b'o') | Some(b'O')
            );
        if radix_prefix {
            self.bump();
            self.bump();
            self.take_while(|b| b.is_ascii_alphanumeric() || b == b'_');
        } else {
            self.take_while(|b| b.is_ascii_digit() || b == b'_');
            // Fractional part — but not `..` (range) and not `.method()`.
            if self.peek() == Some(b'.') && matches!(self.peek_at(1), Some(b) if b.is_ascii_digit())
            {
                is_float = true;
                self.bump();
                self.take_while(|b| b.is_ascii_digit() || b == b'_');
            } else if self.peek() == Some(b'.')
                && !matches!(self.peek_at(1), Some(b) if b == b'.' || is_ident_start(b))
            {
                // Trailing-dot float (`1.`, `1.,`, `(1.)`): rustc keeps the
                // dot in the number token when neither `..` (range) nor an
                // identifier (`1.max(2)` method-call split) follows.
                is_float = true;
                self.bump();
            }
            // Exponent, only when a digit (or signed digit) follows.
            if matches!(self.peek(), Some(b'e') | Some(b'E')) {
                let mut look = 1;
                if matches!(self.peek_at(1), Some(b'+') | Some(b'-')) {
                    look = 2;
                }
                if matches!(self.peek_at(look), Some(b) if b.is_ascii_digit()) {
                    is_float = true;
                    self.bump();
                    if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                        self.bump();
                    }
                    self.take_while(|b| b.is_ascii_digit() || b == b'_');
                }
            }
            // Type suffix (`u64`, `f64`, `usize`, ...), directly attached.
            let suffix_start = self.pos;
            self.take_while(|b| b.is_ascii_alphanumeric() || b == b'_');
            let suffix = self.text_since(suffix_start);
            if suffix == "f32" || suffix == "f64" {
                is_float = true;
            }
        }
        let text = self.text_since(start);
        Tok {
            kind: if is_float {
                TokKind::Float(text)
            } else {
                TokKind::Int(text)
            },
            line,
        }
    }

    fn lex_punct(&mut self) -> Tok {
        let line = self.line;
        let a = self.bump().unwrap_or(b' ') as char;
        let joined = |lexer: &Self, next: char| lexer.peek() == Some(next as u8);
        let two = |lexer: &mut Self, s: &str| {
            lexer.bump();
            Tok {
                kind: TokKind::Punct(s.to_string()),
                line,
            }
        };
        match a {
            '=' if joined(self, '=') => two(self, "=="),
            '=' if joined(self, '>') => two(self, "=>"),
            '!' if joined(self, '=') => two(self, "!="),
            '<' if joined(self, '=') => two(self, "<="),
            '>' if joined(self, '=') => two(self, ">="),
            ':' if joined(self, ':') => two(self, "::"),
            '-' if joined(self, '>') => two(self, "->"),
            '&' if joined(self, '&') => two(self, "&&"),
            '|' if joined(self, '|') => two(self, "||"),
            '.' if joined(self, '.') => {
                self.bump();
                if self.peek() == Some(b'=') {
                    self.bump();
                    Tok {
                        kind: TokKind::Punct("..=".to_string()),
                        line,
                    }
                } else {
                    Tok {
                        kind: TokKind::Punct("..".to_string()),
                        line,
                    }
                }
            }
            other => Tok {
                kind: TokKind::Punct(other.to_string()),
                line,
            },
        }
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_'
}

fn is_ident_cont(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Tokenizes Rust source into code tokens plus a comment side channel.
pub fn lex(src: &str) -> Result<LexOutput, LexError> {
    let mut lexer = Lexer {
        src: src.as_bytes(),
        pos: 0,
        line: 1,
        code_on_line: false,
    };
    let mut toks = Vec::new();
    let mut comments = Vec::new();
    loop {
        match lexer.peek() {
            None => break,
            Some(b) if b.is_ascii_whitespace() => {
                lexer.bump();
            }
            Some(b'/') if lexer.peek_at(1) == Some(b'/') => {
                comments.push(lexer.lex_line_comment());
            }
            Some(b'/') if lexer.peek_at(1) == Some(b'*') => {
                comments.push(lexer.lex_block_comment()?);
            }
            Some(b'r') | Some(b'b') => {
                let line = lexer.line;
                let start = lexer.pos;
                let first = lexer.bump().unwrap_or(b'r');
                match (first, lexer.peek()) {
                    // Raw string `r"…"` / `r#"…"#`.
                    (b'r', Some(b'"')) | (b'r', Some(b'#'))
                        if first == b'r'
                            && (lexer.peek() == Some(b'"')
                                || raw_string_follows(lexer.src, lexer.pos)) =>
                    {
                        lexer.lex_raw_string_body()?;
                        toks.push(Tok {
                            kind: TokKind::Str,
                            line,
                        });
                        lexer.code_on_line = true;
                    }
                    // Byte string `b"…"`, raw byte string `br"…"`.
                    (b'b', Some(b'"')) => {
                        lexer.bump();
                        lexer.lex_string_body()?;
                        toks.push(Tok {
                            kind: TokKind::Str,
                            line,
                        });
                        lexer.code_on_line = true;
                    }
                    (b'b', Some(b'r')) if matches!(lexer.peek_at(1), Some(b'"') | Some(b'#')) => {
                        lexer.bump();
                        lexer.lex_raw_string_body()?;
                        toks.push(Tok {
                            kind: TokKind::Str,
                            line,
                        });
                        lexer.code_on_line = true;
                    }
                    // Byte char `b'…'`.
                    (b'b', Some(b'\'')) => {
                        lexer.bump();
                        lexer.lex_char_body()?;
                        toks.push(Tok {
                            kind: TokKind::Char,
                            line,
                        });
                        lexer.code_on_line = true;
                    }
                    // Raw identifier `r#ident`.
                    (b'r', Some(b'#')) if matches!(lexer.peek_at(1), Some(b) if is_ident_start(b)) =>
                    {
                        lexer.bump();
                        lexer.take_while(is_ident_cont);
                        let text = lexer.text_since(start + 2);
                        toks.push(Tok {
                            kind: TokKind::Ident(text),
                            line,
                        });
                        lexer.code_on_line = true;
                    }
                    // Plain identifier starting with `r`/`b`.
                    _ => {
                        lexer.take_while(is_ident_cont);
                        toks.push(Tok {
                            kind: TokKind::Ident(lexer.text_since(start)),
                            line,
                        });
                        lexer.code_on_line = true;
                    }
                }
            }
            Some(b'"') => {
                let line = lexer.line;
                lexer.bump();
                lexer.lex_string_body()?;
                toks.push(Tok {
                    kind: TokKind::Str,
                    line,
                });
                lexer.code_on_line = true;
            }
            Some(b'\'') => {
                let line = lexer.line;
                // Lifetime when an identifier follows and is NOT closed by
                // another quote (`'a` vs. `'a'`).
                let is_lifetime = matches!(lexer.peek_at(1), Some(b) if is_ident_start(b)) && {
                    let mut look = 2;
                    while matches!(lexer.src.get(lexer.pos + look), Some(&b) if is_ident_cont(b)) {
                        look += 1;
                    }
                    lexer.src.get(lexer.pos + look) != Some(&b'\'')
                };
                lexer.bump();
                if is_lifetime {
                    let start = lexer.pos;
                    lexer.take_while(is_ident_cont);
                    toks.push(Tok {
                        kind: TokKind::Lifetime(lexer.text_since(start)),
                        line,
                    });
                } else {
                    lexer.lex_char_body()?;
                    toks.push(Tok {
                        kind: TokKind::Char,
                        line,
                    });
                }
                lexer.code_on_line = true;
            }
            Some(b) if b.is_ascii_digit() => {
                toks.push(lexer.lex_number());
                lexer.code_on_line = true;
            }
            Some(b) if is_ident_start(b) => {
                let line = lexer.line;
                let start = lexer.pos;
                lexer.take_while(is_ident_cont);
                toks.push(Tok {
                    kind: TokKind::Ident(lexer.text_since(start)),
                    line,
                });
                lexer.code_on_line = true;
            }
            Some(_) => {
                toks.push(lexer.lex_punct());
                lexer.code_on_line = true;
            }
        }
    }
    Ok(LexOutput { toks, comments })
}

/// Whether `src[pos..]` looks like `#…#"` — the hash run of a raw string
/// opener (distinguishes `r#"…"#` from the raw identifier `r#ident`).
fn raw_string_follows(src: &[u8], mut pos: usize) -> bool {
    while src.get(pos) == Some(&b'#') {
        pos += 1;
    }
    src.get(pos) == Some(&b'"')
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokKind> {
        lex(src).unwrap().toks.into_iter().map(|t| t.kind).collect()
    }

    fn idents(src: &str) -> Vec<String> {
        kinds(src)
            .into_iter()
            .filter_map(|k| match k {
                TokKind::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn strings_hide_their_contents() {
        // `.unwrap()` inside a string must not produce an `unwrap` ident.
        assert_eq!(idents(r#"let s = ".unwrap()";"#), vec!["let", "s"]);
        assert_eq!(idents(r##"let s = r#".unwrap()"#;"##), vec!["let", "s"]);
        assert_eq!(idents(r#"let s = b".unwrap()";"#), vec!["let", "s"]);
    }

    #[test]
    fn comments_go_to_the_side_channel() {
        let out = lex("let x = 1; // trailing .unwrap()\n// standalone\nlet y = 2;").unwrap();
        assert!(!out
            .toks
            .iter()
            .any(|t| t.kind == TokKind::Ident("unwrap".into())));
        assert_eq!(out.comments.len(), 2);
        assert!(out.comments[0].trailing);
        assert_eq!(out.comments[0].line, 1);
        assert!(!out.comments[1].trailing);
        assert_eq!(out.comments[1].line, 2);
    }

    #[test]
    fn nested_block_comments() {
        let out = lex("/* outer /* inner */ still */ fn x() {}").unwrap();
        assert_eq!(out.comments.len(), 1);
        assert_eq!(idents("/* a /* b */ c */ fn x() {}"), vec!["fn", "x"]);
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        assert_eq!(
            kinds("'a 'static '_"),
            vec![
                TokKind::Lifetime("a".into()),
                TokKind::Lifetime("static".into()),
                TokKind::Lifetime("_".into()),
            ]
        );
        assert_eq!(kinds("'a'"), vec![TokKind::Char]);
        assert_eq!(kinds(r"'\''"), vec![TokKind::Char]);
        assert_eq!(kinds(r"'\u{1F600}'"), vec![TokKind::Char]);
        assert_eq!(kinds("b'+'"), vec![TokKind::Char]);
    }

    #[test]
    fn numbers_with_underscores_and_suffixes() {
        assert_eq!(
            kinds("0xcbf2_9ce4 1_000u64 2.5 1e3 3f64 7"),
            vec![
                TokKind::Int("0xcbf2_9ce4".into()),
                TokKind::Int("1_000u64".into()),
                TokKind::Float("2.5".into()),
                TokKind::Float("1e3".into()),
                TokKind::Float("3f64".into()),
                TokKind::Int("7".into()),
            ]
        );
    }

    #[test]
    fn trailing_dot_floats() {
        // `1.` is a float in Rust when neither `..` nor an identifier
        // follows; `1..2` stays a range and `1.max(2)` stays an int plus a
        // method call (the rustc split).
        assert_eq!(
            kinds("let x = 1.;"),
            vec![
                TokKind::Ident("let".into()),
                TokKind::Ident("x".into()),
                TokKind::Punct("=".into()),
                TokKind::Float("1.".into()),
                TokKind::Punct(";".into()),
            ]
        );
        assert_eq!(kinds("(2.)")[1], TokKind::Float("2.".into()));
        assert_eq!(
            kinds("1.max(2)")[..3],
            [
                TokKind::Int("1".into()),
                TokKind::Punct(".".into()),
                TokKind::Ident("max".into()),
            ]
        );
        // Tuple-field chains keep rustc's token-level behavior: `x.0.1`
        // lexes the `0.1` as one float token (the parser-side split is a
        // rustc hack this lexer does not replicate).
        assert_eq!(kinds("x.0.1")[2], TokKind::Float("0.1".into()));
    }

    #[test]
    fn ranges_do_not_eat_floats() {
        assert_eq!(
            kinds("0..n 1..=k"),
            vec![
                TokKind::Int("0".into()),
                TokKind::Punct("..".into()),
                TokKind::Ident("n".into()),
                TokKind::Int("1".into()),
                TokKind::Punct("..=".into()),
                TokKind::Ident("k".into()),
            ]
        );
    }

    #[test]
    fn joined_operators() {
        assert_eq!(
            kinds("a == b != c :: d -> e => f"),
            vec![
                TokKind::Ident("a".into()),
                TokKind::Punct("==".into()),
                TokKind::Ident("b".into()),
                TokKind::Punct("!=".into()),
                TokKind::Ident("c".into()),
                TokKind::Punct("::".into()),
                TokKind::Ident("d".into()),
                TokKind::Punct("->".into()),
                TokKind::Ident("e".into()),
                TokKind::Punct("=>".into()),
                TokKind::Ident("f".into()),
            ]
        );
    }

    #[test]
    fn raw_identifier() {
        assert_eq!(idents("r#fn r#match plain"), vec!["fn", "match", "plain"]);
    }

    #[test]
    fn unterminated_inputs_error() {
        assert!(lex("\"never closed").is_err());
        assert!(lex("/* never closed").is_err());
        // `'x` at EOF is a lifetime, not an unterminated char literal.
        assert!(matches!(
            lex("'x").unwrap().toks[0].kind,
            TokKind::Lifetime(_)
        ));
    }

    #[test]
    fn lines_are_tracked() {
        let out = lex("fn a() {\n  b()\n}\n").unwrap();
        let b = out
            .toks
            .iter()
            .find(|t| t.kind == TokKind::Ident("b".into()))
            .unwrap();
        assert_eq!(b.line, 2);
    }
}
