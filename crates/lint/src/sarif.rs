//! SARIF 2.1.0 rendering for CI annotation.
//!
//! GitHub's code-scanning upload understands SARIF natively, turning lint
//! findings into inline PR annotations. Only the subset the upload needs
//! is emitted: one run with the tool's rule catalog, one `result` per
//! diagnostic (active and out-of-scope alike — the latter marked by a
//! property so a diff-scoped CI run still records the full picture), with
//! `warning`/`error` levels and physical locations.

use serde_json::Value;

use crate::report::{Diagnostic, LintReport, Severity};
use crate::rules::all_rules;

fn map(entries: Vec<(&str, Value)>) -> Value {
    Value::Map(
        entries
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn result_for(d: &Diagnostic, in_scope: bool) -> Value {
    let level = match d.severity {
        Severity::Warning => "warning",
        Severity::Error => "error",
    };
    map(vec![
        ("ruleId", Value::Str(d.rule.to_string())),
        ("level", Value::Str(level.to_string())),
        (
            "message",
            map(vec![("text", Value::Str(d.message.clone()))]),
        ),
        (
            "locations",
            Value::Seq(vec![map(vec![(
                "physicalLocation",
                map(vec![
                    (
                        "artifactLocation",
                        map(vec![("uri", Value::Str(d.file.clone()))]),
                    ),
                    (
                        "region",
                        map(vec![("startLine", Value::U64(u64::from(d.line.max(1))))]),
                    ),
                ]),
            )])]),
        ),
        (
            "properties",
            map(vec![("inDiffScope", Value::Bool(in_scope))]),
        ),
    ])
}

/// Renders the report as a SARIF 2.1.0 document.
pub fn to_sarif(report: &LintReport) -> Value {
    let rules: Vec<Value> = all_rules()
        .iter()
        .map(|r| {
            map(vec![
                ("id", Value::Str(r.id().to_string())),
                (
                    "shortDescription",
                    map(vec![("text", Value::Str(r.description().to_string()))]),
                ),
            ])
        })
        .collect();
    let mut results: Vec<Value> = report
        .diagnostics
        .iter()
        .map(|d| result_for(d, true))
        .collect();
    results.extend(report.out_of_scope.iter().map(|d| result_for(d, false)));
    map(vec![
        (
            "$schema",
            Value::Str(
                "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json"
                    .to_string(),
            ),
        ),
        ("version", Value::Str("2.1.0".to_string())),
        (
            "runs",
            Value::Seq(vec![map(vec![
                (
                    "tool",
                    map(vec![(
                        "driver",
                        map(vec![
                            ("name", Value::Str("dblayout-lint".to_string())),
                            ("informationUri", Value::Str("DESIGN.md".to_string())),
                            ("rules", Value::Seq(rules)),
                        ]),
                    )]),
                ),
                ("results", Value::Seq(results)),
            ])]),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::ValueExt;

    #[test]
    fn sarif_shape_and_levels() {
        let report = LintReport {
            diagnostics: vec![Diagnostic {
                rule: "R1",
                severity: Severity::Warning,
                file: "crates/server/src/x.rs".into(),
                line: 3,
                message: "bare unwrap".into(),
            }],
            out_of_scope: vec![Diagnostic {
                rule: "R4",
                severity: Severity::Warning,
                file: "crates/server/src/y.rs".into(),
                line: 9,
                message: "cycle".into(),
            }],
            ..LintReport::default()
        };
        let v = to_sarif(&report);
        assert_eq!(v.get("version").and_then(|x| x.as_str()), Some("2.1.0"));
        let runs = v.get("runs").and_then(|x| x.as_array()).unwrap();
        let results = runs[0].get("results").and_then(|x| x.as_array()).unwrap();
        assert_eq!(results.len(), 2);
        assert_eq!(
            results[0].get("ruleId").and_then(|x| x.as_str()),
            Some("R1")
        );
        assert_eq!(
            results[0]
                .get("properties")
                .and_then(|p| p.get("inDiffScope"))
                .and_then(|x| x.as_bool()),
            Some(true)
        );
        assert_eq!(
            results[1]
                .get("properties")
                .and_then(|p| p.get("inDiffScope"))
                .and_then(|x| x.as_bool()),
            Some(false)
        );
        // Rule catalog covers R1..R10.
        let driver_rules = runs[0]
            .get("tool")
            .and_then(|t| t.get("driver"))
            .and_then(|d| d.get("rules"))
            .and_then(|x| x.as_array())
            .unwrap();
        assert_eq!(driver_rules.len(), 10);
        // SARIF must parse back as JSON.
        let text = serde_json::to_string(&v).unwrap();
        let _: serde_json::Value = serde_json::from_str(&text).unwrap();
    }
}
