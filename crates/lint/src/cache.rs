//! The incremental-analysis cache: `results/lint_cache.json`.
//!
//! Scan results are pure functions of one file's text (plus the analyzer
//! version), so the cache maps `path → (content hash, FileSummary)`. On a
//! warm run, an unchanged file skips lex/parse/scan and reuses its cached
//! summary; cross-file *finish* rules always re-run because they are
//! cheap joins over the (possibly cached) facts. Suppression matching and
//! unused-suppression detection also re-run every time — they depend on
//! the whole finding set, not on one file.
//!
//! The cache is versioned: [`CACHE_VERSION`] bumps whenever a rule, the
//! lexer, the parser, or the summary schema changes behavior, which
//! atomically invalidates every entry (a stale summary must never
//! masquerade as a fresh scan). A missing, unreadable, or malformed cache
//! file degrades to a cold run — the cache is an accelerator, never a
//! correctness dependency.

use std::collections::BTreeMap;
use std::io;
use std::path::Path;

use serde_json::{Value, ValueExt};

use crate::summary::FileSummary;

/// Bump on any behavior change in lexing, parsing, scanning, or the
/// summary schema.
pub const CACHE_VERSION: u64 = 2;

/// FNV-1a 64 over the file text — fast, dependency-free, and stable
/// across runs/platforms (unlike `DefaultHasher`, which is randomly
/// seeded per process).
pub fn content_hash(text: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in text.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// In-memory cache: path → summary (which carries its own content hash).
#[derive(Debug, Clone, Default)]
pub struct LintCache {
    entries: BTreeMap<String, FileSummary>,
}

impl LintCache {
    /// A cached summary for `path`, valid only if the hash still matches.
    pub fn lookup(&self, path: &str, hash: u64) -> Option<&FileSummary> {
        self.entries.get(path).filter(|s| s.hash == hash)
    }

    /// Records a fresh summary.
    pub fn store(&mut self, summary: FileSummary) {
        self.entries.insert(summary.path.clone(), summary);
    }

    /// Number of cached files.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Serializes the whole cache (versioned envelope).
    pub fn to_json(&self) -> Value {
        Value::Map(vec![
            ("version".to_string(), Value::U64(CACHE_VERSION)),
            (
                "entries".to_string(),
                Value::Seq(self.entries.values().map(FileSummary::to_value).collect()),
            ),
        ])
    }

    /// Parses a cache file's text. Wrong version or malformed shape →
    /// empty cache (a full re-scan, not an error).
    pub fn from_json_text(text: &str) -> LintCache {
        let Ok(v) = serde_json::from_str::<Value>(text) else {
            return LintCache::default();
        };
        if v.get("version").and_then(|x| x.as_u64()) != Some(CACHE_VERSION) {
            return LintCache::default();
        }
        let mut cache = LintCache::default();
        for e in v
            .get("entries")
            .and_then(|x| x.as_array())
            .map(Vec::as_slice)
            .unwrap_or_default()
        {
            if let Some(s) = FileSummary::from_value(e) {
                cache.entries.insert(s.path.clone(), s);
            }
        }
        cache
    }

    /// Loads from disk; any failure degrades to an empty cache.
    pub fn load(path: &Path) -> LintCache {
        match std::fs::read_to_string(path) {
            Ok(text) => LintCache::from_json_text(&text),
            Err(_) => LintCache::default(),
        }
    }

    /// Persists to disk (creating parent directories).
    pub fn save(&self, path: &Path) -> io::Result<()> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        let text = serde_json::to_string_pretty(&self.to_json())
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        std::fs::write(path, text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::summary::Facts;

    fn summary(path: &str, hash: u64) -> FileSummary {
        FileSummary {
            path: path.into(),
            hash,
            lex_error: None,
            findings: vec![],
            suppressions: vec![],
            facts: Facts::default(),
        }
    }

    #[test]
    fn hash_is_stable_and_content_sensitive() {
        assert_eq!(content_hash("fn f() {}"), content_hash("fn f() {}"));
        assert_ne!(content_hash("fn f() {}"), content_hash("fn g() {}"));
        // Known FNV-1a 64 vector.
        assert_eq!(content_hash(""), 0xcbf2_9ce4_8422_2325);
    }

    #[test]
    fn lookup_requires_matching_hash() {
        let mut c = LintCache::default();
        c.store(summary("a.rs", 42));
        assert!(c.lookup("a.rs", 42).is_some());
        assert!(c.lookup("a.rs", 43).is_none(), "stale hash is a miss");
        assert!(c.lookup("b.rs", 42).is_none());
    }

    #[test]
    fn round_trips_through_text() {
        let mut c = LintCache::default();
        c.store(summary("a.rs", 1));
        c.store(summary("b.rs", 2));
        let text = serde_json::to_string(&c.to_json()).unwrap();
        let back = LintCache::from_json_text(&text);
        assert_eq!(back.len(), 2);
        assert!(back.lookup("a.rs", 1).is_some());
    }

    #[test]
    fn wrong_version_or_garbage_degrades_to_empty() {
        assert!(LintCache::from_json_text("{\"version\": 999, \"entries\": []}").is_empty());
        assert!(LintCache::from_json_text("not json").is_empty());
        assert!(LintCache::from_json_text("{}").is_empty());
    }
}
