//! Inline suppression directives.
//!
//! A finding is silenced by a comment of the form
//!
//! ```text
//! // dblayout::allow(R3, reason = "exact bit-zero filter; NaN rejected above")
//! ```
//!
//! A trailing comment suppresses its own line; a standalone comment
//! suppresses the next line. The reason is **mandatory** — a directive
//! without one (or naming an unknown rule) is itself reported as an error,
//! so suppressions stay auditable.

use crate::lexer::Comment;
use crate::rules::RULE_IDS;

/// One parsed `dblayout::allow(...)` directive.
#[derive(Debug, Clone, PartialEq)]
pub struct Suppression {
    /// Uppercased rule id (`R1`..`R10`).
    pub rule: String,
    /// The mandatory justification (empty when malformed; see `error`).
    pub reason: String,
    /// 1-based line of the directive comment.
    pub line: u32,
    /// The line the directive silences.
    pub effective_line: u32,
    /// Set when the directive is malformed; reported as an error diagnostic.
    pub error: Option<String>,
}

impl Suppression {
    /// Whether this (well-formed) directive silences `rule` at `line`.
    pub fn covers(&self, rule: &str, line: u32) -> bool {
        self.error.is_none() && self.rule == rule && self.effective_line == line
    }
}

/// Extracts every suppression directive from a file's comments.
pub fn parse_suppressions(comments: &[Comment]) -> Vec<Suppression> {
    comments
        .iter()
        .filter_map(|c| {
            let directive = c.text.trim();
            let rest = directive.strip_prefix("dblayout::allow")?;
            let effective_line = if c.trailing { c.line } else { c.line + 1 };
            Some(parse_directive(rest, c.line, effective_line))
        })
        .collect()
}

fn parse_directive(rest: &str, line: u32, effective_line: u32) -> Suppression {
    let malformed = |msg: &str| Suppression {
        rule: String::new(),
        reason: String::new(),
        line,
        effective_line,
        error: Some(msg.to_string()),
    };
    let rest = rest.trim_start();
    let Some(inner) = rest
        .strip_prefix('(')
        .and_then(|r| r.trim_end().strip_suffix(')'))
    else {
        return malformed("expected `dblayout::allow(<rule>, reason = \"...\")`");
    };
    let (rule_part, reason_part) = match inner.split_once(',') {
        Some((r, rest)) => (r.trim(), Some(rest.trim())),
        None => (inner.trim(), None),
    };
    let rule = rule_part.to_ascii_uppercase();
    if !RULE_IDS.contains(&rule.as_str()) {
        return malformed(&format!(
            "unknown rule `{rule_part}` (known: {})",
            RULE_IDS.join(", ")
        ));
    }
    let Some(reason_part) = reason_part else {
        return malformed("suppression needs a reason: `reason = \"...\"`");
    };
    let Some(value) = reason_part
        .strip_prefix("reason")
        .map(|r| r.trim_start())
        .and_then(|r| r.strip_prefix('='))
        .map(|r| r.trim())
    else {
        return malformed("suppression needs a reason: `reason = \"...\"`");
    };
    let Some(reason) = value
        .strip_prefix('"')
        .and_then(|r| r.strip_suffix('"'))
        .map(str::trim)
    else {
        return malformed("reason must be a double-quoted string");
    };
    if reason.is_empty() {
        return malformed("reason must not be empty");
    }
    Suppression {
        rule,
        reason: reason.to_string(),
        line,
        effective_line,
        error: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse(src: &str) -> Vec<Suppression> {
        parse_suppressions(&lex(src).unwrap().comments)
    }

    #[test]
    fn standalone_covers_next_line() {
        let s = parse("// dblayout::allow(R3, reason = \"exact zero\")\nlet x = 1.0;\n");
        assert_eq!(s.len(), 1);
        assert!(s[0].error.is_none());
        assert!(s[0].covers("R3", 2));
        assert!(!s[0].covers("R3", 1));
        assert!(!s[0].covers("R1", 2));
        assert_eq!(s[0].reason, "exact zero");
    }

    #[test]
    fn trailing_covers_own_line() {
        let s = parse("let x = 1.0; // dblayout::allow(R3, reason = \"why\")\n");
        assert_eq!(s.len(), 1);
        assert!(s[0].covers("R3", 1));
    }

    #[test]
    fn missing_reason_is_an_error() {
        for bad in [
            "// dblayout::allow(R3)",
            "// dblayout::allow(R3, reason = \"\")",
            "// dblayout::allow(R3, because = \"x\")",
            "// dblayout::allow(R99, reason = \"x\")",
            "// dblayout::allow R3",
        ] {
            let s = parse(bad);
            assert_eq!(s.len(), 1, "{bad}");
            assert!(s[0].error.is_some(), "{bad}");
        }
    }

    #[test]
    fn rule_id_is_case_insensitive() {
        let s = parse("// dblayout::allow(r2, reason = \"test poisons on purpose\")");
        assert!(s[0].error.is_none());
        assert_eq!(s[0].rule, "R2");
    }

    #[test]
    fn unrelated_comments_are_ignored() {
        assert!(parse("// just a note about dblayout\n/* block */\n").is_empty());
    }
}
