//! Identifier-level table-name substitution.
//!
//! Figure 12's TPCH-88-N workloads are built by "randomly replac[ing] table
//! names in a query with one of the N copies of table names" (§7.2). A
//! plain string replace would corrupt columns (`part` inside `ps_partkey`),
//! so substitution happens on whole identifiers, skipping string literals
//! and comments.

use std::collections::HashMap;

/// Replaces every standalone identifier found in `map` (case-insensitive
/// keys, lowercased) with its mapped value. String literals pass through
/// untouched.
pub fn substitute_tables(sql: &str, map: &HashMap<String, String>) -> String {
    let bytes = sql.as_bytes();
    let mut out = String::with_capacity(sql.len() + 16);
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        if c == '\'' {
            // Copy the string literal verbatim (handling '' escapes).
            out.push(c);
            i += 1;
            while i < bytes.len() {
                let c = bytes[i] as char;
                out.push(c);
                i += 1;
                if c == '\'' {
                    if i < bytes.len() && bytes[i] as char == '\'' {
                        out.push('\'');
                        i += 1;
                    } else {
                        break;
                    }
                }
            }
        } else if c.is_ascii_alphabetic() || c == '_' {
            let start = i;
            while i < bytes.len()
                && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] as char == '_')
            {
                i += 1;
            }
            let ident = &sql[start..i];
            match map.get(&ident.to_ascii_lowercase()) {
                Some(repl) => out.push_str(repl),
                None => out.push_str(ident),
            }
        } else {
            out.push(c);
            i += 1;
        }
    }
    out
}

/// Builds a map renaming each `table` to `table{suffix}`.
pub fn suffix_map(tables: &[&str], suffix: &str) -> HashMap<String, String> {
    tables
        .iter()
        .map(|t| (t.to_ascii_lowercase(), format!("{t}{suffix}")))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replaces_whole_identifiers_only() {
        let map = suffix_map(&["part", "lineitem"], "_2");
        let out = substitute_tables(
            "SELECT ps_partkey FROM part, lineitem WHERE p_partkey = l_partkey",
            &map,
        );
        assert_eq!(
            out,
            "SELECT ps_partkey FROM part_2, lineitem_2 WHERE p_partkey = l_partkey"
        );
    }

    #[test]
    fn string_literals_untouched() {
        let map = suffix_map(&["part"], "_9");
        let out = substitute_tables(
            "SELECT * FROM part WHERE x = 'part' AND y = 'o''part'",
            &map,
        );
        assert_eq!(
            out,
            "SELECT * FROM part_9 WHERE x = 'part' AND y = 'o''part'"
        );
    }

    #[test]
    fn case_insensitive_match_preserves_replacement() {
        let map = suffix_map(&["orders"], "_1");
        let out = substitute_tables("SELECT * FROM Orders", &map);
        assert_eq!(out, "SELECT * FROM orders_1");
    }

    #[test]
    fn empty_map_is_identity() {
        let sql = "SELECT a FROM b WHERE c = 'd'";
        assert_eq!(substitute_tables(sql, &HashMap::new()), sql);
    }
}
