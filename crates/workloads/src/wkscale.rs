//! WK-SCALE(N): synthetic workloads of increasing size on TPCH1G
//! (paper Table 1: N = 100 to 3200 queries).

use crate::qgen;

/// The workload sizes the paper sweeps.
pub const WK_SCALE_SIZES: [usize; 6] = [100, 200, 400, 800, 1600, 3200];

/// WK-SCALE(N): `n` random TPC-H-schema queries, deterministic per size.
pub fn wk_scale(n: usize) -> Vec<String> {
    qgen::generate(n, 0x5CA1E + n as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_produce_requested_counts() {
        for &n in &WK_SCALE_SIZES[..3] {
            assert_eq!(wk_scale(n).len(), n);
        }
    }

    #[test]
    fn different_sizes_differ_beyond_prefix() {
        let a = wk_scale(100);
        let b = wk_scale(200);
        assert_ne!(a[..100], b[..100]);
    }
}
