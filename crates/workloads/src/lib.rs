#![warn(missing_docs)]

//! Workload generators for the paper's evaluation (Table 1).
//!
//! | Name        | #queries    | Source module |
//! |-------------|-------------|---------------|
//! | TPCH-22     | 22          | [`tpch22`] — the TPC-H benchmark queries in this workspace's SQL dialect |
//! | SALES-45    | 45          | [`sales45`] — multi-join analytics over the SALES-like catalog |
//! | APB-800     | 800         | [`apb800`] — star queries over the APB-like catalog |
//! | WK-SCALE(N) | 100..3200   | [`wkscale`] — synthetic TPC-H workloads of increasing size |
//! | WK-CTRL1    | 5           | [`wkctrl`] — two-table `COUNT(*)` joins touching almost all data |
//! | WK-CTRL2    | 10          | [`wkctrl`] — mixed single-/multi-table with simple aggregation |
//! | WK-DRIFT    | per-epoch   | [`wkctrl::wk_drift`] — time-varying epochs whose hot set migrates (continuous relayout) |
//! | WK-MEGA     | thousands   | [`wkmega`] — mega-scale: thousands of objects × 64–256 disks, Zipfian co-access (multilevel/pruned search) |
//!
//! Plus [`qgen`], the qgen-style random query generator behind WK-SCALE,
//! the 25-query synthetic validation workloads (§7.2), and the TPCH-88-N
//! workloads of Figure 12 ([`tpch22::tpch88_n`]).
//!
//! All generators except WK-MEGA emit SQL strings in the `dblayout-sql`
//! dialect and are deterministic for a given seed; [`parse_all`] turns
//! them into weighted statements ready for the advisor. WK-MEGA skips the
//! SQL round-trip and emits weighted sub-plan sets directly (planning
//! thousands of synthetic joins would dominate the very search-time
//! measurements the family exists for).

pub mod apb800;
pub mod qgen;
pub mod sales45;
pub mod subst;
pub mod tpch22;
pub mod wkctrl;
pub mod wkmega;
pub mod wkscale;

use dblayout_sql::{parse_statement, ParseError, Statement};

/// Parses a list of SQL strings into unit-weight statements.
///
/// # Errors
/// Returns the first parse failure with the offending query's index baked
/// into the message.
pub fn parse_all(queries: &[String]) -> Result<Vec<(Statement, f64)>, ParseError> {
    queries
        .iter()
        .enumerate()
        .map(|(i, q)| {
            parse_statement(q)
                .map(|s| (s, 1.0))
                .map_err(|e| ParseError::new(format!("query {i}: {}", e.message), e.line, e.column))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_all_reports_query_index() {
        let err = parse_all(&["SELECT 1".into(), "SELEC".into()]).unwrap_err();
        assert!(err.message.contains("query 1"));
    }

    #[test]
    fn parse_all_roundtrips() {
        let stmts = parse_all(&[
            "SELECT COUNT(*) FROM t".into(),
            "SELECT a FROM b WHERE c = 1".into(),
        ])
        .unwrap();
        assert_eq!(stmts.len(), 2);
        assert!(stmts.iter().all(|(_, w)| *w == 1.0));
    }
}
