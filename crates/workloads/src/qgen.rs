//! qgen-style random query generation over the TPC-H schema.
//!
//! Used for WK-SCALE(N) (Table 1), and for the "five synthetically
//! generated workloads with 25 queries each … with varying selection and
//! join conditions, Group By and Order By clauses" of the cost-model
//! validation experiment (§7.2). Queries pick a connected set of tables
//! along TPC-H's foreign-key graph, add randomized selections, and
//! optionally aggregate and order.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// FK join edges of the TPC-H schema: (table a, table b, join predicate).
const JOIN_EDGES: &[(&str, &str, &str)] = &[
    ("lineitem", "orders", "l_orderkey = o_orderkey"),
    ("lineitem", "part", "l_partkey = p_partkey"),
    ("lineitem", "supplier", "l_suppkey = s_suppkey"),
    (
        "lineitem",
        "partsupp",
        "l_partkey = ps_partkey AND l_suppkey = ps_suppkey",
    ),
    ("orders", "customer", "o_custkey = c_custkey"),
    ("partsupp", "part", "ps_partkey = p_partkey"),
    ("partsupp", "supplier", "ps_suppkey = s_suppkey"),
    ("customer", "nation", "c_nationkey = n_nationkey"),
    ("supplier", "nation", "s_nationkey = n_nationkey"),
    ("nation", "region", "n_regionkey = r_regionkey"),
];

/// Per-table pools of (filter template, group/order column).
fn selections(rng: &mut StdRng, table: &str) -> Option<String> {
    let year = rng.gen_range(1992..=1998);
    let date = format!("'{year}-0{}-01'", rng.gen_range(1..=9));
    let pick = rng.gen_range(0..3);
    let s = match table {
        "lineitem" => match pick {
            0 => format!("l_shipdate >= {date}"),
            1 => format!("l_quantity < {}", rng.gen_range(10..=45)),
            _ => format!(
                "l_discount BETWEEN 0.0{} AND 0.0{}",
                rng.gen_range(1..=4),
                rng.gen_range(5..=9)
            ),
        },
        "orders" => match pick {
            0 => format!("o_orderdate < {date}"),
            1 => format!("o_totalprice > {}", rng.gen_range(1000..=100_000)),
            _ => "o_orderstatus = 'F'".to_string(),
        },
        "customer" => match pick {
            0 => "c_mktsegment = 'BUILDING'".to_string(),
            1 => format!("c_acctbal > {}", rng.gen_range(0..=5000)),
            _ => return None,
        },
        "part" => match pick {
            0 => format!("p_size = {}", rng.gen_range(1..=50)),
            1 => "p_type LIKE '%BRASS'".to_string(),
            _ => return None,
        },
        "partsupp" => match pick {
            0 => format!("ps_availqty > {}", rng.gen_range(100..=5000)),
            _ => return None,
        },
        "supplier" => match pick {
            0 => format!("s_acctbal > {}", rng.gen_range(0..=5000)),
            _ => return None,
        },
        "nation" => match pick {
            0 => "n_name = 'GERMANY'".to_string(),
            _ => return None,
        },
        "region" => match pick {
            0 => "r_name = 'ASIA'".to_string(),
            _ => return None,
        },
        _ => return None,
    };
    Some(s)
}

fn group_column(table: &str) -> Option<&'static str> {
    match table {
        "lineitem" => Some("l_returnflag"),
        "orders" => Some("o_orderpriority"),
        "customer" => Some("c_mktsegment"),
        "part" => Some("p_brand"),
        "supplier" => Some("s_nationkey"),
        "nation" => Some("n_name"),
        _ => None,
    }
}

fn sum_column(table: &str) -> Option<&'static str> {
    match table {
        "lineitem" => Some("l_extendedprice"),
        "orders" => Some("o_totalprice"),
        "customer" => Some("c_acctbal"),
        "partsupp" => Some("ps_supplycost"),
        "supplier" => Some("s_acctbal"),
        _ => None,
    }
}

/// Generates one random TPC-H-schema query.
pub fn random_query(rng: &mut StdRng) -> String {
    // Random connected table set via a walk over the FK graph.
    let start = ["lineitem", "orders", "partsupp", "customer", "part"][rng.gen_range(0..5)];
    let mut tables = vec![start.to_string()];
    let mut join_preds: Vec<String> = Vec::new();
    let extra = rng.gen_range(0..=3);
    for _ in 0..extra {
        // Candidate edges touching exactly one already-included table.
        let candidates: Vec<&(&str, &str, &str)> = JOIN_EDGES
            .iter()
            .filter(|(a, b, _)| tables.iter().any(|t| t == a) != tables.iter().any(|t| t == b))
            .collect();
        if candidates.is_empty() {
            break;
        }
        let (a, b, on) = candidates[rng.gen_range(0..candidates.len())];
        let newcomer = if tables.iter().any(|t| t == a) { b } else { a };
        tables.push(newcomer.to_string());
        join_preds.push(on.to_string());
    }

    // Selections.
    let mut preds = join_preds;
    for t in &tables {
        if rng.gen_bool(0.6) {
            if let Some(p) = selections(rng, t) {
                preds.push(p);
            }
        }
    }

    // Aggregation shape.
    let group = if rng.gen_bool(0.5) {
        tables.iter().find_map(|t| group_column(t))
    } else {
        None
    };
    let agg = tables
        .iter()
        .find_map(|t| sum_column(t))
        .map(|c| format!("SUM({c})"))
        .unwrap_or_else(|| "COUNT(*)".to_string());

    let select = match group {
        Some(g) => format!("{g}, {agg} AS agg_val"),
        None => format!("{agg} AS agg_val"),
    };
    let mut sql = format!("SELECT {select} FROM {}", tables.join(", "));
    if !preds.is_empty() {
        sql.push_str(" WHERE ");
        sql.push_str(&preds.join(" AND "));
    }
    if let Some(g) = group {
        sql.push_str(&format!(" GROUP BY {g}"));
        if rng.gen_bool(0.5) {
            sql.push_str(&format!(" ORDER BY {g}"));
        }
    }
    sql
}

/// Generates `n` random queries, deterministic in `seed`.
pub fn generate(n: usize, seed: u64) -> Vec<String> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| random_query(&mut rng)).collect()
}

/// The five 25-query synthetic validation workloads of §7.2.
pub fn validation_workloads() -> Vec<Vec<String>> {
    (0..5).map(|i| generate(25, 1000 + i)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_all;
    use dblayout_catalog::tpch::tpch_catalog;
    use dblayout_planner::plan_statement;

    #[test]
    fn generated_queries_parse_and_plan() {
        let catalog = tpch_catalog(0.1);
        for (i, q) in generate(100, 7).iter().enumerate() {
            let stmts = parse_all(std::slice::from_ref(q))
                .unwrap_or_else(|e| panic!("query {i} `{q}`: {e}"));
            plan_statement(&catalog, &stmts[0].0)
                .unwrap_or_else(|e| panic!("query {i} `{q}`: {e}"));
        }
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(generate(20, 5), generate(20, 5));
        assert_ne!(generate(20, 5), generate(20, 6));
    }

    #[test]
    fn validation_workloads_shape() {
        let ws = validation_workloads();
        assert_eq!(ws.len(), 5);
        assert!(ws.iter().all(|w| w.len() == 25));
        // The five workloads differ.
        assert_ne!(ws[0], ws[1]);
    }

    #[test]
    fn queries_vary_in_join_count() {
        let table_count = |q: &str| {
            let from = q.split(" FROM ").nth(1).unwrap();
            let tables = from.split(" WHERE ").next().unwrap();
            let tables = tables.split(" GROUP BY ").next().unwrap();
            tables.split(',').count()
        };
        let qs = generate(200, 11);
        let singles = qs.iter().filter(|q| table_count(q) == 1).count();
        let multis = qs.iter().filter(|q| table_count(q) >= 2).count();
        assert!(
            singles > 0 && multis > 0,
            "{singles} singles, {multis} multis"
        );
    }
}
