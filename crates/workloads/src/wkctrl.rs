//! The controlled validation workloads WK-CTRL1 and WK-CTRL2 (paper §7.1),
//! plus the time-varying WK-DRIFT used by the continuous-relayout pipeline.
//!
//! "These workloads have a small number of queries; the queries have
//! count(*) aggregate and access almost all the table data, here lineitem,
//! orders, partsupp and part tables in TPC-H schema." WK-CTRL1 is five
//! two-table joins; WK-CTRL2 mixes single-table and multi-table queries.
//! [`wk_drift`] stretches the same controlled queries over epochs whose
//! hot set migrates from the lineitem⨝orders pair to the partsupp⨝part
//! pair, so a decayed access graph demonstrably walks away from an
//! advised snapshot.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// WK-CTRL1: five two-table joins over the big TPC-H tables.
///
/// Each pair joins along both tables' clustered keys, so the optimizer
/// produces *merge joins* that pipeline (co-access) the two scans — the
/// access pattern the control experiment is designed to stress. Pairs that
/// would hash-join (a blocking build) exercise no co-access and belong in
/// WK-CTRL2's mix instead.
pub fn wk_ctrl1() -> Vec<String> {
    vec![
        "SELECT COUNT(*) FROM lineitem, orders WHERE l_orderkey = o_orderkey".into(),
        "SELECT COUNT(*) FROM partsupp, part WHERE ps_partkey = p_partkey".into(),
        "SELECT COUNT(*), SUM(l_quantity) FROM lineitem, orders WHERE l_orderkey = o_orderkey"
            .into(),
        "SELECT COUNT(*), SUM(ps_availqty) FROM partsupp, part WHERE ps_partkey = p_partkey".into(),
        "SELECT SUM(l_extendedprice), SUM(o_totalprice) FROM lineitem, orders \
         WHERE l_orderkey = o_orderkey"
            .into(),
    ]
}

/// WK-CTRL2: ten queries mixing single-table scans with multi-table joins,
/// all with simple aggregation.
pub fn wk_ctrl2() -> Vec<String> {
    vec![
        "SELECT COUNT(*) FROM lineitem".into(),
        "SELECT COUNT(*) FROM orders".into(),
        "SELECT COUNT(*) FROM partsupp".into(),
        "SELECT COUNT(*) FROM part".into(),
        "SELECT COUNT(*), SUM(l_quantity) FROM lineitem, orders WHERE l_orderkey = o_orderkey"
            .into(),
        "SELECT COUNT(*), SUM(ps_availqty) FROM partsupp, part WHERE ps_partkey = p_partkey".into(),
        "SELECT COUNT(*) FROM lineitem, orders, customer \
         WHERE l_orderkey = o_orderkey AND o_custkey = c_custkey"
            .into(),
        "SELECT SUM(l_extendedprice) FROM lineitem".into(),
        "SELECT AVG(o_totalprice) FROM orders".into(),
        "SELECT COUNT(*) FROM lineitem, partsupp \
         WHERE l_partkey = ps_partkey AND l_suppkey = ps_suppkey"
            .into(),
    ]
}

/// Queries hot in WK-DRIFT's *early* epochs: the lineitem⨝orders pair.
fn drift_early_pool() -> Vec<String> {
    vec![
        "SELECT COUNT(*) FROM lineitem, orders WHERE l_orderkey = o_orderkey".into(),
        "SELECT COUNT(*), SUM(l_quantity) FROM lineitem, orders WHERE l_orderkey = o_orderkey"
            .into(),
        "SELECT SUM(l_extendedprice), SUM(o_totalprice) FROM lineitem, orders \
         WHERE l_orderkey = o_orderkey"
            .into(),
        "SELECT COUNT(*) FROM lineitem".into(),
    ]
}

/// Queries hot in WK-DRIFT's *late* epochs: the partsupp⨝part pair.
fn drift_late_pool() -> Vec<String> {
    vec![
        "SELECT COUNT(*) FROM partsupp, part WHERE ps_partkey = p_partkey".into(),
        "SELECT COUNT(*), SUM(ps_availqty) FROM partsupp, part WHERE ps_partkey = p_partkey".into(),
        "SELECT SUM(ps_supplycost) FROM partsupp, part WHERE ps_partkey = p_partkey".into(),
        "SELECT COUNT(*) FROM part".into(),
    ]
}

/// WK-DRIFT: `epochs` batches of `queries_per_epoch` controlled queries
/// whose hot set shifts over time — the time-varying knob behind the
/// continuous-relayout demo.
///
/// Epoch `e` draws each query from the late (partsupp⨝part) pool with
/// probability `e / (epochs − 1)` and from the early (lineitem⨝orders)
/// pool otherwise, so the first epoch is purely the early hot set, the
/// last purely the late one, and the transition is gradual in between.
/// Deterministic for a given `seed`.
pub fn wk_drift(epochs: usize, queries_per_epoch: usize, seed: u64) -> Vec<Vec<String>> {
    let early = drift_early_pool();
    let late = drift_late_pool();
    let mut rng = StdRng::seed_from_u64(seed);
    (0..epochs)
        .map(|e| {
            // Per-mille probability of drawing from the late pool.
            let late_permille = if epochs <= 1 {
                1000
            } else {
                (e * 1000) / (epochs - 1)
            };
            (0..queries_per_epoch)
                .map(|_| {
                    let pool = if rng.gen_range(0..1000) < late_permille {
                        &late
                    } else {
                        &early
                    };
                    pool[rng.gen_range(0..pool.len())].clone()
                })
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_all;
    use dblayout_catalog::tpch::tpch_catalog;
    use dblayout_planner::plan_statement;

    #[test]
    fn sizes_match_table1() {
        assert_eq!(wk_ctrl1().len(), 5);
        assert_eq!(wk_ctrl2().len(), 10);
    }

    #[test]
    fn all_plan() {
        let catalog = tpch_catalog(1.0);
        for q in wk_ctrl1().iter().chain(wk_ctrl2().iter()) {
            let stmts = parse_all(std::slice::from_ref(q)).unwrap();
            plan_statement(&catalog, &stmts[0].0).unwrap_or_else(|e| panic!("{q}: {e}"));
        }
    }

    #[test]
    fn drift_epochs_shift_the_hot_set() {
        let epochs = wk_drift(6, 12, 42);
        assert_eq!(epochs.len(), 6);
        assert!(epochs.iter().all(|e| e.len() == 12));
        // Epoch 0 is purely the early hot set, the last purely the late one.
        let early = drift_early_pool();
        let late = drift_late_pool();
        assert!(epochs[0].iter().all(|q| early.contains(q)));
        assert!(epochs[5].iter().all(|q| late.contains(q)));
        // Deterministic for a given seed; seed changes shuffle the middle.
        assert_eq!(epochs, wk_drift(6, 12, 42));
        assert_ne!(epochs, wk_drift(6, 12, 43));
    }

    #[test]
    fn drift_queries_all_plan() {
        let catalog = tpch_catalog(1.0);
        for epoch in wk_drift(4, 6, 7) {
            for q in &epoch {
                let stmts = parse_all(std::slice::from_ref(q)).unwrap();
                plan_statement(&catalog, &stmts[0].0).unwrap_or_else(|e| panic!("{q}: {e}"));
            }
        }
    }

    #[test]
    fn ctrl1_queries_access_nearly_all_data() {
        // Each join must read (close to) the full size of both tables.
        let catalog = tpch_catalog(0.1);
        let stmts = parse_all(&wk_ctrl1()).unwrap();
        let plan = plan_statement(&catalog, &stmts[0].0).unwrap();
        let li = catalog.object_id("lineitem").unwrap();
        let full = catalog.table("lineitem").unwrap().size_blocks();
        assert!(plan.total_blocks_of(li) >= full * 9 / 10);
    }
}
