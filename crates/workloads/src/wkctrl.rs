//! The controlled validation workloads WK-CTRL1 and WK-CTRL2 (paper §7.1).
//!
//! "These workloads have a small number of queries; the queries have
//! count(*) aggregate and access almost all the table data, here lineitem,
//! orders, partsupp and part tables in TPC-H schema." WK-CTRL1 is five
//! two-table joins; WK-CTRL2 mixes single-table and multi-table queries.

/// WK-CTRL1: five two-table joins over the big TPC-H tables.
///
/// Each pair joins along both tables' clustered keys, so the optimizer
/// produces *merge joins* that pipeline (co-access) the two scans — the
/// access pattern the control experiment is designed to stress. Pairs that
/// would hash-join (a blocking build) exercise no co-access and belong in
/// WK-CTRL2's mix instead.
pub fn wk_ctrl1() -> Vec<String> {
    vec![
        "SELECT COUNT(*) FROM lineitem, orders WHERE l_orderkey = o_orderkey".into(),
        "SELECT COUNT(*) FROM partsupp, part WHERE ps_partkey = p_partkey".into(),
        "SELECT COUNT(*), SUM(l_quantity) FROM lineitem, orders WHERE l_orderkey = o_orderkey"
            .into(),
        "SELECT COUNT(*), SUM(ps_availqty) FROM partsupp, part WHERE ps_partkey = p_partkey".into(),
        "SELECT SUM(l_extendedprice), SUM(o_totalprice) FROM lineitem, orders \
         WHERE l_orderkey = o_orderkey"
            .into(),
    ]
}

/// WK-CTRL2: ten queries mixing single-table scans with multi-table joins,
/// all with simple aggregation.
pub fn wk_ctrl2() -> Vec<String> {
    vec![
        "SELECT COUNT(*) FROM lineitem".into(),
        "SELECT COUNT(*) FROM orders".into(),
        "SELECT COUNT(*) FROM partsupp".into(),
        "SELECT COUNT(*) FROM part".into(),
        "SELECT COUNT(*), SUM(l_quantity) FROM lineitem, orders WHERE l_orderkey = o_orderkey"
            .into(),
        "SELECT COUNT(*), SUM(ps_availqty) FROM partsupp, part WHERE ps_partkey = p_partkey".into(),
        "SELECT COUNT(*) FROM lineitem, orders, customer \
         WHERE l_orderkey = o_orderkey AND o_custkey = c_custkey"
            .into(),
        "SELECT SUM(l_extendedprice) FROM lineitem".into(),
        "SELECT AVG(o_totalprice) FROM orders".into(),
        "SELECT COUNT(*) FROM lineitem, partsupp \
         WHERE l_partkey = ps_partkey AND l_suppkey = ps_suppkey"
            .into(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_all;
    use dblayout_catalog::tpch::tpch_catalog;
    use dblayout_planner::plan_statement;

    #[test]
    fn sizes_match_table1() {
        assert_eq!(wk_ctrl1().len(), 5);
        assert_eq!(wk_ctrl2().len(), 10);
    }

    #[test]
    fn all_plan() {
        let catalog = tpch_catalog(1.0);
        for q in wk_ctrl1().iter().chain(wk_ctrl2().iter()) {
            let stmts = parse_all(std::slice::from_ref(q)).unwrap();
            plan_statement(&catalog, &stmts[0].0).unwrap_or_else(|e| panic!("{q}: {e}"));
        }
    }

    #[test]
    fn ctrl1_queries_access_nearly_all_data() {
        // Each join must read (close to) the full size of both tables.
        let catalog = tpch_catalog(0.1);
        let stmts = parse_all(&wk_ctrl1()).unwrap();
        let plan = plan_statement(&catalog, &stmts[0].0).unwrap();
        let li = catalog.object_id("lineitem").unwrap();
        let full = catalog.table("lineitem").unwrap().size_blocks();
        assert!(plan.total_blocks_of(li) >= full * 9 / 10);
    }
}
