//! The 22 TPC-H benchmark queries, expressed in the workspace SQL dialect.
//!
//! Queries follow the TPC-H specification's access structure (which tables
//! join with which, on which keys, under which selections) with the spec's
//! default substitution parameters. Three queries are flattened because the
//! dialect has no derived tables or views — the rewrites preserve the base
//! object access patterns, which is all the layout advisor consumes:
//!
//! * Q7/Q8/Q9's inline views are inlined into their outer joins;
//! * Q13's derived table becomes the inner aggregation query;
//! * Q15's `revenue` view becomes a `TOP 1 … ORDER BY revenue DESC`.

use crate::subst::{substitute_tables, suffix_map};

/// TPC-H table names, for substitution maps.
pub const TPCH_TABLES: [&str; 8] = [
    "region", "nation", "supplier", "customer", "part", "partsupp", "orders", "lineitem",
];

/// The full 22-query workload (the paper's TPCH-22).
pub fn tpch22() -> Vec<String> {
    (1..=22).map(tpch_query).collect()
}

/// TPCH-22 against the TPCH1G-N copy with suffix `_i` (tables renamed
/// `lineitem_i` etc.).
pub fn tpch22_with_suffix(i: usize) -> Vec<String> {
    let map = suffix_map(&TPCH_TABLES, &format!("_{i}"));
    tpch22()
        .into_iter()
        .map(|q| substitute_tables(&q, &map))
        .collect()
}

/// The TPCH-88-N workloads of Figure 12: 88 queries (four passes over the
/// 22 templates), each with its table names replaced by a randomly chosen
/// copy out of `n` (deterministic in `seed`).
pub fn tpch88_n(n: usize, seed: u64) -> Vec<String> {
    assert!(n >= 1);
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
    let mut next = || {
        // xorshift64*
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        state.wrapping_mul(0x2545_F491_4F6C_DD1D)
    };
    let mut out = Vec::with_capacity(88);
    for pass in 0..4 {
        for q in 1..=22 {
            let copy = (next() as usize % n) + 1;
            let map = suffix_map(&TPCH_TABLES, &format!("_{copy}"));
            let _ = pass;
            out.push(substitute_tables(&tpch_query(q), &map));
        }
    }
    out
}

/// One TPC-H query by number (1-22).
///
/// # Panics
/// Panics if `n` is outside 1..=22.
pub fn tpch_query(n: usize) -> String {
    let q = match n {
        1 => {
            "SELECT l_returnflag, l_linestatus, SUM(l_quantity) AS sum_qty, \
             SUM(l_extendedprice) AS sum_base_price, \
             SUM(l_extendedprice * (1 - l_discount)) AS sum_disc_price, \
             AVG(l_quantity) AS avg_qty, COUNT(*) AS count_order \
             FROM lineitem \
             WHERE l_shipdate <= '1998-09-02' \
             GROUP BY l_returnflag, l_linestatus \
             ORDER BY l_returnflag, l_linestatus"
        }
        2 => {
            "SELECT TOP 100 s_acctbal, s_name, n_name, p_partkey, p_mfgr, s_address, s_phone \
             FROM part, supplier, partsupp, nation, region \
             WHERE p_partkey = ps_partkey AND s_suppkey = ps_suppkey \
             AND p_size = 15 AND p_type LIKE '%BRASS' \
             AND s_nationkey = n_nationkey AND n_regionkey = r_regionkey \
             AND r_name = 'EUROPE' \
             AND ps_supplycost = (SELECT MIN(ps_supplycost) \
                 FROM partsupp, supplier, nation, region \
                 WHERE p_partkey = ps_partkey AND s_suppkey = ps_suppkey \
                 AND s_nationkey = n_nationkey AND n_regionkey = r_regionkey \
                 AND r_name = 'EUROPE') \
             ORDER BY s_acctbal DESC, n_name, s_name, p_partkey"
        }
        3 => {
            "SELECT TOP 10 l_orderkey, SUM(l_extendedprice * (1 - l_discount)) AS revenue, \
             o_orderdate, o_shippriority \
             FROM customer, orders, lineitem \
             WHERE c_mktsegment = 'BUILDING' AND c_custkey = o_custkey \
             AND l_orderkey = o_orderkey \
             AND o_orderdate < '1995-03-15' AND l_shipdate > '1995-03-15' \
             GROUP BY l_orderkey, o_orderdate, o_shippriority \
             ORDER BY revenue DESC, o_orderdate"
        }
        4 => {
            "SELECT o_orderpriority, COUNT(*) AS order_count \
             FROM orders \
             WHERE o_orderdate >= '1993-07-01' AND o_orderdate < '1993-10-01' \
             AND EXISTS (SELECT * FROM lineitem \
                 WHERE l_orderkey = o_orderkey AND l_commitdate < l_receiptdate) \
             GROUP BY o_orderpriority \
             ORDER BY o_orderpriority"
        }
        5 => {
            "SELECT n_name, SUM(l_extendedprice * (1 - l_discount)) AS revenue \
             FROM customer, orders, lineitem, supplier, nation, region \
             WHERE c_custkey = o_custkey AND l_orderkey = o_orderkey \
             AND l_suppkey = s_suppkey AND c_nationkey = s_nationkey \
             AND s_nationkey = n_nationkey AND n_regionkey = r_regionkey \
             AND r_name = 'ASIA' \
             AND o_orderdate >= '1994-01-01' AND o_orderdate < '1995-01-01' \
             GROUP BY n_name \
             ORDER BY revenue DESC"
        }
        6 => {
            "SELECT SUM(l_extendedprice * l_discount) AS revenue \
             FROM lineitem \
             WHERE l_shipdate >= '1994-01-01' AND l_shipdate < '1995-01-01' \
             AND l_discount BETWEEN 0.05 AND 0.07 AND l_quantity < 24"
        }
        7 => {
            "SELECT n1.n_name AS supp_nation, n2.n_name AS cust_nation, \
             SUM(l_extendedprice * (1 - l_discount)) AS revenue \
             FROM supplier, lineitem, orders, customer, nation n1, nation n2 \
             WHERE s_suppkey = l_suppkey AND o_orderkey = l_orderkey \
             AND c_custkey = o_custkey \
             AND s_nationkey = n1.n_nationkey AND c_nationkey = n2.n_nationkey \
             AND (n1.n_name = 'FRANCE' AND n2.n_name = 'GERMANY' \
                  OR n1.n_name = 'GERMANY' AND n2.n_name = 'FRANCE') \
             AND l_shipdate BETWEEN '1995-01-01' AND '1996-12-31' \
             GROUP BY n1.n_name, n2.n_name \
             ORDER BY supp_nation, cust_nation"
        }
        8 => {
            "SELECT SUM(l_extendedprice * (1 - l_discount)) AS mkt_share \
             FROM part, supplier, lineitem, orders, customer, nation n1, nation n2, region \
             WHERE p_partkey = l_partkey AND s_suppkey = l_suppkey \
             AND l_orderkey = o_orderkey AND o_custkey = c_custkey \
             AND c_nationkey = n1.n_nationkey AND n1.n_regionkey = r_regionkey \
             AND r_name = 'AMERICA' AND s_nationkey = n2.n_nationkey \
             AND o_orderdate BETWEEN '1995-01-01' AND '1996-12-31' \
             AND p_type = 'ECONOMY ANODIZED STEEL'"
        }
        9 => {
            "SELECT n_name, SUM(l_extendedprice * (1 - l_discount) - ps_supplycost * l_quantity) AS sum_profit \
             FROM part, supplier, lineitem, partsupp, orders, nation \
             WHERE s_suppkey = l_suppkey AND ps_suppkey = l_suppkey \
             AND ps_partkey = l_partkey AND p_partkey = l_partkey \
             AND o_orderkey = l_orderkey AND s_nationkey = n_nationkey \
             AND p_name LIKE '%green%' \
             GROUP BY n_name \
             ORDER BY n_name"
        }
        10 => {
            "SELECT TOP 20 c_custkey, c_name, SUM(l_extendedprice * (1 - l_discount)) AS revenue, \
             c_acctbal, n_name, c_address, c_phone \
             FROM customer, orders, lineitem, nation \
             WHERE c_custkey = o_custkey AND l_orderkey = o_orderkey \
             AND o_orderdate >= '1993-10-01' AND o_orderdate < '1994-01-01' \
             AND l_returnflag = 'R' AND c_nationkey = n_nationkey \
             GROUP BY c_custkey, c_name, c_acctbal, c_phone, n_name, c_address \
             ORDER BY revenue DESC"
        }
        11 => {
            "SELECT ps_partkey, SUM(ps_supplycost * ps_availqty) AS value \
             FROM partsupp, supplier, nation \
             WHERE ps_suppkey = s_suppkey AND s_nationkey = n_nationkey \
             AND n_name = 'GERMANY' \
             GROUP BY ps_partkey \
             HAVING SUM(ps_supplycost * ps_availqty) > (SELECT SUM(ps_supplycost * ps_availqty) * 0.0001 \
                 FROM partsupp, supplier, nation \
                 WHERE ps_suppkey = s_suppkey AND s_nationkey = n_nationkey \
                 AND n_name = 'GERMANY') \
             ORDER BY value DESC"
        }
        12 => {
            "SELECT l_shipmode, \
             SUM(CASE WHEN o_orderpriority = '1-URGENT' OR o_orderpriority = '2-HIGH' THEN 1 ELSE 0 END) AS high_line_count, \
             SUM(CASE WHEN o_orderpriority <> '1-URGENT' AND o_orderpriority <> '2-HIGH' THEN 1 ELSE 0 END) AS low_line_count \
             FROM orders, lineitem \
             WHERE o_orderkey = l_orderkey AND l_shipmode IN ('MAIL', 'SHIP') \
             AND l_commitdate < l_receiptdate AND l_shipdate < l_commitdate \
             AND l_receiptdate >= '1994-01-01' AND l_receiptdate < '1995-01-01' \
             GROUP BY l_shipmode \
             ORDER BY l_shipmode"
        }
        13 => {
            "SELECT c_custkey, COUNT(*) AS c_count \
             FROM customer LEFT OUTER JOIN orders \
             ON c_custkey = o_custkey AND o_comment NOT LIKE '%special%requests%' \
             GROUP BY c_custkey \
             ORDER BY c_count DESC"
        }
        14 => {
            "SELECT SUM(CASE WHEN p_type LIKE 'PROMO%' THEN l_extendedprice * (1 - l_discount) ELSE 0 END) \
             / SUM(l_extendedprice * (1 - l_discount)) AS promo_revenue \
             FROM lineitem, part \
             WHERE l_partkey = p_partkey \
             AND l_shipdate >= '1995-09-01' AND l_shipdate < '1995-10-01'"
        }
        15 => {
            "SELECT TOP 1 s_suppkey, s_name, s_address, s_phone, \
             SUM(l_extendedprice * (1 - l_discount)) AS total_revenue \
             FROM supplier, lineitem \
             WHERE s_suppkey = l_suppkey \
             AND l_shipdate >= '1996-01-01' AND l_shipdate < '1996-04-01' \
             GROUP BY s_suppkey, s_name, s_address, s_phone \
             ORDER BY total_revenue DESC"
        }
        16 => {
            "SELECT p_brand, p_type, p_size, COUNT(DISTINCT ps_suppkey) AS supplier_cnt \
             FROM partsupp, part \
             WHERE p_partkey = ps_partkey AND p_brand <> 'Brand#45' \
             AND p_type NOT LIKE 'MEDIUM POLISHED%' \
             AND p_size IN (49, 14, 23, 45, 19, 3, 36, 9) \
             AND ps_suppkey NOT IN (SELECT s_suppkey FROM supplier \
                 WHERE s_comment LIKE '%Customer%Complaints%') \
             GROUP BY p_brand, p_type, p_size \
             ORDER BY supplier_cnt DESC, p_brand"
        }
        17 => {
            "SELECT SUM(l_extendedprice) / 7 AS avg_yearly \
             FROM lineitem, part \
             WHERE p_partkey = l_partkey AND p_brand = 'Brand#23' \
             AND p_container = 'MED BOX' \
             AND l_quantity < (SELECT AVG(l2.l_quantity) * 0.2 FROM lineitem l2 \
                 WHERE l2.l_partkey = p_partkey)"
        }
        18 => {
            "SELECT TOP 100 c_name, c_custkey, o_orderkey, o_orderdate, o_totalprice, \
             SUM(l_quantity) AS total_qty \
             FROM customer, orders, lineitem \
             WHERE o_orderkey IN (SELECT l_orderkey FROM lineitem \
                 GROUP BY l_orderkey HAVING SUM(l_quantity) > 300) \
             AND c_custkey = o_custkey AND o_orderkey = l_orderkey \
             GROUP BY c_name, c_custkey, o_orderkey, o_orderdate, o_totalprice \
             ORDER BY o_totalprice DESC, o_orderdate"
        }
        19 => {
            "SELECT SUM(l_extendedprice * (1 - l_discount)) AS revenue \
             FROM lineitem, part \
             WHERE p_partkey = l_partkey \
             AND (p_brand = 'Brand#12' AND p_container IN ('SM CASE', 'SM BOX', 'SM PACK', 'SM PKG') \
                  AND l_quantity BETWEEN 1 AND 11 \
                  OR p_brand = 'Brand#23' AND p_container IN ('MED BAG', 'MED BOX', 'MED PKG', 'MED PACK') \
                  AND l_quantity BETWEEN 10 AND 20 \
                  OR p_brand = 'Brand#34' AND p_container IN ('LG CASE', 'LG BOX', 'LG PACK', 'LG PKG') \
                  AND l_quantity BETWEEN 20 AND 30)"
        }
        20 => {
            "SELECT s_name, s_address \
             FROM supplier, nation \
             WHERE s_suppkey IN (SELECT ps_suppkey FROM partsupp \
                 WHERE ps_partkey IN (SELECT p_partkey FROM part WHERE p_name LIKE 'forest%') \
                 AND ps_availqty > (SELECT SUM(l_quantity) * 0.5 FROM lineitem \
                     WHERE l_partkey = ps_partkey AND l_suppkey = ps_suppkey \
                     AND l_shipdate >= '1994-01-01' AND l_shipdate < '1995-01-01')) \
             AND s_nationkey = n_nationkey AND n_name = 'CANADA' \
             ORDER BY s_name"
        }
        21 => {
            "SELECT TOP 100 s_name, COUNT(*) AS numwait \
             FROM supplier, lineitem l1, orders, nation \
             WHERE s_suppkey = l1.l_suppkey AND o_orderkey = l1.l_orderkey \
             AND o_orderstatus = 'F' AND l1.l_receiptdate > l1.l_commitdate \
             AND EXISTS (SELECT * FROM lineitem l2 \
                 WHERE l2.l_orderkey = l1.l_orderkey AND l2.l_suppkey <> l1.l_suppkey) \
             AND NOT EXISTS (SELECT * FROM lineitem l3 \
                 WHERE l3.l_orderkey = l1.l_orderkey AND l3.l_suppkey <> l1.l_suppkey \
                 AND l3.l_receiptdate > l3.l_commitdate) \
             AND s_nationkey = n_nationkey AND n_name = 'SAUDI ARABIA' \
             GROUP BY s_name \
             ORDER BY numwait DESC"
        }
        22 => {
            "SELECT c_phone, COUNT(*) AS numcust, SUM(c_acctbal) AS totacctbal \
             FROM customer \
             WHERE SUBSTRING(c_phone FROM 1 FOR 2) IN ('13', '31', '23', '29', '30', '18', '17') \
             AND c_acctbal > (SELECT AVG(c2.c_acctbal) FROM customer c2 WHERE c2.c_acctbal > 0.00) \
             AND NOT EXISTS (SELECT * FROM orders WHERE o_custkey = c_custkey) \
             GROUP BY c_phone \
             ORDER BY c_phone"
        }
        other => panic!("TPC-H has queries 1..=22, got {other}"),
    };
    q.to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_all;
    use dblayout_catalog::tpch::{replicate_tpch, tpch_catalog};
    use dblayout_planner::plan_statement;

    #[test]
    fn all_22_parse() {
        let stmts = parse_all(&tpch22()).unwrap();
        assert_eq!(stmts.len(), 22);
    }

    #[test]
    fn all_22_plan_against_tpch_catalog() {
        let catalog = tpch_catalog(1.0);
        for (i, (stmt, _)) in parse_all(&tpch22()).unwrap().iter().enumerate() {
            plan_statement(&catalog, stmt)
                .unwrap_or_else(|e| panic!("Q{} failed to plan: {e}", i + 1));
        }
    }

    #[test]
    fn q3_and_q10_coaccess_lineitem_orders() {
        // The paper's Example 1 queries: both must merge-join lineitem with
        // orders in one pipeline.
        let catalog = tpch_catalog(1.0);
        for qn in [3usize, 10] {
            let stmts = parse_all(&[tpch_query(qn)]).unwrap();
            let plan = plan_statement(&catalog, &stmts[0].0).unwrap();
            let li = catalog.object_id("lineitem").unwrap();
            let or = catalog.object_id("orders").unwrap();
            let together = plan
                .subplans()
                .iter()
                .any(|s| s.objects().contains(&li) && s.objects().contains(&or));
            assert!(together, "Q{qn} must co-access lineitem and orders");
        }
    }

    #[test]
    fn suffixed_queries_plan_against_replicated_catalog() {
        let catalog = replicate_tpch(0.1, 2);
        for (i, (stmt, _)) in parse_all(&tpch22_with_suffix(2))
            .unwrap()
            .iter()
            .enumerate()
        {
            plan_statement(&catalog, stmt)
                .unwrap_or_else(|e| panic!("suffixed Q{} failed: {e}", i + 1));
        }
    }

    #[test]
    fn tpch88_has_88_queries_referencing_all_copies() {
        let qs = tpch88_n(3, 42);
        assert_eq!(qs.len(), 88);
        for copy in 1..=3 {
            let tag = format!("lineitem_{copy}");
            assert!(
                qs.iter().any(|q| q.contains(&tag)),
                "no query references {tag}"
            );
        }
        // Deterministic.
        assert_eq!(tpch88_n(3, 42), tpch88_n(3, 42));
        assert_ne!(tpch88_n(3, 42), tpch88_n(3, 43));
    }

    #[test]
    fn tpch88_plans_against_replicated_catalog() {
        let catalog = replicate_tpch(0.05, 3);
        for (i, (stmt, _)) in parse_all(&tpch88_n(3, 7)).unwrap().iter().enumerate() {
            plan_statement(&catalog, stmt)
                .unwrap_or_else(|e| panic!("88-query workload item {i} failed: {e}"));
        }
    }

    #[test]
    #[should_panic(expected = "1..=22")]
    fn query_zero_panics() {
        tpch_query(0);
    }
}
