//! WK-MEGA: the mega-scale instance family — thousands of objects across
//! 64–256 disks with Zipfian popularity and community-structured
//! co-access.
//!
//! The paper's workloads top out at dozens of objects, where the O(n²) KL
//! pass and the full greedy-widening sweep are cheap. WK-MEGA generates
//! instances where they are the bottleneck, exercising the multilevel
//! partitioner (`dblayout-partition::multilevel`) and the pruned widening
//! path (`TsGreedyConfig::prune_width`). Statements are emitted directly
//! as non-blocking sub-plan sets (no SQL round-trip); feed them to
//! `dblayout_core::build_access_graph_subplans` and `ts_greedy`.
//!
//! Everything is a pure function of [`MegaConfig`]: sizes, disks, and the
//! statement stream derive from one seeded `StdRng`, statement weights
//! and block counts are integer-valued (so every downstream f64
//! accumulation is exact regardless of association order), and repeated
//! calls with the same config are `assert_eq!`-identical.

use dblayout_catalog::ObjectId;
use dblayout_disksim::{uniform_disks, DiskSpec};
use dblayout_planner::{AccessKind, ObjectAccess, Subplan};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Shape of one WK-MEGA instance.
#[derive(Debug, Clone)]
pub struct MegaConfig {
    /// Number of database objects (tables/indexes). Thousands, typically.
    pub objects: usize,
    /// Number of disks (64–256 for the mega family; any `>= 1` works).
    pub disks: usize,
    /// Number of statements in the workload.
    pub statements: usize,
    /// Zipf exponent for object popularity (0 = uniform; ~0.8 = the
    /// heavy-tailed shape frequent-itemset studies report for table hits).
    pub zipf_exponent: f64,
    /// Maximum objects co-accessed by one statement's sub-plan.
    pub max_fanout: usize,
    /// Percent (0–100) of co-access partners drawn from the anchor
    /// object's neighborhood instead of globally — produces the community
    /// structure real schemas have (hot join clusters).
    pub locality_pct: u32,
    /// RNG seed; every field of the instance derives from it.
    pub seed: u64,
}

impl Default for MegaConfig {
    fn default() -> Self {
        Self {
            objects: 2000,
            disks: 64,
            statements: 3000,
            zipf_exponent: 0.8,
            max_fanout: 4,
            locality_pct: 70,
            seed: 0xE6A,
        }
    }
}

impl MegaConfig {
    /// A family member scaled to `objects` × `disks`, keeping the
    /// statement count proportional (1.5 statements per object) and the
    /// default skew/locality shape.
    pub fn scaled(objects: usize, disks: usize, seed: u64) -> Self {
        Self {
            objects,
            disks,
            statements: objects + objects / 2,
            seed,
            ..Self::default()
        }
    }
}

/// One generated WK-MEGA instance: object sizes, a homogeneous disk farm
/// with headroom for wide striping, and the weighted sub-plan workload.
#[derive(Debug, Clone, PartialEq)]
pub struct MegaInstance {
    /// `"wkmega-{objects}x{disks}-s{seed}"`.
    pub name: String,
    /// Object sizes in blocks (index = object id).
    pub sizes: Vec<u64>,
    /// The disk farm.
    pub disks: Vec<DiskSpec>,
    /// Weighted statements, each a set of non-blocking sub-plans.
    pub workload: Vec<(Vec<Subplan>, f64)>,
}

/// Generates the instance for `cfg`. Deterministic: same config, same
/// instance, bit for bit.
pub fn generate(cfg: &MegaConfig) -> MegaInstance {
    assert!(cfg.objects >= 2, "need at least two objects");
    assert!(cfg.disks >= 1, "need at least one disk");
    assert!(cfg.max_fanout >= 2, "co-access needs fanout >= 2");
    let mut rng = StdRng::seed_from_u64(cfg.seed);

    // Object sizes: a heavy-tailed ramp (rank-r object is ~r^-0.5 of the
    // biggest) plus uniform noise, all integer blocks.
    let n = cfg.objects;
    let mut sizes = Vec::with_capacity(n);
    for i in 0..n {
        let rank = (i + 1) as f64;
        let base = (20_000.0 / rank.sqrt()) as u64;
        sizes.push(base.max(16) + rng.gen_range(0..64));
    }

    // Disk farm: uniform spec with 4x headroom over perfectly balanced
    // usage, so wide striping and skewed layouts both stay feasible.
    let total_blocks: u64 = sizes.iter().sum();
    let capacity = (total_blocks / cfg.disks as u64 + 1) * 4;
    let disks = uniform_disks(cfg.disks, capacity, 8.0, 40.0);

    // Popularity: Zipf over object ids via an inverse-CDF table.
    let mut cumulative = Vec::with_capacity(n);
    let mut acc = 0.0f64;
    for i in 0..n {
        acc += ((i + 1) as f64).powf(-cfg.zipf_exponent);
        cumulative.push(acc);
    }
    let zipf_total = acc;
    let draw_object = move |rng: &mut StdRng| -> usize {
        let x = rng.gen_range(0.0..zipf_total);
        cumulative.partition_point(|&c| c <= x).min(n - 1)
    };

    // Statements: one non-blocking sub-plan each (occasionally two), with
    // a Zipfian anchor and mostly-local partners.
    let mut workload = Vec::with_capacity(cfg.statements);
    for _ in 0..cfg.statements {
        let weight = rng.gen_range(1..=5) as f64;
        let regions = if rng.gen_range(0..10) == 0 { 2 } else { 1 };
        let mut subplans = Vec::with_capacity(regions);
        for _ in 0..regions {
            let anchor = draw_object(&mut rng);
            let fanout = rng.gen_range(2..=cfg.max_fanout);
            let mut sub = Subplan::default();
            push_access(&mut sub, anchor, &sizes, &mut rng);
            for _ in 1..fanout {
                let partner = if rng.gen_range(0..100) < cfg.locality_pct {
                    // Neighborhood of the anchor: a ±24-id window.
                    let lo = anchor.saturating_sub(24);
                    let hi = (anchor + 25).min(n);
                    rng.gen_range(lo..hi)
                } else {
                    draw_object(&mut rng)
                };
                if partner != anchor {
                    push_access(&mut sub, partner, &sizes, &mut rng);
                }
            }
            if !sub.is_empty() {
                subplans.push(sub);
            }
        }
        workload.push((subplans, weight));
    }

    MegaInstance {
        name: format!("wkmega-{}x{}-s{}", cfg.objects, cfg.disks, cfg.seed),
        sizes,
        disks,
        workload,
    }
}

/// Adds one access of `object` to `sub`: an integer block count up to a
/// scan cap, mostly sequential reads with occasional random reads and
/// writes (`Subplan::add` merges duplicates per kind).
fn push_access(sub: &mut Subplan, object: usize, sizes: &[u64], rng: &mut StdRng) {
    let size = sizes[object];
    let blocks = rng.gen_range(1..=size.min(512));
    let kind = match rng.gen_range(0..10) {
        0 => AccessKind::Write,
        1 => AccessKind::RandomRead,
        _ => AccessKind::SequentialRead,
    };
    sub.add(ObjectAccess {
        object: ObjectId(object as u32),
        blocks,
        rows: blocks as f64,
        kind,
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> MegaConfig {
        MegaConfig::scaled(300, 16, 7)
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate(&small());
        let b = generate(&small());
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(&MegaConfig::scaled(300, 16, 7));
        let b = generate(&MegaConfig::scaled(300, 16, 8));
        assert_eq!(a.sizes.len(), b.sizes.len());
        assert_ne!(a.workload, b.workload);
    }

    #[test]
    fn instance_shape_matches_config() {
        let cfg = small();
        let inst = generate(&cfg);
        assert_eq!(inst.sizes.len(), cfg.objects);
        assert_eq!(inst.disks.len(), cfg.disks);
        assert_eq!(inst.workload.len(), cfg.statements);
        assert_eq!(inst.name, "wkmega-300x16-s7");
    }

    #[test]
    fn full_striping_is_feasible() {
        // Total capacity leaves headroom: even a perfectly balanced
        // layout uses at most a quarter of each disk.
        let inst = generate(&small());
        let total: u64 = inst.sizes.iter().sum();
        let capacity: u64 = inst.disks.iter().map(|d| d.capacity_blocks).sum();
        assert!(capacity >= 3 * total, "capacity {capacity} vs data {total}");
    }

    #[test]
    fn weights_and_blocks_are_integer_valued() {
        let inst = generate(&small());
        for (subplans, w) in &inst.workload {
            assert_eq!(w.fract(), 0.0);
            assert!(*w >= 1.0);
            for sub in subplans {
                for a in &sub.accesses {
                    assert!(a.blocks >= 1);
                }
            }
        }
    }

    #[test]
    fn popularity_is_skewed() {
        // The hottest 10% of objects should absorb well over their share
        // of accesses — the heavy tail the mega family exists to model.
        let inst = generate(&MegaConfig::scaled(500, 16, 3));
        let mut hits = vec![0u64; inst.sizes.len()];
        for (subplans, _) in &inst.workload {
            for sub in subplans {
                for a in &sub.accesses {
                    hits[a.object.index()] += 1;
                }
            }
        }
        let hot: u64 = hits[..50].iter().sum();
        let total: u64 = hits.iter().sum();
        assert!(
            hot * 4 > total,
            "hot-50 objects got {hot}/{total} accesses — not Zipfian enough"
        );
    }

    #[test]
    fn statements_coaccess_multiple_objects() {
        let inst = generate(&small());
        let multi = inst
            .workload
            .iter()
            .filter(|(subplans, _)| subplans.iter().any(|s| s.objects().len() >= 2))
            .count();
        assert!(multi * 10 > inst.workload.len() * 8, "co-access too rare");
    }
}
