//! APB-800: the 800-query OLAP workload over the APB-like catalog.
//!
//! The structural property the paper reports (§7.2) is that "no queries
//! co-access the two large tables": every query drills one fact table
//! joined with dimension/hierarchy tables. TS-GREEDY therefore recommends
//! the same layout as FULL STRIPING for this workload — the negative
//! control of Figure 10.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Dimension tables a fact query may join (column on the fact side).
const DIMS: &[(&str, &str)] = &[
    ("product_dim", "product_key"),
    ("customer_dim", "customer_key"),
    ("channel_dim", "channel_key"),
    ("time_dim", "time_key"),
];

/// Generates the APB-800 workload (800 queries, deterministic in `seed`).
pub fn apb800(seed: u64) -> Vec<String> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..800).map(|_| star_query(&mut rng)).collect()
}

fn star_query(rng: &mut StdRng) -> String {
    let fact = if rng.gen_bool(0.55) {
        "sales_fact"
    } else {
        "inventory_fact"
    };
    let n_dims = rng.gen_range(1..=3);
    let mut dims: Vec<&(&str, &str)> = Vec::new();
    let mut pool: Vec<&(&str, &str)> = DIMS.iter().collect();
    for _ in 0..n_dims {
        let i = rng.gen_range(0..pool.len());
        dims.push(pool.remove(i));
    }
    // Occasionally pull a hierarchy level table hanging off the first dim.
    let level = if rng.gen_bool(0.3) {
        Some(format!("level_{:02}", rng.gen_range(1..=34)))
    } else {
        None
    };

    let mut tables = vec![fact.to_string()];
    let mut preds: Vec<String> = Vec::new();
    for (dim, key) in &dims {
        tables.push(dim.to_string());
        preds.push(format!("{fact}.{key} = {dim}.key"));
    }
    if let Some(lv) = &level {
        let (dim, _) = dims[0];
        tables.push(lv.clone());
        preds.push(format!("{dim}.parent_key = {lv}.key"));
    }
    let lo = rng.gen_range(1..=20);
    preds.push(format!(
        "{fact}.time_key BETWEEN {lo} AND {}",
        lo + rng.gen_range(1..=4)
    ));

    let measure = if fact == "sales_fact" {
        "dollars"
    } else {
        "units"
    };
    let (gdim, _) = dims[0];
    format!(
        "SELECT {gdim}.label, SUM({fact}.{measure}) AS total FROM {} WHERE {} GROUP BY {gdim}.label ORDER BY total DESC",
        tables.join(", "),
        preds.join(" AND ")
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_all;
    use dblayout_catalog::apb::apb_catalog;
    use dblayout_planner::plan_statement;

    #[test]
    fn eight_hundred_queries() {
        assert_eq!(apb800(1).len(), 800);
    }

    #[test]
    fn never_coaccesses_both_facts() {
        for q in apb800(1) {
            let both = q.contains("sales_fact") && q.contains("inventory_fact");
            assert!(!both, "{q}");
        }
    }

    #[test]
    fn sample_plans_against_apb_catalog() {
        let catalog = apb_catalog();
        for (i, q) in apb800(1).iter().take(60).enumerate() {
            let stmts = parse_all(std::slice::from_ref(q)).unwrap();
            plan_statement(&catalog, &stmts[0].0)
                .unwrap_or_else(|e| panic!("query {i} `{q}`: {e}"));
        }
    }

    #[test]
    fn deterministic() {
        assert_eq!(apb800(9), apb800(9));
    }
}
