//! SALES-45: the 45-query analytics workload over the SALES-like catalog.
//!
//! Matches the paper's description (§7.1/§7.2): real-world sales analysis
//! where "the queries … reference 8 tables on average" and "the two largest
//! tables in the database [are] joined in almost all the queries".

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Mid-size tables joinable to `order_header` via `order_id`.
const ORDER_SATELLITES: &[&str] = &["shipment", "invoice", "payment"];

/// Generates the SALES-45 workload (45 queries, deterministic in `seed`).
pub fn sales45(seed: u64) -> Vec<String> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..45).map(|i| sales_query(&mut rng, i)).collect()
}

fn sales_query(rng: &mut StdRng, idx: usize) -> String {
    // ~42 of 45 queries join the two dominant tables.
    let core_join = idx % 15 != 14;
    let mut tables: Vec<String> = Vec::new();
    let mut preds: Vec<String> = Vec::new();

    if core_join {
        tables.push("order_header oh".into());
        tables.push("order_detail od".into());
        preds.push("od.order_id = oh.id".into());
    } else {
        tables.push("order_header oh".into());
    }

    // At most one satellite keyed off the order header; these merge into
    // the same order-ordered pipeline as the core join.
    if rng.gen_bool(0.3) {
        let sat = ORDER_SATELLITES[rng.gen_range(0..ORDER_SATELLITES.len())];
        tables.push(sat.to_string());
        preds.push(format!("{sat}.order_id = oh.id"));
    }
    // Product / account / contact lookups (FK joins preserve cardinality).
    if core_join && rng.gen_bool(0.6) {
        tables.push("product".into());
        preds.push("od.product_id = product.id".into());
    }
    if rng.gen_bool(0.6) {
        tables.push("account".into());
        preds.push("oh.account_id = account.id".into());
    }
    if rng.gen_bool(0.4) {
        tables.push("contact".into());
        preds.push("contact.account_id = oh.account_id".into());
    }
    // Small reference joins on the low-cardinality status code.
    for _ in 0..rng.gen_range(1..=3) {
        let r = rng.gen_range(1..=42);
        let rt = format!("ref_{r:02}");
        if tables.contains(&rt) {
            continue;
        }
        tables.push(rt.clone());
        preds.push(format!("oh.status_code = {rt}.id"));
    }

    // Weak time filter: analytics sweeps most of the history, keeping the
    // big merge join dominated by full scans (like the paper's DSS shape).
    let year = rng.gen_range(1998..=1999);
    preds.push(format!("oh.created >= '{year}-01-01'"));

    let measure = if core_join { "od.amount" } else { "oh.amount" };
    format!(
        "SELECT oh.status, SUM({measure}) AS total, COUNT(*) AS cnt FROM {} WHERE {} GROUP BY oh.status ORDER BY total DESC",
        tables.join(", "),
        preds.join(" AND ")
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_all;
    use dblayout_catalog::sales::sales_catalog;
    use dblayout_planner::plan_statement;

    #[test]
    fn forty_five_queries() {
        assert_eq!(sales45(1).len(), 45);
    }

    #[test]
    fn big_tables_joined_in_almost_all() {
        let qs = sales45(1);
        let with_both = qs
            .iter()
            .filter(|q| q.contains("order_header") && q.contains("order_detail"))
            .count();
        assert!(with_both >= 40, "only {with_both} of 45");
    }

    #[test]
    fn averages_several_tables_per_query() {
        let qs = sales45(1);
        let total_tables: usize = qs
            .iter()
            .map(|q| {
                let from = q.split(" FROM ").nth(1).unwrap();
                from.split(" WHERE ").next().unwrap().split(',').count()
            })
            .sum();
        let avg = total_tables as f64 / qs.len() as f64;
        assert!((4.0..9.0).contains(&avg), "avg tables/query = {avg}");
    }

    #[test]
    fn all_plan_against_sales_catalog() {
        let catalog = sales_catalog();
        for (i, q) in sales45(1).iter().enumerate() {
            let stmts = parse_all(std::slice::from_ref(q)).unwrap();
            plan_statement(&catalog, &stmts[0].0)
                .unwrap_or_else(|e| panic!("query {i} `{q}`: {e}"));
        }
    }

    #[test]
    fn deterministic() {
        assert_eq!(sales45(3), sales45(3));
    }
}
