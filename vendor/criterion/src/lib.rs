//! Minimal std-only stand-in for `criterion 0.5` (see `vendor/README.md`).
//!
//! Benchmarks run a short calibration phase, then a fixed measurement
//! budget, and report mean/min wall-clock time per iteration. No statistical
//! analysis or HTML reports; results are printed and collected on the
//! [`Criterion`] value (`results`) so harnesses can export them.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target wall-clock budget per benchmark's measurement phase.
const MEASURE_BUDGET: Duration = Duration::from_millis(400);
/// Target wall-clock budget for calibration.
const WARMUP_BUDGET: Duration = Duration::from_millis(100);

/// One finished benchmark measurement.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Full benchmark id (`group/function` style).
    pub id: String,
    /// Mean nanoseconds per iteration.
    pub mean_ns: f64,
    /// Fastest observed batch, in nanoseconds per iteration.
    pub min_ns: f64,
    /// Iterations measured.
    pub iterations: u64,
}

/// The benchmark driver (API subset of `criterion::Criterion`).
#[derive(Debug, Default)]
pub struct Criterion {
    /// All measurements taken so far (stand-in extension: upstream keeps
    /// these internal; harnesses here may export them as JSON).
    pub results: Vec<BenchResult>,
}

impl Criterion {
    /// Runs `routine` under the timing harness.
    pub fn bench_function<F>(&mut self, id: &str, routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let result = run_bench(id.to_string(), routine);
        report(&result);
        self.results.push(result);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.to_string(),
        }
    }

    /// Upstream parses CLI args here; the stand-in accepts and ignores them.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Prints a one-line summary of everything measured.
    pub fn final_summary(&self) {
        eprintln!(
            "(criterion stand-in: {} benchmarks measured)",
            self.results.len()
        );
    }
}

/// A benchmark group (API subset of `criterion::BenchmarkGroup`).
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Benchmarks `routine` with `input` under `id` within this group.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.0);
        let result = run_bench(full, |b| routine(b, input));
        report(&result);
        self.parent.results.push(result);
        self
    }

    /// Benchmarks `routine` under `id` within this group.
    pub fn bench_function<F>(&mut self, id: &str, routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        let result = run_bench(full, routine);
        report(&result);
        self.parent.results.push(result);
        self
    }

    /// Sample-size hint; the stand-in uses time budgets instead.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Ends the group (upstream finalizes reports here).
    pub fn finish(self) {}
}

/// Benchmark identifier (API subset of `criterion::BenchmarkId`).
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `group/parameter` naming.
    pub fn from_parameter<D: Display>(parameter: D) -> Self {
        BenchmarkId(parameter.to_string())
    }

    /// `function/parameter` naming.
    pub fn new<D: Display>(function: &str, parameter: D) -> Self {
        BenchmarkId(format!("{function}/{parameter}"))
    }
}

/// Timing handle passed to benchmark routines.
pub struct Bencher {
    iters_done: u64,
    elapsed: Duration,
    min_batch_ns: f64,
    batch: u64,
}

impl Bencher {
    /// Times repeated invocations of `routine`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let batch = self.batch.max(1);
        let start = Instant::now();
        for _ in 0..batch {
            black_box(routine());
        }
        let took = start.elapsed();
        self.iters_done += batch;
        self.elapsed += took;
        let per_iter = took.as_nanos() as f64 / batch as f64;
        if per_iter < self.min_batch_ns {
            self.min_batch_ns = per_iter;
        }
    }
}

fn run_bench<F>(id: String, mut routine: F) -> BenchResult
where
    F: FnMut(&mut Bencher),
{
    // Calibration: find a batch size that makes one call ≥ ~1ms, bounded by
    // the warmup budget.
    let mut bencher = Bencher {
        iters_done: 0,
        elapsed: Duration::ZERO,
        min_batch_ns: f64::INFINITY,
        batch: 1,
    };
    let warmup_start = Instant::now();
    loop {
        let before = bencher.elapsed;
        routine(&mut bencher);
        let took = bencher.elapsed - before;
        if warmup_start.elapsed() >= WARMUP_BUDGET {
            break;
        }
        if took < Duration::from_millis(1) {
            bencher.batch = (bencher.batch * 2).min(1 << 20);
        }
    }

    // Measurement: fresh counters, fixed wall-clock budget.
    let batch = bencher.batch;
    let mut bencher = Bencher {
        iters_done: 0,
        elapsed: Duration::ZERO,
        min_batch_ns: f64::INFINITY,
        batch,
    };
    let measure_start = Instant::now();
    while measure_start.elapsed() < MEASURE_BUDGET {
        routine(&mut bencher);
    }
    let iterations = bencher.iters_done.max(1);
    BenchResult {
        id,
        mean_ns: bencher.elapsed.as_nanos() as f64 / iterations as f64,
        min_ns: if bencher.min_batch_ns.is_finite() {
            bencher.min_batch_ns
        } else {
            0.0
        },
        iterations,
    }
}

fn report(result: &BenchResult) {
    eprintln!(
        "bench {:<48} mean {:>12} min {:>12} ({} iters)",
        result.id,
        fmt_ns(result.mean_ns),
        fmt_ns(result.min_ns),
        result.iterations
    );
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// Declares a benchmark group function (upstream-compatible shape).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Declares the benchmark `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench`/`cargo test` pass harness flags; accept and
            // ignore them. Under `cargo test` (`--test` present) skip the
            // timed run entirely so test runs stay fast.
            let args: Vec<String> = std::env::args().collect();
            if args.iter().any(|a| a == "--test") {
                eprintln!("(criterion stand-in: skipping benches in test mode)");
                return;
            }
            let mut c = $crate::Criterion::default();
            $($group(&mut c);)+
            c.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something() {
        let mut c = Criterion::default();
        c.bench_function("noop_add", |b| b.iter(|| black_box(1u64) + black_box(2)));
        assert_eq!(c.results.len(), 1);
        assert!(c.results[0].iterations > 0);
        assert!(c.results[0].mean_ns >= 0.0);
    }

    #[test]
    fn group_ids_compose() {
        let mut c = Criterion::default();
        {
            let mut g = c.benchmark_group("grp");
            g.bench_with_input(BenchmarkId::from_parameter(4), &4u64, |b, &n| {
                b.iter(|| black_box(n) * 2)
            });
            g.finish();
        }
        assert_eq!(c.results[0].id, "grp/4");
    }
}
