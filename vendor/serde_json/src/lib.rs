//! Minimal std-only stand-in for `serde_json 1` (see `vendor/README.md`).
//!
//! A complete JSON parser/printer over the serde stand-in's [`Content`]
//! data model. Object key order is preserved (insertion order), so output
//! is deterministic and byte-stable for identical inputs.

use std::fmt;

use serde::{Content, Deserialize, Serialize};

/// A parsed JSON value — alias of the serde stand-in's content tree.
pub type Value = Content;

/// Parse or encode failure.
#[derive(Debug, Clone, PartialEq)]
pub struct Error(String);

impl Error {
    /// Wraps a message as an error (used by the stand-in internals).
    pub fn msg(message: impl Into<String>) -> Self {
        Error(message.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error(e.0)
    }
}

// ---- Value helpers (subset of serde_json::Value's inherent methods,
// provided as free functions + an extension trait since `Value` is a type
// alias into the serde crate). ----

/// Inherent-style accessors for [`Value`].
pub trait ValueExt {
    /// Member lookup on objects, `None` otherwise.
    fn get(&self, key: &str) -> Option<&Value>;
    /// String payload.
    fn as_str(&self) -> Option<&str>;
    /// Lossy numeric payload.
    fn as_f64(&self) -> Option<f64>;
    /// Unsigned integer payload.
    fn as_u64(&self) -> Option<u64>;
    /// Boolean payload.
    fn as_bool(&self) -> Option<bool>;
    /// Array payload.
    fn as_array(&self) -> Option<&Vec<Value>>;
    /// Object payload (ordered key/value pairs).
    fn as_object(&self) -> Option<&Vec<(String, Value)>>;
}

impl ValueExt for Value {
    fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Content::Map(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            Content::Str(s) => Some(s),
            _ => None,
        }
    }

    fn as_f64(&self) -> Option<f64> {
        match self {
            Content::F64(v) => Some(*v),
            Content::I64(v) => Some(*v as f64),
            Content::U64(v) => Some(*v as f64),
            _ => None,
        }
    }

    fn as_u64(&self) -> Option<u64> {
        match self {
            Content::I64(v) if *v >= 0 => Some(*v as u64),
            Content::U64(v) => Some(*v),
            _ => None,
        }
    }

    fn as_bool(&self) -> Option<bool> {
        match self {
            Content::Bool(b) => Some(*b),
            _ => None,
        }
    }

    fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Content::Seq(items) => Some(items),
            _ => None,
        }
    }

    fn as_object(&self) -> Option<&Vec<(String, Value)>> {
        match self {
            Content::Map(entries) => Some(entries),
            _ => None,
        }
    }
}

// ---- Encoding ----

/// Compact JSON text for any serializable value.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_content(), None, 0);
    Ok(out)
}

/// Pretty JSON text (2-space indent, serde_json style).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_content(), Some(2), 0);
    Ok(out)
}

fn write_value(out: &mut String, v: &Content, indent: Option<usize>, level: usize) {
    match v {
        Content::Null => out.push_str("null"),
        Content::Bool(true) => out.push_str("true"),
        Content::Bool(false) => out.push_str("false"),
        Content::I64(n) => out.push_str(&n.to_string()),
        Content::U64(n) => out.push_str(&n.to_string()),
        Content::F64(n) => write_f64(out, *n),
        Content::Str(s) => write_escaped(out, s),
        Content::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_value(out, item, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push(']');
        }
        Content::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * level {
            out.push(' ');
        }
    }
}

fn write_f64(out: &mut String, n: f64) {
    if !n.is_finite() {
        out.push_str("null"); // serde_json's behaviour for NaN/inf
    } else if n == n.trunc() && n.abs() < 1e16 {
        out.push_str(&format!("{n:.1}")); // keep the ".0" like serde_json
    } else {
        out.push_str(&format!("{n}"));
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---- Decoding ----

/// Parses JSON text into any deserializable type (commonly [`Value`]).
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", parser.pos)));
    }
    Ok(T::from_content(&value)?)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Content::Str(self.parse_string()?)),
            Some(b't') => self.parse_keyword("true", Content::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Content::Bool(false)),
            Some(b'n') => self.parse_keyword("null", Content::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            Some(c) => Err(Error(format!(
                "unexpected character `{}` at byte {}",
                c as char, self.pos
            ))),
            None => Err(Error("unexpected end of input".into())),
        }
    }

    fn parse_keyword(&mut self, kw: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(value)
        } else {
            Err(Error(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Content::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Content::Map(entries));
                }
                _ => return Err(Error(format!("expected `,` or `}}` at byte {}", self.pos))),
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Content::Seq(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Content::Seq(items));
                }
                _ => return Err(Error(format!("expected `,` or `]` at byte {}", self.pos))),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while let Some(c) = self.peek() {
                if c == b'"' || c == b'\\' || c < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error("invalid UTF-8 in string".into()))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error("unterminated escape".into()))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0c}'),
                        b'u' => {
                            let code = self.parse_hex4()?;
                            let c = if (0xd800..0xdc00).contains(&code) {
                                // Surrogate pair.
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                    let low = self.parse_hex4()?;
                                    let combined =
                                        0x10000 + ((code - 0xd800) << 10) + (low - 0xdc00);
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(code)
                            };
                            out.push(c.ok_or_else(|| Error("invalid \\u escape".into()))?);
                        }
                        other => {
                            return Err(Error(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                Some(c) => return Err(Error(format!("raw control character 0x{c:02x} in string"))),
                None => return Err(Error("unterminated string".into())),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(Error("truncated \\u escape".into()));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| Error("invalid \\u escape".into()))?;
        self.pos += 4;
        u32::from_str_radix(hex, 16).map_err(|_| Error("invalid \\u escape".into()))
    }

    /// Consumes a run of ASCII digits, returning how many were eaten.
    fn eat_digits(&mut self) -> usize {
        let start = self.pos;
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        self.pos - start
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // The JSON grammar requires at least one digit in the integer part,
        // after a `.`, and after an exponent marker. Rust's f64 parser is
        // laxer (it accepts `1.`, `-.5`, `1.e3`), so enforce the grammar
        // here rather than letting those fall through.
        if self.eat_digits() == 0 {
            return Err(Error(format!("expected digit at byte {}", self.pos)));
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            if self.eat_digits() == 0 {
                return Err(Error(format!(
                    "expected digit after `.` at byte {}",
                    self.pos
                )));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if self.eat_digits() == 0 {
                return Err(Error(format!(
                    "expected digit in exponent at byte {}",
                    self.pos
                )));
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid number".into()))?;
        if !is_float {
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Content::I64(v));
            }
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Content::U64(v));
            }
        }
        text.parse::<f64>()
            .map(Content::F64)
            .map_err(|_| Error(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_compact() {
        let text = r#"{"a":1,"b":[1.5,true,null],"c":{"d":"x\ny"}}"#;
        let v: Value = from_str(text).unwrap();
        assert_eq!(to_string(&v).unwrap(), text);
    }

    #[test]
    fn pretty_matches_serde_json_shape() {
        let v: Value = from_str(r#"{"a":1,"b":[2]}"#).unwrap();
        assert_eq!(
            to_string_pretty(&v).unwrap(),
            "{\n  \"a\": 1,\n  \"b\": [\n    2\n  ]\n}"
        );
    }

    #[test]
    fn floats_keep_point_zero() {
        assert_eq!(to_string(&1.0f64).unwrap(), "1.0");
        assert_eq!(to_string(&0.5f64).unwrap(), "0.5");
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
    }

    #[test]
    fn integers_round_trip_exact() {
        let v: Value = from_str("18446744073709551615").unwrap();
        assert_eq!(v, Content::U64(u64::MAX));
        let v: Value = from_str("-42").unwrap();
        assert_eq!(v, Content::I64(-42));
    }

    #[test]
    fn key_order_preserved() {
        let v: Value = from_str(r#"{"z":1,"a":2}"#).unwrap();
        assert_eq!(to_string(&v).unwrap(), r#"{"z":1,"a":2}"#);
    }

    #[test]
    fn errors_are_structured() {
        assert!(from_str::<Value>("{oops}").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("").is_err());
        assert!(from_str::<Value>("1 2").is_err());
    }

    #[test]
    fn incomplete_numbers_are_rejected() {
        // Rust's f64 parser accepts these; the JSON grammar does not.
        for text in [
            "1.",
            "-.5",
            "1.e5",
            "1e",
            "1e+",
            "-",
            "[1.]",
            "{\"x\":2.E3}",
        ] {
            assert!(from_str::<Value>(text).is_err(), "{text}");
        }
        // The grammar-conforming spellings still parse.
        assert_eq!(from_str::<Value>("1.5").unwrap(), Content::F64(1.5));
        assert_eq!(from_str::<Value>("-0.5").unwrap(), Content::F64(-0.5));
        assert_eq!(from_str::<Value>("2E+3").unwrap(), Content::F64(2000.0));
        assert_eq!(from_str::<Value>("1e-2").unwrap(), Content::F64(0.01));
    }

    #[test]
    fn unicode_escapes() {
        // A = 'A'; 😀 = 😀 via surrogate pair.
        let escaped: Value = from_str(r#""\u0041\ud83d\ude00""#).unwrap();
        assert_eq!(escaped, Content::Str("A\u{1F600}".to_string()));
        let raw: Value = from_str("\"A\u{1F600}\"").unwrap();
        assert_eq!(raw, escaped);
    }

    #[test]
    fn value_ext_accessors() {
        let v: Value = from_str(r#"{"n":3,"s":"x","b":true,"a":[1]}"#).unwrap();
        assert_eq!(v.get("n").and_then(ValueExt::as_u64), Some(3));
        assert_eq!(v.get("s").and_then(ValueExt::as_str), Some("x"));
        assert_eq!(v.get("b").and_then(ValueExt::as_bool), Some(true));
        assert_eq!(
            v.get("a").and_then(ValueExt::as_array).map(Vec::len),
            Some(1)
        );
        assert!(v.get("missing").is_none());
    }
}
