//! Minimal std-only stand-in for `rand 0.8` (see `vendor/README.md`).
//!
//! Provides the exact surface this workspace uses: a seedable deterministic
//! generator (`rngs::StdRng`), `Rng::{gen_range, gen_bool}` over integer and
//! float ranges, and `seq::SliceRandom::shuffle`. The generator core is
//! xoshiro256++, seeded via splitmix64 — deterministic, but *not* the same
//! stream as upstream `StdRng`.

use std::ops::{Range, RangeInclusive};

/// Low-level uniform bit source.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// User-facing sampling methods (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Uniform sample from a half-open or inclusive range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability {p}");
        unit_f64(self.next_u64()) < p
    }
}

impl<T: RngCore> Rng for T {}

/// Seedable construction (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// The seed type (fixed-width byte array upstream; bytes here too).
    type Seed: Default + AsMut<[u8]>;

    /// Construct from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64` via splitmix64 expansion.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = Splitmix64(state);
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

struct Splitmix64(u64);

impl Splitmix64 {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

fn unit_f64(bits: u64) -> f64 {
    // 53 uniform mantissa bits → [0, 1).
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic seedable generator (xoshiro256++ core; upstream uses
    /// ChaCha12 — streams differ, determinism holds).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                *word = u64::from_le_bytes(b);
            }
            // An all-zero state is a fixed point; nudge it.
            if s == [0, 0, 0, 0] {
                s = [0x9e37_79b9_7f4a_7c15, 1, 2, 3];
            }
            Self { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Types uniformly samplable over a range (subset of
/// `rand::distributions::uniform::SampleUniform`).
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform sample from `[lo, hi)` (`inclusive` extends to `[lo, hi]`).
    fn sample_in<R: Rng>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self;
}

macro_rules! impl_int_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: Rng>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self {
                let span = (hi as i128 - lo as i128) as u128 + inclusive as u128;
                assert!(span > 0, "empty gen_range");
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t; // full-width range
                }
                let v = bounded(rng, span as u64);
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_int_uniform!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

/// Uniform value in `[0, span)` by rejection to avoid modulo bias.
fn bounded<R: Rng>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    let zone = u64::MAX - (u64::MAX - span + 1) % span;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % span;
        }
    }
}

impl SampleUniform for f64 {
    fn sample_in<R: Rng>(rng: &mut R, lo: Self, hi: Self, _inclusive: bool) -> Self {
        assert!(lo < hi, "empty gen_range");
        lo + unit_f64(rng.next_u64()) * (hi - lo)
    }
}

impl SampleUniform for f32 {
    fn sample_in<R: Rng>(rng: &mut R, lo: Self, hi: Self, _inclusive: bool) -> Self {
        assert!(lo < hi, "empty gen_range");
        lo + (unit_f64(rng.next_u64()) as f32) * (hi - lo)
    }
}

/// Range sampling support (subset of `rand::distributions::uniform`).
pub trait SampleRange<T> {
    /// Draw one uniform sample from the range.
    fn sample_from<R: Rng>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: Rng>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "empty gen_range");
        T::sample_in(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: Rng>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "empty gen_range");
        T::sample_in(rng, lo, hi, true)
    }
}

/// Slice helpers (subset of `rand::seq`).
pub mod seq {
    use super::Rng;

    /// Subset of `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng>(&mut self, rng: &mut R);

        /// Uniformly random element, `None` on an empty slice.
        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

/// Re-export hub mirroring `rand::prelude`.
pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(10..=45);
            assert!((10..=45).contains(&v));
            let f = rng.gen_range(1.0..3.0);
            assert!((1.0..3.0).contains(&f));
            let u = rng.gen_range(0usize..5);
            assert!(u < 5);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice untouched");
    }
}
