//! Minimal std-only stand-in for `serde 1` (see `vendor/README.md`).
//!
//! Upstream serde is a zero-copy visitor framework; this stand-in uses a
//! concrete owned tree ([`Content`]) as its data model, which is all the
//! workspace needs: derive `Serialize` on plain result structs and feed them
//! to `serde_json`. `Deserialize` mirrors it for the wire protocol.

use std::collections::{BTreeMap, HashMap};
use std::fmt;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// The serialized data model: a JSON-shaped owned tree.
///
/// Maps preserve insertion order so that serialization is deterministic and
/// byte-stable across identical inputs.
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    /// `null`.
    Null,
    /// Boolean.
    Bool(bool),
    /// Signed integer.
    I64(i64),
    /// Unsigned integer (used when the value exceeds `i64`).
    U64(u64),
    /// Floating point.
    F64(f64),
    /// String.
    Str(String),
    /// Ordered sequence.
    Seq(Vec<Content>),
    /// Ordered key/value map.
    Map(Vec<(String, Content)>),
}

/// Types that can serialize themselves into a [`Content`] tree.
pub trait Serialize {
    /// Build the content tree for `self`.
    fn to_content(&self) -> Content;
}

/// Error produced when a [`Content`] tree cannot be decoded into a type.
#[derive(Debug, Clone, PartialEq)]
pub struct DeError(pub String);

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "deserialization error: {}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Types that can reconstruct themselves from a [`Content`] tree.
pub trait Deserialize: Sized {
    /// Decode from a content tree.
    fn from_content(content: &Content) -> Result<Self, DeError>;
}

// ---- Serialize impls ----

impl Serialize for Content {
    fn to_content(&self) -> Content {
        self.clone()
    }
}

impl Serialize for bool {
    fn to_content(&self) -> Content {
        Content::Bool(*self)
    }
}

macro_rules! impl_ser_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::I64(*self as i64)
            }
        }
    )*};
}

impl_ser_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_ser_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                let v = *self as u64;
                if v <= i64::MAX as u64 {
                    Content::I64(v as i64)
                } else {
                    Content::U64(v)
                }
            }
        }
    )*};
}

impl_ser_unsigned!(u8, u16, u32, u64, usize);

impl Serialize for f32 {
    fn to_content(&self) -> Content {
        Content::F64(*self as f64)
    }
}

impl Serialize for f64 {
    fn to_content(&self) -> Content {
        Content::F64(*self)
    }
}

impl Serialize for String {
    fn to_content(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl Serialize for str {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_content(&self) -> Content {
        match self {
            Some(v) => v.to_content(),
            None => Content::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_content(&self) -> Content {
        Content::Seq(vec![self.0.to_content(), self.1.to_content()])
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_content(&self) -> Content {
        Content::Seq(vec![
            self.0.to_content(),
            self.1.to_content(),
            self.2.to_content(),
        ])
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_content(&self) -> Content {
        Content::Map(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_content()))
                .collect(),
        )
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_content(&self) -> Content {
        // Sort for deterministic output.
        let mut entries: Vec<(String, Content)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.to_content()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Content::Map(entries)
    }
}

// ---- Deserialize impls ----

impl Deserialize for Content {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        Ok(content.clone())
    }
}

impl Deserialize for bool {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Bool(b) => Ok(*b),
            other => Err(DeError(format!("expected bool, got {other:?}"))),
        }
    }
}

macro_rules! impl_de_int {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_content(content: &Content) -> Result<Self, DeError> {
                let out = match content {
                    Content::I64(v) => <$t>::try_from(*v).ok(),
                    Content::U64(v) => <$t>::try_from(*v).ok(),
                    // Integral floats arrive from lenient JSON writers.
                    Content::F64(v) if v.fract() == 0.0 => Some(*v as $t),
                    _ => None,
                };
                out.ok_or_else(|| {
                    DeError(format!(
                        "expected {}, got {content:?}",
                        stringify!($t)
                    ))
                })
            }
        }
    )*};
}

impl_de_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl Deserialize for f64 {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::F64(v) => Ok(*v),
            Content::I64(v) => Ok(*v as f64),
            Content::U64(v) => Ok(*v as f64),
            other => Err(DeError(format!("expected number, got {other:?}"))),
        }
    }
}

impl Deserialize for String {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Str(s) => Ok(s.clone()),
            other => Err(DeError(format!("expected string, got {other:?}"))),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Null => Ok(None),
            other => T::from_content(other).map(Some),
        }
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Seq(items) => items.iter().map(T::from_content).collect(),
            other => Err(DeError(format!("expected array, got {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(bool::from_content(&true.to_content()), Ok(true));
        assert_eq!(u64::from_content(&7u64.to_content()), Ok(7));
        assert_eq!(i64::from_content(&(-3i64).to_content()), Ok(-3));
        assert_eq!(f64::from_content(&1.5f64.to_content()), Ok(1.5));
        assert_eq!(
            String::from_content(&"hi".to_content()),
            Ok("hi".to_string())
        );
    }

    #[test]
    fn collections_round_trip() {
        let v = vec![1u64, 2, 3];
        assert_eq!(Vec::<u64>::from_content(&v.to_content()), Ok(v));
        assert_eq!(Option::<u64>::from_content(&Content::Null), Ok(None));
        assert_eq!(Option::<u64>::from_content(&9u64.to_content()), Ok(Some(9)));
    }

    #[test]
    fn large_u64_preserved() {
        let big = u64::MAX;
        assert_eq!(u64::from_content(&big.to_content()), Ok(big));
    }

    #[test]
    fn type_mismatch_reports() {
        assert!(bool::from_content(&Content::I64(1)).is_err());
        assert!(String::from_content(&Content::Bool(true)).is_err());
    }
}
