//! Minimal std-only stand-in for `proptest 1` (see `vendor/README.md`).
//!
//! Supports the subset this workspace's property tests use: the
//! [`proptest!`] macro over `arg in strategy` bindings, range strategies on
//! integers and floats, tuple strategies, `collection::vec`, and the
//! `prop_assert!` / `prop_assert_eq!` macros. Each property runs a fixed
//! number of deterministic cases (no shrinking); failures report the case
//! number so a run can be reproduced.

use std::ops::Range;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Number of cases each property runs.
pub const CASES: u32 = 128;

/// A source of random test values.
pub trait Strategy {
    /// The value type produced.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize, f64, f32);

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);

    fn sample(&self, rng: &mut StdRng) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);

    fn sample(&self, rng: &mut StdRng) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng), self.2.sample(rng))
    }
}

/// Constant "strategy" for plain values (upstream `Just`).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Collection strategies (subset of `proptest::collection`).
pub mod collection {
    use super::{StdRng, Strategy};
    use rand::Rng;
    use std::ops::Range;

    /// Strategy producing `Vec`s with lengths drawn from `len`.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// `vec(element, 1..10)` — upstream-compatible constructor.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut StdRng) -> Self::Value {
            let n = rng.gen_range(self.len.clone());
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Everything a property test file needs.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, Strategy};
}

/// Deterministic per-test seed derived from the property's name.
pub fn seed_for(name: &str) -> u64 {
    // FNV-1a.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[doc(hidden)]
pub fn run_property<F>(name: &str, mut case: F)
where
    F: FnMut(&mut StdRng) -> Result<(), String>,
{
    let mut rng = StdRng::seed_from_u64(seed_for(name));
    for case_no in 0..CASES {
        if let Err(msg) = case(&mut rng) {
            panic!("property `{name}` failed at case {case_no}/{CASES}: {msg}");
        }
    }
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running [`CASES`] deterministic cases.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::run_property(stringify!($name), |__rng| {
                    $(let $arg = $crate::Strategy::sample(&($strat), __rng);)+
                    $body
                    Ok(())
                });
            }
        )*
    };
}

/// `assert!` that reports through the proptest harness.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err(format!($($fmt)*));
        }
    };
}

/// `assert_eq!` that reports through the proptest harness.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {
        match (&$left, &$right) {
            (left, right) => {
                if !(*left == *right) {
                    return Err(format!("assertion failed: `{:?}` != `{:?}`", left, right));
                }
            }
        }
    };
}

/// `assert_ne!` that reports through the proptest harness.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {
        match (&$left, &$right) {
            (left, right) => {
                if *left == *right {
                    return Err(format!("assertion failed: `{:?}` == `{:?}`", left, right));
                }
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_hold(x in 5u64..50, f in 0.0f64..1.0) {
            prop_assert!((5..50).contains(&x));
            prop_assert!((0.0..1.0).contains(&f));
        }

        #[test]
        fn vec_lengths_hold(v in collection::vec(0u32..10, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&x| x < 10));
        }

        #[test]
        fn tuples_sample(pair in (0usize..4, 1.0f64..2.0)) {
            prop_assert!(pair.0 < 4);
            prop_assert_eq!(pair.0, pair.0);
        }
    }

    #[test]
    fn seeds_differ_by_name() {
        assert_ne!(crate::seed_for("a"), crate::seed_for("b"));
    }
}
