//! Offline `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the serde
//! stand-in (see `vendor/README.md`).
//!
//! Supports structs with named fields, optionally generic over lifetimes
//! and/or plain type parameters — the shapes this workspace derives on.
//! Implemented by lightweight text parsing of the token stream (no `syn`).

use proc_macro::TokenStream;

/// Derives `serde::Serialize` (field order preserved).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Serialize)
}

/// Derives `serde::Deserialize` (missing fields decode from `null`).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Deserialize)
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Serialize,
    Deserialize,
}

fn expand(input: TokenStream, mode: Mode) -> TokenStream {
    let text = input.to_string();
    let parsed = match parse_struct(&text) {
        Ok(p) => p,
        Err(msg) => {
            return format!("compile_error!(\"serde stand-in derive: {msg}\");")
                .parse()
                .expect("compile_error tokens")
        }
    };
    let code = match mode {
        Mode::Serialize => emit_serialize(&parsed),
        Mode::Deserialize => emit_deserialize(&parsed),
    };
    code.parse().expect("generated impl tokens")
}

struct Struct {
    name: String,
    /// Generic parameter declarations with serde bounds added, e.g.
    /// `<'a, T: ::serde::Serialize>`; empty when non-generic.
    decl_generics: String,
    /// Generic arguments, e.g. `<'a, T>`; empty when non-generic.
    arg_generics: String,
    fields: Vec<String>,
}

fn parse_struct(text: &str) -> Result<Struct, String> {
    let text = strip_doc_comments(text);
    let rest = skip_attrs_and_vis(&text);
    let rest = rest
        .strip_prefix("struct")
        .ok_or("only structs are supported")?
        .trim_start();

    let name_end = rest
        .find(|c: char| !(c.is_alphanumeric() || c == '_'))
        .unwrap_or(rest.len());
    let name = rest[..name_end].to_string();
    if name.is_empty() {
        return Err("missing struct name".into());
    }
    let mut rest = rest[name_end..].trim_start();

    let mut generic_params: Vec<String> = Vec::new();
    if let Some(stripped) = rest.strip_prefix('<') {
        let close = matching_angle(stripped).ok_or("unbalanced generics")?;
        generic_params = split_top_level(&stripped[..close], ',')
            .into_iter()
            .map(|s| s.trim().to_string())
            .filter(|s| !s.is_empty())
            .collect();
        rest = stripped[close + 1..].trim_start();
    }

    let body_start = rest.find('{').ok_or("only brace structs are supported")?;
    let body_end = rest.rfind('}').ok_or("unbalanced struct body")?;
    let body = &rest[body_start + 1..body_end];

    let mut fields = Vec::new();
    for chunk in split_top_level(body, ',') {
        let chunk = skip_attrs_and_vis(chunk.trim());
        if chunk.is_empty() {
            continue;
        }
        let colon = chunk.find(':').ok_or("tuple structs are not supported")?;
        fields.push(chunk[..colon].trim().to_string());
    }
    if fields.is_empty() {
        return Err("unit/empty structs are not supported".into());
    }

    let bound = "::serde::Serialize"; // replaced for Deserialize in emit
    let mut decls = Vec::new();
    let mut args = Vec::new();
    for param in &generic_params {
        if param.starts_with('\'') {
            // Lifetime: `'a` or `'a: 'b`.
            let lt = param.split(':').next().unwrap_or(param).trim().to_string();
            decls.push(param.clone());
            args.push(lt);
        } else {
            // Type parameter: add the serde bound on top of any existing.
            let ident = param.split(':').next().unwrap_or(param).trim().to_string();
            if param.contains(':') {
                decls.push(format!("{param} + {bound}"));
            } else {
                decls.push(format!("{ident}: {bound}"));
            }
            args.push(ident);
        }
    }
    let (decl_generics, arg_generics) = if generic_params.is_empty() {
        (String::new(), String::new())
    } else {
        (
            format!("<{}>", decls.join(", ")),
            format!("<{}>", args.join(", ")),
        )
    };

    Ok(Struct {
        name,
        decl_generics,
        arg_generics,
        fields,
    })
}

/// Removes `///`, `//!`, and `/** */` doc comments (which
/// `TokenStream::to_string()` can emit verbatim) outside string literals, so
/// later structural scans never see their free-form text.
fn strip_doc_comments(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let bytes = s.as_bytes();
    let mut i = 0;
    let mut in_string = false;
    let mut escaped = false;
    while i < bytes.len() {
        let c = bytes[i] as char;
        if in_string {
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_string = false;
            }
            out.push(c);
            i += 1;
            continue;
        }
        if c == '"' {
            in_string = true;
            out.push(c);
            i += 1;
            continue;
        }
        if c == '/' && i + 1 < bytes.len() {
            match bytes[i + 1] as char {
                '/' => {
                    // Line comment (incl. `///` and `//!`): drop to newline.
                    while i < bytes.len() && bytes[i] as char != '\n' {
                        i += 1;
                    }
                    continue;
                }
                '*' => {
                    // Block comment (incl. `/** */`): drop to closing `*/`.
                    let mut j = i + 2;
                    while j + 1 < bytes.len()
                        && !(bytes[j] as char == '*' && bytes[j + 1] as char == '/')
                    {
                        j += 1;
                    }
                    i = (j + 2).min(bytes.len());
                    out.push(' ');
                    continue;
                }
                _ => {}
            }
        }
        out.push(c);
        i += 1;
    }
    out
}

/// Yields `(index, char, inside_string_literal)` so structural scans skip
/// over `"..."` contents (doc-comment attributes may contain any character).
fn scan_chars(s: &str) -> impl Iterator<Item = (usize, char, bool)> + '_ {
    let mut in_string = false;
    let mut escaped = false;
    s.char_indices().map(move |(i, c)| {
        let was_in_string = in_string;
        if in_string {
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_string = false;
            }
        } else if c == '"' {
            in_string = true;
        }
        (i, c, was_in_string)
    })
}

/// Skips leading `#[...]` attributes (incl. doc comments) and visibility.
fn skip_attrs_and_vis(mut s: &str) -> &str {
    s = s.trim_start();
    while let Some(rest) = s.strip_prefix('#') {
        let rest = rest.trim_start();
        let Some(inner) = rest.strip_prefix('[') else {
            break;
        };
        let mut depth = 1usize;
        let mut end = None;
        for (i, c, in_string) in scan_chars(inner) {
            if in_string {
                continue;
            }
            match c {
                '[' => depth += 1,
                ']' => {
                    depth -= 1;
                    if depth == 0 {
                        end = Some(i);
                        break;
                    }
                }
                _ => {}
            }
        }
        match end {
            Some(i) => s = inner[i + 1..].trim_start(),
            None => break,
        }
    }
    if let Some(rest) = s.strip_prefix("pub") {
        let rest = rest.trim_start();
        if let Some(inner) = rest.strip_prefix('(') {
            if let Some(close) = inner.find(')') {
                return inner[close + 1..].trim_start();
            }
        }
        return rest;
    }
    s
}

/// Index of the `>` closing an angle-bracket run that started just before
/// `s` (the opening `<` already consumed).
fn matching_angle(s: &str) -> Option<usize> {
    let mut depth = 1usize;
    for (i, c, in_string) in scan_chars(s) {
        if in_string {
            continue;
        }
        match c {
            '<' => depth += 1,
            '>' => {
                depth -= 1;
                if depth == 0 {
                    return Some(i);
                }
            }
            _ => {}
        }
    }
    None
}

/// Splits on `sep` at bracket depth zero (over `<>`, `()`, `[]`, `{}`),
/// ignoring everything inside string literals.
fn split_top_level(s: &str, sep: char) -> Vec<String> {
    let mut out = Vec::new();
    let mut depth = 0i32;
    let mut current = String::new();
    for (_, c, in_string) in scan_chars(s) {
        if !in_string {
            match c {
                '<' | '(' | '[' | '{' => depth += 1,
                '>' | ')' | ']' | '}' => depth -= 1,
                _ => {}
            }
            if c == sep && depth == 0 {
                out.push(std::mem::take(&mut current));
                continue;
            }
        }
        current.push(c);
    }
    if !current.trim().is_empty() {
        out.push(current);
    }
    out
}

fn emit_serialize(s: &Struct) -> String {
    let entries: Vec<String> = s
        .fields
        .iter()
        .map(|f| format!("(\"{f}\".to_string(), ::serde::Serialize::to_content(&self.{f}))"))
        .collect();
    format!(
        "impl{decl} ::serde::Serialize for {name}{args} {{\n\
         fn to_content(&self) -> ::serde::Content {{\n\
         ::serde::Content::Map(vec![{entries}])\n\
         }}\n\
         }}",
        decl = s.decl_generics,
        name = s.name,
        args = s.arg_generics,
        entries = entries.join(", "),
    )
}

fn emit_deserialize(s: &Struct) -> String {
    if s.decl_generics.contains('\'') {
        return "compile_error!(\"serde stand-in: derive(Deserialize) does not support lifetimes\");"
            .to_string();
    }
    let decl = s
        .decl_generics
        .replace("::serde::Serialize", "::serde::Deserialize");
    let fields: Vec<String> = s
        .fields
        .iter()
        .map(|f| {
            format!(
                "{f}: match __map.iter().find(|(k, _)| k == \"{f}\") {{\n\
                 Some((_, v)) => ::serde::Deserialize::from_content(v)\n\
                 .map_err(|e| ::serde::DeError(format!(\"field `{f}`: {{e}}\")))?,\n\
                 None => ::serde::Deserialize::from_content(&::serde::Content::Null)\n\
                 .map_err(|_| ::serde::DeError(\"missing field `{f}`\".to_string()))?,\n\
                 }}"
            )
        })
        .collect();
    format!(
        "impl{decl} ::serde::Deserialize for {name}{args} {{\n\
         fn from_content(__c: &::serde::Content) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
         let __map = match __c {{\n\
         ::serde::Content::Map(m) => m,\n\
         other => return Err(::serde::DeError(format!(\"expected object for {name}, got {{other:?}}\"))),\n\
         }};\n\
         Ok(Self {{ {fields} }})\n\
         }}\n\
         }}",
        decl = decl,
        name = s.name,
        args = s.arg_generics,
        fields = fields.join(",\n"),
    )
}
